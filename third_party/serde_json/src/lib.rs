//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string_pretty` for writing experiment results and
//! `from_str::<Value>` for validating model-generated JSON.
//!
//! The parser is a complete RFC 8259 recogniser (objects, arrays, strings
//! with escapes, numbers, literals) because `exp_constrained` relies on it
//! to judge whether generated text is valid JSON — a sloppy recogniser
//! would skew that experiment's results.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Parse or serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error { msg: msg.into() })
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, like the
/// real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    // The Serialize impls emit valid JSON, so re-parse and pretty-print.
    let parsed = from_str::<Value>(&compact)
        .map_err(|e| Error { msg: format!("serializer produced invalid JSON: {e}") })?;
    let mut out = String::new();
    write_pretty(&parsed, 0, &mut out);
    Ok(out)
}

/// Types constructible from a JSON document. The real serde_json bounds
/// `from_str` on `Deserialize`; this workspace only ever deserializes to
/// `Value`, so a local trait keeps the stub small.
pub trait FromJson: Sized {
    fn from_json_value(value: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json_value(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

/// Parses a complete JSON document from `s`.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing characters at byte {}", p.pos));
    }
    T::from_json_value(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return err("recursion depth exceeded");
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&first) {
                                if self.peek() != Some(b'\\') {
                                    return err("unpaired surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return err("unpaired surrogate");
                                }
                                self.pos += 1;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return err("invalid low surrogate");
                                }
                                let cp = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second - 0xDC00);
                                char::from_u32(cp).ok_or(Error {
                                    msg: "invalid surrogate pair".into(),
                                })?
                            } else if (0xDC00..0xE000).contains(&first) {
                                return err("unpaired low surrogate");
                            } else {
                                char::from_u32(first)
                                    .ok_or(Error { msg: "invalid codepoint".into() })?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced pos
                        }
                        _ => return err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return err(format!("control character in string at byte {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error { msg: "invalid utf-8".into() })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits, advancing past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error { msg: "bad \\u escape".into() })?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error { msg: "bad \\u escape".into() })?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return err(format!("invalid number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return err("digit required after decimal point");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return err("digit required in exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error { msg: format!("unparseable number `{text}`") })
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => serde::write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                serde::write_json_string(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "null",
            "true",
            "-0.5e3",
            "\"a\\u0041\\n\"",
            "[1, 2, [3]]",
            "{\"a\": {\"b\": []}, \"c\": 1}",
            "  { \"k\" : \"v\" }  ",
            "\"\\ud83d\\ude00\"",
        ] {
            assert!(from_str::<Value>(s).is_ok(), "should parse: {s}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for s in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "\"\\ud800\"",
            "{\"a\":1} extra",
            "'single'",
        ] {
            assert!(from_str::<Value>(s).is_err(), "should reject: {s}");
        }
    }

    #[test]
    fn pretty_prints() {
        #[derive(Debug)]
        struct P {
            a: u32,
            b: Vec<u32>,
        }
        impl serde::Serialize for P {
            fn serialize_json(&self, out: &mut String) {
                out.push('{');
                out.push_str("\"a\":");
                self.a.serialize_json(out);
                out.push_str(",\"b\":");
                self.b.serialize_json(out);
                out.push('}');
            }
        }
        let s = to_string_pretty(&P { a: 1, b: vec![2, 3] }).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}");
    }
}
