//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! minimal replacements for its external dependencies. Everything here
//! serializes directly to JSON text — there is no `Serializer` abstraction
//! because the only consumer is `serde_json::to_string_pretty` writing
//! experiment results. `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! come from the sibling `serde_derive` stub; `Deserialize` derives expand
//! to nothing because no workspace code deserializes into typed structs.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as a JSON value.
pub trait Serialize {
    /// Appends this value's JSON representation to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Escapes and quotes a string per JSON rules.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        })*
    };
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_serialize_float {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                // JSON has no NaN/Infinity literals; mirror serde_json's
                // lossy behaviour of emitting null.
                if self.is_finite() {
                    out.push_str(&format!("{self}"));
                } else {
                    out.push_str("null");
                }
            }
        })*
    };
}

impl_serialize_float!(f32, f64);

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        })*
    };
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        // Keys become strings (JSON object keys must be strings).
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut key = String::new();
            k.serialize_json(&mut key);
            if key.starts_with('"') {
                out.push_str(&key);
            } else {
                write_json_string(&key, out);
            }
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(3u32), "3");
        assert_eq!(json(-4i64), "-4");
        assert_eq!(json(true), "true");
        assert_eq!(json(1.5f64), "1.5");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json((1u8, "x")), "[1,\"x\"]");
        assert_eq!(json(Option::<u8>::None), "null");
        assert_eq!(json(Some(7u8)), "7");
    }
}
