//! Offline shim for the subset of `crossbeam` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal, API-compatible stand-ins for its external
//! dependencies (see `third_party/README.md`). The kernel only needs
//! unbounded MPSC channels with cloneable senders; `std::sync::mpsc`
//! provides exactly that, so this shim is a thin newtype layer.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving end has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel. Cloneable, like
    /// `crossbeam::channel::Sender`.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Sender<T> {
        /// Sends a message, failing if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the channel is empty or closed.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn roundtrip_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnects_propagate() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
