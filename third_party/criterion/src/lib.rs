//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate provides an
//! API-compatible micro-benchmark harness. It measures wall-clock time with
//! `std::time::Instant` over a fixed iteration budget and prints mean
//! nanoseconds per iteration — enough to compare hot paths locally, without
//! real criterion's statistical analysis, warm-up calibration, or HTML
//! reports.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver; create with `Criterion::default()`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work amount for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter_ns = if bencher.iters > 0 {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        } else {
            0.0
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 / per_iter_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
                format!(" ({:.1} MB/s)", n as f64 / per_iter_ns * 1e3)
            }
            _ => String::new(),
        };
        println!(
            "  {}/{id}: {per_iter_ns:.0} ns/iter over {} iters{rate}",
            self.group, bencher.iters
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Iteration budget: enough samples for a stable mean, small enough that a
/// full bench run stays fast without warm-up calibration.
const TARGET_ITERS: u64 = 50;

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the iteration budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..TARGET_ITERS {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += TARGET_ITERS;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..TARGET_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark entry point running each function in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($fun(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(runs, 50);
    }
}
