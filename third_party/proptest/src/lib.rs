//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate implements a
//! small property-testing framework with the same API shape: `proptest!`,
//! `prop_assert*`/`prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! numeric range strategies, string-pattern strategies, tuple strategies,
//! `prop_map`/`prop_recursive`/`boxed`, and `collection::{vec, btree_map}`.
//!
//! Differences from real proptest, deliberate for this environment:
//! - **No shrinking.** A failing case reports its seed; re-running is
//!   deterministic, so the seed is enough to reproduce.
//! - **Deterministic seeding.** Cases derive from a fixed per-test seed, so
//!   test runs are reproducible across machines and invocations (this repo
//!   treats determinism as a feature, not a bug).
//! - String patterns support the regex subset that appears in this
//!   workspace: literal chars, `\PC`, classes like `[a-z \n\t]` with
//!   ranges and escapes, and `*` / `{m}` / `{m,n}` quantifiers.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG

/// Deterministic splitmix64 generator driving test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; `hi > lo` required.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Core strategy abstraction

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Recursive strategy: values nest up to `depth` levels, where each
    /// level is produced by `f` applied to the previous level's strategy.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility but unused (sizes are bounded by construction here).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            rec: Arc::new(move |inner| f(inner).boxed()),
            depth,
        }
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Output of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    rec: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        // Pick a nesting depth per case so shallow and deep values both
        // occur, then build the strategy tower to that depth.
        let d = rng.gen_range_u64(0, self.depth as u64 + 1) as usize;
        let mut s = self.base.clone();
        for _ in 0..d {
            s = (self.rec)(s);
        }
        s.gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|&(w, _)| w > 0), "all prop_oneof! weights are zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
        let mut r = rng.gen_range_u64(0, total);
        for (w, s) in &self.arms {
            if r < *w as u64 {
                return s.gen_value(rng);
            }
            r -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// any::<T>() and primitive strategies

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, moderately sized: property tests here use arithmetic on
        // these values, and NaN/inf would make every assertion vacuous.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn gen_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                // Work in i128 so negative and full-width ranges are exact.
                let lo = self.start as i128;
                let span = self.end as i128 - lo;
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $ty
            }
        })*
    };
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn gen_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        })*
    };
}

impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        })*
    };
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// String pattern strategies

/// One parsed pattern atom plus its repetition bounds.
struct PatAtom {
    /// Inclusive char ranges this atom samples from.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Non-control character ranges used for `\PC` (anything but Unicode
/// category C). A representative spread keeps round-trip tests honest about
/// multi-byte UTF-8 without enumerating all of Unicode.
const NON_CONTROL: &[(char, char)] = &[
    (' ', '~'),                // ASCII printable
    ('\u{A1}', '\u{17F}'),     // Latin-1 supplement + Latin Extended-A
    ('\u{391}', '\u{3A9}'),    // Greek capitals
    ('\u{4E00}', '\u{4EFF}'),  // CJK ideographs (3-byte UTF-8)
    ('\u{1F600}', '\u{1F64F}'),// emoticons (4-byte UTF-8)
];

fn parse_pattern(pat: &str) -> Vec<PatAtom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges: Vec<(char, char)> = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') => {
                        // `\PC` — not-category-C (not control).
                        assert_eq!(chars.get(i + 1), Some(&'C'), "only \\PC is supported");
                        i += 2;
                        NON_CONTROL.to_vec()
                    }
                    Some(&c) => {
                        i += 1;
                        let c = unescape(c);
                        vec![(c, c)]
                    }
                    None => panic!("dangling backslash in pattern {pat:?}"),
                }
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if chars.get(i) == Some(&'-') && chars.get(i + 1) != Some(&']') {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        set.push((lo, hi));
                    } else {
                        set.push((lo, lo));
                    }
                }
                i += 1; // closing ]
                set
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };

        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                i += 1;
                let mut lo = String::new();
                while chars[i].is_ascii_digit() {
                    lo.push(chars[i]);
                    i += 1;
                }
                let lo: usize = lo.parse().expect("bad {m,n} quantifier");
                let hi = if chars[i] == ',' {
                    i += 1;
                    let mut hi = String::new();
                    while chars[i].is_ascii_digit() {
                        hi.push(chars[i]);
                        i += 1;
                    }
                    hi.parse().expect("bad {m,n} quantifier")
                } else {
                    lo
                };
                assert_eq!(chars[i], '}', "unterminated quantifier in {pat:?}");
                i += 1;
                (lo, hi)
            }
            _ => (1, 1),
        };

        atoms.push(PatAtom { ranges, min, max });
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\ \] \- etc. stand for themselves
    }
}

fn sample_from_ranges(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
    let mut r = rng.gen_range_u64(0, total);
    for &(lo, hi) in ranges {
        let n = hi as u64 - lo as u64 + 1;
        if r < n {
            return char::from_u32(lo as u32 + r as u32).expect("range spans surrogate gap");
        }
        r -= n;
    }
    unreachable!()
}

impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.max > atom.min {
                rng.gen_range_usize(atom.min, atom.max + 1)
            } else {
                atom.min
            };
            for _ in 0..n {
                out.push(sample_from_ranges(&atom.ranges, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors with length drawn from `len` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range_usize(self.len.start, self.len.end);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    /// Maps with size drawn from `len` (best-effort under key collisions).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, len }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = rng.gen_range_usize(self.len.start, self.len.end);
            let mut map = BTreeMap::new();
            // Allow a few extra draws to absorb key collisions.
            for _ in 0..target.saturating_mul(4).max(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            }
            map
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps this workspace's suites
        // fast while still exploring the space (cases are deterministic, so
        // repeated CI runs don't add coverage anyway).
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `f` against `config.cases` deterministic seeds derived from `name`.
/// Panics (failing the enclosing `#[test]`) on the first `Fail`, or if the
/// rejection budget is exhausted by `prop_assume!`.
pub fn run_test<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while passed < config.cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        case += 1;
        let mut rng = TestRng::new(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!("proptest `{name}`: too many rejected cases (last: {why})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {} (seed {seed:#x}):\n{msg}",
                    case - 1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros

/// Defines property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_test($config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::gen_value(&($strat), __proptest_rng);)+
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
    (($config:expr);) => {};
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a), stringify!($b), __l
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}", format!($($fmt)+), __l
            )));
        }
    }};
}

/// Discards the current case (drawing a fresh one) if the condition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted or unweighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The glob-import surface test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (10u64..20).gen_value(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..3.0).gen_value(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-1000i32..1000).gen_value(&mut rng);
            assert!((-1000..1000).contains(&i));
        }
    }

    #[test]
    fn patterns_match_their_own_grammar() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let s = "[a-z]{1,6}".gen_value(&mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = "[ -~\\n\\t]{0,40}".gen_value(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));

            let s = "\\PC*".gen_value(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_respects_weights_and_types() {
        let strat = prop_oneof![
            3 => Just(0u8),
            1 => (1u8..3).prop_map(|v| v),
        ];
        let mut rng = TestRng::new(3);
        let mut zeros = 0;
        for _ in 0..400 {
            if strat.gen_value(&mut rng) == 0 {
                zeros += 1;
            }
        }
        // ~75% expected; wide tolerance keeps this robust.
        assert!((200..=380).contains(&zeros), "zeros = {zeros}");
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10);
                    0
                }
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            assert!(depth(&strat.gen_value(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro surface itself: args, assume, assert variants.
        #[test]
        fn macro_roundtrip(a in 0u64..50, b in 1u64..50, s in "[a-z]{1,4}") {
            prop_assume!(a != b);
            prop_assert!(a + b < 100, "sum out of range: {a} + {b}");
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(a, b);
        }
    }
}
