//! Offline stand-in for `serde_derive`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` without `syn`/`quote`
//! by walking the raw `TokenStream`. It supports exactly the shapes that
//! appear in this workspace: non-generic structs with named fields and
//! non-generic tuple structs. Anything else produces a `compile_error!`
//! so a future change fails loudly instead of serializing garbage.
//!
//! `Deserialize` expands to nothing: no workspace code deserializes into
//! typed structs (the only deserialization is `serde_json::Value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_impl(&item),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Fields {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — number of unnamed fields.
    Tuple(usize),
}

struct Item {
    name: String,
    fields: Fields,
}

/// Extracts the struct name and field layout from a derive input stream.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes, visibility, and doc comments until `struct`.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                match iter.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" {
                    break;
                }
                if s == "enum" || s == "union" {
                    return Err(format!(
                        "vendored serde_derive stub only supports structs, found `{s}`"
                    ));
                }
                if s == "pub" {
                    // `pub(crate)` etc.: a paren group may follow.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                    continue;
                }
                return Err(format!("unexpected token `{s}` before `struct`"));
            }
            Some(other) => {
                return Err(format!("unexpected token `{other}` before `struct`"));
            }
            None => return Err("no `struct` keyword in derive input".into()),
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "vendored serde_derive stub does not support generic struct `{name}`"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
            name,
            fields: Fields::Named(parse_named_fields(g.stream())?),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
            name,
            fields: Fields::Tuple(count_tuple_fields(g.stream())),
        }),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
            name,
            fields: Fields::Tuple(0),
        }),
        other => Err(format!("unexpected struct body for `{name}`: {other:?}")),
    }
}

/// Collects field names from a brace-group body: for each comma-separated
/// entry, the identifier immediately before the first depth-0 `:`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut depth = 0usize; // angle-bracket depth inside types
    let mut last_ident: Option<String> = None;
    let mut in_type = false; // true between `:` and the next depth-0 `,`

    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && !in_type => match iter.next() {
                Some(TokenTree::Group(_)) => {}
                _ => return Err("malformed field attribute".into()),
            },
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ':' if depth == 0 && !in_type => {
                    // `::` inside a path would also hit this arm, but a
                    // depth-0 path can only appear inside a type (in_type).
                    match last_ident.take() {
                        Some(name) => {
                            fields.push(name);
                            in_type = true;
                        }
                        None => return Err("field `:` with no preceding name".into()),
                    }
                }
                ',' if depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            // visibility scope like `pub(crate)`
            TokenTree::Group(g) if !in_type && g.delimiter() == Delimiter::Parenthesis => {}
            TokenTree::Group(_) if !in_type => {
                return Err("unexpected group in field position".into());
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Counts comma-separated entries in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => count += 1,
                _ => saw_any = true,
            },
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn generate_impl(item: &Item) -> TokenStream {
    let name = &item.name;
    let mut body = String::new();
    match &item.fields {
        Fields::Named(fields) => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                // Raw identifiers (`r#macro`) keep the escape for the field
                // access but name the JSON key without it.
                let key = f.strip_prefix("r#").unwrap_or(f);
                body.push_str(&format!(
                    "out.push_str(\"\\\"{key}\\\":\");\n\
                     serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');\n");
        }
        Fields::Tuple(0) => {
            // Unit / empty tuple struct: serialize as null, like serde.
            body.push_str("out.push_str(\"null\");\n");
        }
        Fields::Tuple(1) => {
            // Newtype: transparent, like serde.
            body.push_str("serde::Serialize::serialize_json(&self.0, out);\n");
        }
        Fields::Tuple(n) => {
            body.push_str("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            body.push_str("out.push(']');\n");
        }
    }

    let code = format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n\
                 {body}\
             }}\n\
         }}\n"
    );
    code.parse().unwrap()
}
