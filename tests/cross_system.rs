//! Cross-crate integration tests: the properties that hold *across* serving
//! systems built on the shared substrate.

use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig};
use symphony_baseline::{Engine, EngineConfig, PromptRequest};
use symphony_sim::SimTime;
use symphony_tokenizer::Bpe;

/// The same logical prompt, served greedily by Symphony (a LIP) and by both
/// baseline engines, must produce the same tokens: all three run the same
/// surrogate model, so only scheduling may differ — never output.
#[test]
fn symphony_and_baselines_agree_on_greedy_output() {
    let prompt_text = "compare the memory management of the serving systems";
    let bpe = Bpe::default_tokenizer();

    // Symphony.
    let mut kernel = Kernel::new(KernelConfig::for_tests());
    let pid = kernel.spawn_process("lip", prompt_text, |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        let out = generate(
            ctx,
            kv,
            &prompt,
            &GenOpts {
                max_tokens: 24,
                temperature: 0.0,
                emit: true,
                ..Default::default()
            },
        )?;
        assert!(out.stopped_on_eos || out.tokens.len() == 24);
        Ok(())
    });
    kernel.run();
    let symphony_out = kernel.record(pid).unwrap().output.clone();
    assert!(!symphony_out.is_empty());

    // Baselines (same model seed as KernelConfig::for_tests).
    let request = PromptRequest {
        id: 1,
        arrival: SimTime::ZERO,
        prompt: bpe.encode(prompt_text),
        max_tokens: 24,
        temperature: 0.0,
    };
    for cfg in [EngineConfig::vllm_for_tests(), EngineConfig::tgi_for_tests()] {
        let name = cfg.name;
        let mut engine = Engine::new(cfg);
        let (completions, _) = engine.run(vec![request.clone()]);
        let engine_out = bpe.decode(&completions[0].tokens);
        assert_eq!(
            symphony_out, engine_out,
            "{name} must generate identical greedy output"
        );
    }
}

/// Whole-stack determinism: a mixed workload (generation + tools + threads
/// + IPC) replays identically, trace fingerprint included.
#[test]
fn full_stack_determinism() {
    fn run_once() -> (u64, Vec<String>) {
        let mut kernel = Kernel::new(KernelConfig::for_tests());
        kernel.register_tool(
            "search",
            symphony::ToolSpec::new(symphony::SimDuration::from_millis(20), |q| {
                symphony::ToolOutcome::Ok(format!("result:{q}"))
            }),
        );
        let consumer = kernel.spawn_process("consumer", "", |ctx| {
            let m = ctx.recv_msg()?;
            ctx.emit(&format!("got:{}", m.data))?;
            Ok(())
        });
        let mut pids = vec![consumer];
        for i in 0..3 {
            let args = format!("request {i}");
            pids.push(kernel.spawn_process(&format!("worker{i}"), &args, move |ctx| {
                let found = ctx.call_tool("search", &ctx.args())?;
                let prompt = ctx.tokenize(&found)?;
                let kv = ctx.kv_create()?;
                generate(
                    ctx,
                    kv,
                    &prompt,
                    &GenOpts {
                        max_tokens: 10,
                        temperature: 0.9,
                        ..Default::default()
                    },
                )?;
                if i == 0 {
                    let target = ctx.lookup_process("consumer")?.expect("consumer lives");
                    ctx.send_msg(target, "done")?;
                }
                Ok(())
            }));
        }
        kernel.run();
        let outputs = pids
            .iter()
            .map(|&p| kernel.record(p).unwrap().output.clone())
            .collect();
        (kernel.trace().fingerprint(), outputs)
    }
    let (fp1, out1) = run_once();
    let (fp2, out2) = run_once();
    assert_eq!(fp1, fp2);
    assert_eq!(out1, out2);
}

/// Baseline engines are deterministic too (same seed, same trace).
#[test]
fn engine_determinism() {
    let bpe = Bpe::default_tokenizer();
    let reqs: Vec<PromptRequest> = (0..5)
        .map(|i| PromptRequest {
            id: i,
            arrival: SimTime::ZERO + symphony::SimDuration::from_millis(i * 40),
            prompt: bpe.encode(&format!("request number {i} body")),
            max_tokens: 12,
            temperature: 0.8,
        })
        .collect();
    let run = |reqs: Vec<PromptRequest>| {
        let mut e = Engine::new(EngineConfig::vllm_for_tests());
        let (c, stats) = e.run(reqs);
        let tokens: Vec<Vec<u32>> = c.iter().map(|x| x.tokens.clone()).collect();
        (tokens, stats.makespan)
    };
    let (t1, m1) = run(reqs.clone());
    let (t2, m2) = run(reqs);
    assert_eq!(t1, t2);
    assert_eq!(m1, m2);
}

/// The quick-scale Figure 3 experiment preserves the paper's ordering:
/// under heavy skew Symphony ≤ vLLM ≤ TGI in latency per token.
#[test]
fn fig3_quick_ordering_under_heavy_skew() {
    use symphony_bench::fig3::{run_engine_point, run_symphony_point, Fig3Config, Scale};
    let cfg = Fig3Config::quick();
    let scale = Scale::quick(&cfg);
    let s = run_symphony_point(&cfg, &scale, 0.5, 40.0);
    let v = run_engine_point("vllm-noapc", &cfg, &scale, 0.5, 40.0);
    let t = run_engine_point("tgi", &cfg, &scale, 0.5, 40.0);
    assert_eq!(s.failed, 0);
    assert!(s.cache_hit_rate > 0.5, "heavy skew should mostly hit: {s:?}");
    assert!(
        s.latency_per_token_ms <= v.latency_per_token_ms,
        "symphony {s:?} vs vllm-noapc {v:?}"
    );
    assert!(
        s.latency_per_token_ms <= t.latency_per_token_ms,
        "symphony {s:?} vs tgi {t:?}"
    );
}

/// Tokenizer round-trips compose with the whole pipeline: emitted output is
/// the detokenisation of emitted tokens.
#[test]
fn emitted_output_matches_detokenised_tokens() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());
    let pid = kernel.spawn_process("echo-tokens", "round trip of tokens", |ctx| {
        let toks = ctx.tokenize(&ctx.args())?;
        ctx.emit_tokens(&toks)?;
        Ok(())
    });
    kernel.run();
    assert_eq!(kernel.record(pid).unwrap().output, "round trip of tokens");
}

/// The Figure 3 harness itself is deterministic: the same point measured
/// twice yields identical numbers (no hidden wall-clock or map-order
/// dependence anywhere in the stack).
#[test]
fn fig3_point_is_reproducible() {
    use symphony_bench::fig3::{run_symphony_point, Fig3Config, Scale};
    let cfg = Fig3Config::quick();
    let scale = Scale::quick(&cfg);
    let a = run_symphony_point(&cfg, &scale, 1.0, 20.0);
    let b = run_symphony_point(&cfg, &scale, 1.0, 20.0);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.mean_latency_s, b.mean_latency_s);
    assert_eq!(a.throughput_tok_s, b.throughput_tok_s);
    assert_eq!(a.cache_hit_rate, b.cache_hit_rate);
}
