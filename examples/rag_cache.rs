//! Application-controlled prompt caching (the Figure 3 scenario, small).
//!
//! RAG requests arrive for documents with skewed popularity. The LIP — not
//! the serving system — decides what to cache: popular documents are
//! prefilled once, published in KVFS, pinned, and forked by later requests.
//!
//! Run with: `cargo run --example rag_cache`

use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig, Mode, SimDuration, ToolOutcome, ToolSpec};
use symphony_sim::{Rng, Zipf};
use symphony_tokenizer::CorpusGen;

const DOCS: usize = 8;
const CACHE_TOP_K: usize = 3;
const REQUESTS: usize = 20;

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());
    let bpe = kernel.tokenizer();

    // A small document corpus served by a retrieval tool.
    let docs: Vec<String> = (0..DOCS)
        .map(|i| CorpusGen::new(100 + i as u64).paragraph(60))
        .collect();
    let docs_for_tool = std::sync::Arc::new(docs);
    {
        let docs = docs_for_tool.clone();
        kernel.register_tool(
            "retrieve",
            ToolSpec::new(SimDuration::from_millis(10), move |args| {
                match args.parse::<usize>() {
                    Ok(i) if i < docs.len() => ToolOutcome::Ok(docs[i].clone()),
                    _ => ToolOutcome::Failed(format!("unknown topic {args}")),
                }
            }),
        );
    }
    let _ = bpe;

    // Zipf-popular topics, Poisson-ish arrival via fixed spacing.
    let popularity = Zipf::from_pareto_index(DOCS, 0.7);
    let mut rng = Rng::new(7);
    let mut pids = Vec::new();
    for i in 0..REQUESTS {
        let topic = popularity.sample(&mut rng);
        let at = symphony::SimTime::ZERO + SimDuration::from_millis(60 * i as u64);
        let args = format!("{topic}");
        pids.push((
            topic,
            kernel.schedule_process(at, &format!("rag{i}"), &args, |ctx| {
                let topic: usize = ctx.args().parse().map_err(|_| symphony::SysError::BadArgument)?;
                let path = format!("doc{topic}.kv");
                let (kv, hit) = match ctx.kv_open(&path) {
                    Ok(doc) => (ctx.kv_fork(doc)?, true),
                    Err(_) => {
                        let text = ctx.call_tool("retrieve", &topic.to_string())?;
                        let tokens = ctx.tokenize(&text)?;
                        let f = ctx.kv_create()?;
                        ctx.pred_positions(f, &tokens, 0)?;
                        // Application policy: publish only popular topics.
                        if topic < CACHE_TOP_K && ctx.kv_link(f, &path).is_ok() {
                            ctx.kv_chmod(f, Mode::SHARED_READ)?;
                            ctx.kv_pin(f)?;
                            (ctx.kv_fork(f)?, false)
                        } else {
                            (f, false)
                        }
                    }
                };
                let q = ctx.tokenize("\nexplain this topic")?;
                generate(ctx, kv, &q, &GenOpts { max_tokens: 12, emit: false, ..Default::default() })?;
                ctx.emit(if hit { "hit" } else { "miss" })?;
                ctx.kv_remove(kv)?;
                Ok(())
            }),
        ));
    }

    kernel.run();

    let mut hits = 0;
    let mut misses = 0;
    println!("topic  outcome  latency");
    for (topic, pid) in &pids {
        let rec = kernel.record(*pid).expect("record");
        let outcome = rec.output.as_str();
        if outcome == "hit" {
            hits += 1;
        } else {
            misses += 1;
        }
        println!(
            "{topic:>5}  {outcome:>7}  {}",
            rec.latency().expect("exited")
        );
    }
    println!("\nhits: {hits}, misses: {misses} (top-{CACHE_TOP_K} topics cached)");
    println!(
        "pinned KV still resident: {} pages",
        kernel.store().gpu_pages_used()
    );
}
