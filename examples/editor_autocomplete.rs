//! The paper's §2 running example: a code editor with live autocompletion.
//!
//! A naive prompt API recomputes the whole buffer on every keystroke. A LIP
//! keeps the buffer's KV file alive across keystrokes and appends only the
//! newly typed tokens, making per-keystroke latency near-constant.
//!
//! Run with: `cargo run --example editor_autocomplete`

use symphony::{Kernel, KernelConfig, SysError};
use symphony_workloads::EditorWorkload;

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());
    let mut workload = EditorWorkload::new(
        180,
        12,
        symphony::SimDuration::from_millis(200),
        42,
    );
    let trace = workload.next_trace();
    let keystrokes = trace.appends.len();
    let args = serialize_trace(&trace.initial_buffer, &trace.appends);

    let pid = kernel.spawn_process("editor", &args, move |ctx| {
        let parts = ctx.args();
        let (buffer, appends) = deserialize_trace(&parts).ok_or(SysError::BadArgument)?;

        // One persistent KV file for the whole editing session.
        let kv = ctx.kv_create()?;
        let initial = ctx.tokenize(&buffer)?;
        let mut dist = ctx
            .pred_positions(kv, &initial, 0)?
            .pop()
            .ok_or(SysError::BadArgument)?;
        let mut pos = initial.len() as u32;

        for (i, chunk) in appends.iter().enumerate() {
            let t0 = ctx.now()?;
            // Incremental update: append ONLY the typed tokens.
            let typed = ctx.tokenize(chunk)?;
            if !typed.is_empty() {
                dist = ctx
                    .pred_positions(kv, &typed, pos)?
                    .pop()
                    .ok_or(SysError::BadArgument)?;
                pos += typed.len() as u32;
            }
            // Offer a 3-token completion from a *fork* so the buffer file
            // stays exactly in sync with what the user typed.
            let probe = ctx.kv_fork(kv)?;
            let mut suggestion = Vec::new();
            let mut d = dist.clone();
            for p in pos..pos + 3 {
                let t = d.argmax();
                if t == ctx.eos() {
                    break;
                }
                suggestion.push(t);
                d = ctx.pred(probe, &[(t, p)])?.remove(0);
            }
            ctx.kv_remove(probe)?;
            let t1 = ctx.now()?;
            let text = ctx.detokenize(&suggestion)?;
            ctx.emit(&format!(
                "keystroke {i:>2}: +{:>2} tokens, suggestion {:?} in {}\n",
                typed.len(),
                text,
                t1.duration_since(t0)
            ))?;
        }
        ctx.kv_remove(kv)?;
        Ok(())
    });

    kernel.run();
    let rec = kernel.record(pid).expect("record");
    println!("status: {:?}", rec.status);
    print!("{}", rec.output);
    println!(
        "session: {keystrokes} completions, {} total pred tokens \
         (a resubmit-everything client would pay the full buffer each time)",
        rec.usage.pred_tokens
    );
}

/// Serialises the trace into the LIP's argument string.
fn serialize_trace(buffer: &str, appends: &[String]) -> String {
    let mut s = String::new();
    s.push_str(buffer);
    for a in appends {
        s.push('\u{1f}');
        s.push_str(a);
    }
    s
}

/// Parses the argument string back into `(buffer, appends)`.
fn deserialize_trace(args: &str) -> Option<(String, Vec<String>)> {
    let mut parts = args.split('\u{1f}');
    let buffer = parts.next()?.to_string();
    Some((buffer, parts.map(|s| s.to_string()).collect()))
}
