//! Cooperative multi-agent LIPs with server-side tools and IPC (§2.2, §4.3).
//!
//! A researcher agent calls tools and generates findings; a writer agent
//! waits for the findings over IPC and produces the summary. All
//! coordination happens inside the serving system — zero client round trips.
//!
//! Run with: `cargo run --example multi_agent`

use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig, SimDuration, ToolOutcome, ToolSpec};

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());

    kernel.register_tool(
        "search",
        ToolSpec::new(SimDuration::from_millis(40), |query| {
            ToolOutcome::Ok(format!("top result for {query}: cache reuse wins"))
        }),
    );
    kernel.register_tool(
        "calculator",
        ToolSpec::fixed(SimDuration::from_millis(5), |expr| {
            // A toy evaluator: sums a "+"-separated list.
            let sum: i64 = expr.split('+').filter_map(|t| t.trim().parse::<i64>().ok()).sum();
            ToolOutcome::Ok(sum.to_string())
        }),
    );

    let writer = kernel.spawn_process("writer", "", |ctx| {
        // Block until the researcher reports; the kernel parks this thread.
        let findings = ctx.recv_msg()?;
        let prompt = ctx.tokenize(&format!("summarize: {}", findings.data))?;
        let kv = ctx.kv_create()?;
        let out = generate(
            ctx,
            kv,
            &prompt,
            &GenOpts { max_tokens: 16, emit: false, ..Default::default() },
        )?;
        ctx.emit(&format!(
            "summary of {} chars in {} tokens",
            findings.data.len(),
            out.tokens.len()
        ))?;
        // Acknowledge back to the researcher.
        ctx.send_msg(findings.from, "received")?;
        Ok(())
    });
    let _ = writer;

    let researcher = kernel.spawn_process("researcher", "llm serving systems", |ctx| {
        let t0 = ctx.now()?;
        let web = ctx.call_tool("search", &ctx.args())?;
        let arithmetic = ctx.call_tool("calculator", "13 + 29")?;
        let kv = ctx.kv_create()?;
        let prompt = ctx.tokenize(&format!("notes on {web} and {arithmetic}"))?;
        let notes = generate(
            ctx,
            kv,
            &prompt,
            &GenOpts { max_tokens: 12, emit: false, ..Default::default() },
        )?;
        let note_text = ctx.detokenize(&notes.tokens)?;
        // Hand off to the writer by name.
        let writer = ctx
            .lookup_process("writer")?
            .ok_or(symphony::SysError::NotFound)?;
        ctx.send_msg(writer, &format!("{web} | {note_text}"))?;
        let ack = ctx.recv_msg()?;
        let t1 = ctx.now()?;
        ctx.emit(&format!(
            "handoff acknowledged ({}) after {}",
            ack.data,
            t1.duration_since(t0)
        ))?;
        Ok(())
    });

    kernel.run();

    for (name, pid) in [("researcher", researcher), ("writer", writer)] {
        let rec = kernel.record(pid).expect("record");
        println!("{name:>10}: {:?} — {}", rec.status, rec.output);
        println!(
            "{:>10}  tool calls: {}, pred tokens: {}",
            "", rec.usage.tool_calls, rec.usage.pred_tokens
        );
    }
}
