//! Policy-based generation (§2.3): watermarked sampling as a user program.
//!
//! The watermark biases a pseudo-random "green list" of tokens at every
//! step and a detector later verifies provenance from tokens alone. A
//! prompt API cannot express this — it needs the full distribution each
//! step — but in Symphony it is a few lines of LIP code over `pred`.
//!
//! Run with: `cargo run --example watermark`

use symphony::sampling::Watermark;
use symphony::{Kernel, KernelConfig, SysError};

const TOKENS: usize = 220;

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());

    let run = |kernel: &mut Kernel, name: &'static str, marked: bool| {
        kernel.spawn_process(name, "a paragraph about provenance", move |ctx| {
            let wm = Watermark::new(0x5EED, ctx.specials().bos);
            let prompt = ctx.tokenize(&ctx.args())?;
            let kv = ctx.kv_create()?;
            let mut dist = ctx
                .pred_positions(kv, &prompt, 0)?
                .pop()
                .ok_or(SysError::BadArgument)?;
            let mut prev = *prompt.last().expect("non-empty prompt");
            let mut pos = prompt.len() as u32;
            let mut out = Vec::new();
            while out.len() < TOKENS {
                let d = if marked { wm.bias(&dist, prev) } else { dist.clone() };
                let t = {
                    let d = d.top_p(0.9);
                    let u = ctx.rng_f64();
                    d.sample_with(u, ctx.specials().bos)
                };
                if t == ctx.eos() {
                    // Keep generating past EOS for a stable-length sample.
                    prev = t;
                    pos += 1;
                    dist = ctx.pred(kv, &[(t, pos - 1)])?.remove(0);
                    continue;
                }
                out.push(t);
                dist = ctx.pred(kv, &[(t, pos)])?.remove(0);
                prev = t;
                pos += 1;
            }
            // Report the detector's z-score on our own output.
            let z = wm.detect(&out);
            ctx.emit(&format!("{z:.2}"))?;
            Ok(())
        })
    };

    let marked = run(&mut kernel, "watermarked", true);
    let clean = run(&mut kernel, "clean", false);
    kernel.run();

    let z_marked: f64 = kernel.record(marked).unwrap().output.parse().unwrap();
    let z_clean: f64 = kernel.record(clean).unwrap().output.parse().unwrap();
    println!("detector z-score, watermarked generation: {z_marked:.2}  (threshold ~4)");
    println!("detector z-score, clean generation:       {z_clean:.2}");
    assert!(z_marked > z_clean, "watermark must raise the detector score");
    println!(
        "\nThe serving system was never modified: the bias runs inside the LIP\n\
         on the distributions `pred` returns."
    );
}
