//! Serving a program that arrives as *data* — the paper's literal pitch.
//!
//! The client ships LipScript source text; the server runs it in a
//! fuel/memory-metered sandbox with access only to the system-call surface.
//! This program implements Figure 2 of the paper: parallel generation over
//! a forked shared prefix.
//!
//! Run with: `cargo run --example lipscript_program`

use symphony::{Kernel, KernelConfig, Mode};
use symphony_lipscript::{run_lip, InterpLimits};

/// What the client sends over the wire.
const CLIENT_PROGRAM: &str = r#"
// Figure 2, in LipScript: fork the preloaded system prompt per query and
// generate each continuation on its own thread.
fn branch(kv, query) {
    let suffix = tokenize(query);
    let dists = pred(kv, suffix, kv_next_pos(kv));
    let d = dists[len(dists) - 1];
    let n = 0;
    while (n < 12) {
        let t = argmax(d);
        if (t == eos()) { break; }
        d = pred(kv, [t], kv_next_pos(kv))[0];
        n = n + 1;
    }
    emit("[" + query + " -> " + str(n) + " tokens]\n");
    kv_remove(kv);
    return n;
}

let prefix = kv_open("sys_msg.kv");
let queries = ["first question", "second question", "third question"];
let threads = [];
for q in queries {
    threads = push(threads, spawn("branch", [kv_fork(prefix), q]));
}
let ok = true;
for t in threads {
    ok = ok && join(t);
}
if (ok) { emit("all branches joined\n"); }
"#;

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());

    // Deployment-time setup: a shared system prompt, readable by all LIPs.
    let sys = kernel
        .tokenizer()
        .encode("you are a helpful assistant that reasons step by step");
    kernel
        .preload_kv("sys_msg.kv", &sys, Mode::SHARED_READ, true)
        .expect("preload system prompt");

    let src = CLIENT_PROGRAM.to_string();
    let pid = kernel.spawn_process("client-program", "", move |ctx| {
        run_lip(
            &src,
            ctx,
            InterpLimits {
                fuel: 1_000_000,
                memory_cells: 500_000,
                max_depth: 32,
            },
        )
        .map(|_| ())
        .map_err(|e| symphony::SysError::ToolFailed(e.to_string()))
    });

    kernel.run();
    let rec = kernel.record(pid).expect("record");
    println!("status: {:?}", rec.status);
    print!("{}", rec.output);
    println!(
        "sandboxed execution: {} syscalls, {} pred tokens, {} threads",
        rec.usage.syscalls, rec.usage.pred_tokens, rec.usage.threads_spawned
    );
}
