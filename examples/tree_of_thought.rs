//! Tree-of-Thought reasoning as ONE program (§4.3).
//!
//! A single LIP implements the whole search: it forks the problem context
//! per hypothesis (copy-on-write, no tensor duplication), generates each
//! branch on its own thread, scores branches by model confidence, prunes,
//! and recurses on the winner.
//!
//! Run with: `cargo run --example tree_of_thought`

use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig, Mode, SysError};

const BRANCHES: usize = 3;
const DEPTH: usize = 2;

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());

    // Publish the problem statement as a shared, pinned KV file.
    let problem = kernel
        .tokenizer()
        .encode("solve the following problem by exploring different approaches step by step");
    kernel
        .preload_kv("problem.kv", &problem, Mode::SHARED_READ, true)
        .expect("preload problem");

    let pid = kernel.spawn_process("tot", "", |ctx| {
        let mut frontier = ctx.kv_open("problem.kv")?;
        for depth in 0..DEPTH {
            // Expand: one forked context + one thread per hypothesis.
            let mut branches = Vec::new();
            for b in 0..BRANCHES {
                let kv = ctx.kv_fork(frontier)?;
                let tid = ctx.spawn(move |tctx| {
                    let seed = tctx.tokenize(&format!("approach {b}:"))?;
                    let out = generate(
                        tctx,
                        kv,
                        &seed,
                        &GenOpts {
                            max_tokens: 16,
                            temperature: 0.9,
                            emit: false,
                            ..Default::default()
                        },
                    )?;
                    // Score = mean confidence of the chosen tokens; a real
                    // application would use a value model or verifier here.
                    let entries = tctx.kv_read(kv, 0, tctx.kv_len(kv)?)?;
                    let score = out.tokens.len() as f64 + entries.len() as f64 * 1e-3;
                    tctx.emit(&format!("branch {b} (depth {depth}): score {score:.3}\n"))?;
                    Ok(())
                })?;
                branches.push((kv, tid));
            }
            // Join all hypotheses; keep the longest context as the winner
            // (stand-in for the best-scored hypothesis).
            let mut best: Option<(symphony::FileId, usize)> = None;
            for (kv, tid) in branches {
                let status = ctx.join(tid)?;
                if !status.is_ok() {
                    return Err(SysError::ThreadFailed);
                }
                let len = ctx.kv_len(kv)?;
                match best {
                    Some((prev, best_len)) if len > best_len => {
                        ctx.kv_remove(prev)?;
                        best = Some((kv, len));
                    }
                    Some(_) => ctx.kv_remove(kv)?,
                    None => best = Some((kv, len)),
                }
            }
            let (winner, len) = best.expect("at least one branch");
            ctx.emit(&format!("depth {depth}: winner has {len} cached tokens\n"))?;
            if depth > 0 {
                ctx.kv_remove(frontier)?;
            }
            frontier = winner;
        }
        ctx.kv_remove(frontier)?;
        Ok(())
    });

    kernel.run();
    let rec = kernel.record(pid).expect("record");
    println!("status: {:?}", rec.status);
    print!("{}", rec.output);
    let stats = kernel.kv_stats();
    println!(
        "kv: {} copy-on-write page copies; {} pages still resident",
        stats.cow_copies,
        kernel.store().gpu_pages_used()
    );
    println!(
        "gpu: {} batches, {} tokens",
        kernel.gpu_metrics().batches,
        kernel.gpu_metrics().tokens
    );
}
