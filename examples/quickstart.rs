//! Quickstart: serve one LLM Inference Program.
//!
//! The LIP owns the generation loop: it prefills its prompt with one `pred`
//! system call, then samples and extends token by token — the paper's core
//! "separation of generation and model computation".
//!
//! Run with: `cargo run --example quickstart`

use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig};

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());

    let pid = kernel.spawn_process(
        "quickstart",
        "the design of the serving system",
        |ctx| {
            // Tokenise the request and create a fresh KV file for it.
            let prompt = ctx.tokenize(&ctx.args())?;
            let kv = ctx.kv_create()?;

            // The generation loop lives HERE, in the program — not in the
            // server. `generate` is ordinary library code over `pred`.
            let out = generate(
                ctx,
                kv,
                &prompt,
                &GenOpts {
                    max_tokens: 48,
                    temperature: 0.7,
                    top_p: Some(0.9),
                    emit: true,
                    ..Default::default()
                },
            )?;

            ctx.emit(&format!(
                "\n[generated {} tokens, eos={}]",
                out.tokens.len(),
                out.stopped_on_eos
            ))?;
            ctx.kv_remove(kv)?;
            Ok(())
        },
    );

    kernel.run();

    let rec = kernel.record(pid).expect("process record");
    println!("status : {:?}", rec.status);
    println!("latency: {}", rec.latency().expect("exited"));
    println!("output : {}", rec.output);
    println!(
        "usage  : {} syscalls, {} pred calls, {} tokens through pred",
        rec.usage.syscalls, rec.usage.pred_calls, rec.usage.pred_tokens
    );
}
