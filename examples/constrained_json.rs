//! Constrained decoding inside a LIP (§2.3, §4.1).
//!
//! Because `pred` exposes the full next-token distribution, the program can
//! mask it with a grammar state machine at every step — no serving-system
//! support needed. This example forces syntactically valid JSON via a
//! byte-level pushdown automaton lifted to tokens, and a multiple-choice
//! answer via a token trie.
//!
//! Run with: `cargo run --example constrained_json`

use symphony::sampling::{generate_constrained, GenOpts, JsonConstraint, TrieConstraint};
use symphony::{Kernel, KernelConfig};
use symphony_tokenizer::Bpe;

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());

    let json_pid = kernel.spawn_process(
        "json",
        "produce a configuration object as json",
        |ctx| {
            let prompt = ctx.tokenize(&ctx.args())?;
            let kv = ctx.kv_create()?;
            let mut grammar = JsonConstraint::new(Bpe::default_tokenizer().vocab());
            let tokens = generate_constrained(
                ctx,
                kv,
                &prompt,
                &mut grammar,
                &GenOpts {
                    max_tokens: 80,
                    temperature: 0.8,
                    emit: true,
                    ..Default::default()
                },
            )?;
            ctx.emit(&format!("\n[{} tokens]", tokens.len()))?;
            Ok(())
        },
    );

    let choice_pid = kernel.spawn_process(
        "choice",
        "is application-level cache control beneficial? answer:",
        |ctx| {
            let prompt = ctx.tokenize(&ctx.args())?;
            let options = vec![
                ctx.tokenize(" yes")?,
                ctx.tokenize(" no")?,
                ctx.tokenize(" it depends")?,
            ];
            let kv = ctx.kv_create()?;
            let mut trie = TrieConstraint::new(options);
            generate_constrained(ctx, kv, &prompt, &mut trie, &GenOpts::default())?;
            Ok(())
        },
    );

    kernel.run();

    let json = kernel.record(json_pid).expect("record");
    println!("JSON-constrained ({:?}):", json.status);
    println!("  {}", json.output);
    let choice = kernel.record(choice_pid).expect("record");
    println!("Trie-constrained ({:?}):", choice.status);
    println!("  answer:{}", choice.output);
}
