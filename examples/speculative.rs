//! Speculative decoding as a user program (§4.1).
//!
//! The LIP drafts several tokens cheaply (here: sampling from a sharpened
//! view of the distribution, standing in for a small draft model), verifies
//! them with ONE multi-token `pred`, and rolls the KV file back to the
//! accepted prefix with `kv_truncate` — no serving-system support required.
//!
//! Run with: `cargo run --example speculative`

use symphony::sampling::verify_greedy;
use symphony::{Kernel, KernelConfig, SysError};

const DRAFT_LEN: usize = 4;
const TARGET_TOKENS: usize = 48;

fn main() {
    let mut kernel = Kernel::new(KernelConfig::for_tests());

    let pid = kernel.spawn_process("speculative", "a context for drafting", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        let mut dist = ctx
            .pred_positions(kv, &prompt, 0)?
            .pop()
            .ok_or(SysError::BadArgument)?;
        let mut pos = prompt.len() as u32;
        let mut produced = 0usize;
        let mut drafted = 0usize;
        let mut accepted_total = 0usize;
        let eos = ctx.eos();

        'outer: while produced < TARGET_TOKENS {
            // Draft: walk the sharpened distribution greedily. A production
            // deployment would run a smaller model here; the surrogate's
            // semantics make the draft plausible-but-imperfect.
            let mut draft = Vec::with_capacity(DRAFT_LEN);
            let mut d = dist.clone();
            for _ in 0..DRAFT_LEN {
                let t = d.with_temperature(1.4).argmax();
                if t == eos {
                    break;
                }
                draft.push(t);
                // The cheap draft has no context access beyond the current
                // distribution, so later draft tokens are guesses.
                d = d.top_p(0.5);
            }
            if draft.is_empty() {
                break;
            }
            drafted += draft.len();

            // Verify: one pred over all draft tokens.
            let pairs: Vec<(u32, u32)> = draft
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, pos + i as u32))
                .collect();
            let dists = ctx.pred(kv, &pairs)?;
            let (accepted, next) = verify_greedy(&draft, &dist, &dists);
            accepted_total += accepted;

            // Roll back rejected suffix entries.
            if accepted < draft.len() {
                let keep = ctx.kv_len(kv)? - (draft.len() - accepted);
                ctx.kv_truncate(kv, keep)?;
            }
            ctx.emit_tokens(&draft[..accepted])?;
            produced += accepted;
            pos += accepted as u32;

            if next == eos {
                break 'outer;
            }
            // Commit the correction/bonus token from the target model.
            ctx.emit_tokens(&[next])?;
            dist = ctx.pred(kv, &[(next, pos)])?.remove(0);
            pos += 1;
            produced += 1;
        }

        ctx.emit(&format!(
            "\n[accepted {accepted_total}/{drafted} draft tokens]"
        ))?;
        Ok(())
    });

    kernel.run();
    let rec = kernel.record(pid).expect("record");
    println!("status: {:?}", rec.status);
    println!("{}", rec.output);
    println!(
        "pred calls: {} for {} emitted tokens (speculation amortises steps)",
        rec.usage.pred_calls, rec.usage.emitted_tokens
    );
}
