//! Workspace root crate: re-exports for examples and integration tests.
//!
//! The actual system lives in the `crates/` members; this crate exists so the
//! repository-level `examples/` and `tests/` directories can span all of them.

pub use symphony;
pub use symphony_baseline as baseline;
pub use symphony_gpu as gpu;
pub use symphony_kvfs as kvfs;
pub use symphony_lipscript as lipscript;
pub use symphony_model as model;
pub use symphony_sim as sim;
pub use symphony_tokenizer as tokenizer;
pub use symphony_workloads as workloads;
