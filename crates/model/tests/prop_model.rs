//! Property tests for distribution algebra and the KV-reuse invariant.

use proptest::prelude::*;
use symphony_model::{Dist, Fingerprinter, ModelConfig, Surrogate, TokenId};

fn arb_dist() -> impl Strategy<Value = Dist> {
    (
        proptest::collection::btree_map(0u32..500, 0.01f64..10.0, 1..20),
        0.0f64..2.0,
        0u32..1000,
    )
        .prop_map(|(entries, tail_w, tail_n)| {
            let entries: Vec<(TokenId, f64)> = entries.into_iter().collect();
            Dist::from_weights(entries, tail_w, tail_n)
        })
}

proptest! {
    /// Every constructed distribution is normalised.
    #[test]
    fn dist_is_normalised(d in arb_dist()) {
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!(d.prob(d.argmax()) > 0.0);
    }

    /// Temperature, top-k, top-p and constrain all preserve normalisation.
    #[test]
    fn dist_transforms_preserve_mass(
        d in arb_dist(),
        t in 0.0f64..3.0,
        k in 1usize..10,
        p in 0.05f64..1.0,
    ) {
        prop_assert!((d.with_temperature(t).total_mass() - 1.0).abs() < 1e-9);
        prop_assert!((d.top_k(k).total_mass() - 1.0).abs() < 1e-9);
        prop_assert!((d.top_p(p).total_mass() - 1.0).abs() < 1e-9);
        let allowed: Vec<TokenId> = d.entries().iter().take(3).map(|&(t, _)| t).collect();
        if let Some(c) = d.constrain(&allowed) {
            prop_assert!((c.total_mass() - 1.0).abs() < 1e-9);
            // Constrained support is exactly the allowed set.
            for &(tok, pr) in c.entries() {
                prop_assert!(allowed.contains(&tok));
                prop_assert!(pr > 0.0);
            }
        }
    }

    /// The argmax survives sharpening and truncation.
    #[test]
    fn argmax_stable_under_sharpening(d in arb_dist(), k in 1usize..8) {
        let top = d.argmax();
        prop_assert_eq!(d.with_temperature(0.5).argmax(), top);
        prop_assert_eq!(d.top_k(k).argmax(), top);
        prop_assert_eq!(d.with_temperature(0.0).argmax(), top);
    }

    /// Sampling with any draw lands in the distribution's support (entries
    /// or tail of the declared vocabulary).
    #[test]
    fn sample_lands_in_vocab(d in arb_dist(), u in 0.0f64..1.0) {
        let vocab = 2_000u32;
        let t = d.sample_with(u, vocab);
        prop_assert!(t < vocab || d.entries().iter().any(|&(e, _)| e == t));
    }

    /// The KV-reuse invariant, property-tested: any split of a token
    /// sequence into two runs reaches the same fingerprint, hence the same
    /// distribution.
    #[test]
    fn context_split_equivalence(
        tokens in proptest::collection::vec(0u32..1000, 1..40),
        split_frac in 0.0f64..1.0,
    ) {
        let model = Surrogate::new(ModelConfig::tiny(), 99);
        let f: Fingerprinter = model.fingerprinter();
        let split = ((tokens.len() as f64) * split_frac) as usize;
        let pairs: Vec<(u32, u32)> =
            tokens.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        let whole = f.advance_run(f.origin(), &pairs);
        let part1 = f.advance_run(f.origin(), &pairs[..split]);
        let part2 = f.advance_run(part1, &pairs[split..]);
        prop_assert_eq!(whole, part2);
        prop_assert_eq!(model.next_dist(whole), model.next_dist(part2));
    }

    /// Different suffixes diverge: the fingerprint is not lossy in ways
    /// that alias adjacent contexts (probabilistically; exact collisions in
    /// 64 bits are negligible at this scale).
    #[test]
    fn different_last_token_diverges(
        prefix in proptest::collection::vec(0u32..1000, 0..20),
        a in 0u32..1000,
        b in 0u32..1000,
    ) {
        prop_assume!(a != b);
        let f = Fingerprinter::new(7);
        let base = f.advance_run(
            f.origin(),
            &prefix.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect::<Vec<_>>(),
        );
        let pos = prefix.len() as u32;
        prop_assert_ne!(f.advance(base, a, pos), f.advance(base, b, pos));
    }
}
