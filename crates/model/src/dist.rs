//! Sparse next-token distributions.
//!
//! §2.3 of the paper notes that shipping a full distribution to the client is
//! impractical ("approximately 200 KB using FP16" for a 100K vocabulary) —
//! which is precisely why LIPs run *inside* the server with direct access to
//! it. The simulator represents a distribution sparsely: the top candidates
//! carry explicit probabilities and the remaining `tail_tokens` vocabulary
//! entries share a uniform `tail_mass`. All decoding algorithms the paper
//! mentions — temperature sampling, top-k, top-p, constrained masking,
//! speculative verification via [`Dist::prob`] — operate on this type.

use serde::{Deserialize, Serialize};

use crate::TokenId;

/// A normalised next-token distribution: explicit top candidates plus a
/// uniform tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dist {
    /// `(token, probability)` sorted by probability, descending. Tokens are
    /// unique and none of them belongs to the tail.
    entries: Vec<(TokenId, f64)>,
    /// Total probability shared uniformly by the tail tokens.
    tail_mass: f64,
    /// Number of vocabulary tokens in the tail.
    tail_tokens: u32,
}

impl Dist {
    /// Builds a distribution from raw non-negative weights; normalises so
    /// entry mass plus tail mass sums to 1.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, contains duplicates, or any weight is
    /// negative/non-finite; or if `tail_mass < 0`.
    pub fn from_weights(
        mut entries: Vec<(TokenId, f64)>,
        tail_weight: f64,
        tail_tokens: u32,
    ) -> Self {
        assert!(!entries.is_empty(), "distribution needs at least one entry");
        assert!(
            tail_weight >= 0.0 && tail_weight.is_finite(),
            "tail weight must be non-negative"
        );
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0.0;
        for &(t, w) in &entries {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            assert!(seen.insert(t), "duplicate token {t} in distribution");
            total += w;
        }
        let tail_weight = if tail_tokens == 0 { 0.0 } else { tail_weight };
        total += tail_weight;
        assert!(total > 0.0, "distribution must have positive mass");
        for e in &mut entries {
            e.1 /= total;
        }
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN prob").then(a.0.cmp(&b.0)));
        Dist {
            entries,
            tail_mass: tail_weight / total,
            tail_tokens,
        }
    }

    /// [`Dist::from_weights`] for callers that guarantee unique tokens and
    /// finite non-negative weights (the surrogate's generator, which draws
    /// from a dedup'd candidate set). Skips the per-entry validation pass —
    /// the dominant cost on the model hot path — but performs the *same*
    /// normalisation arithmetic in the same order, so the result is
    /// bit-identical to the validating constructor.
    pub(crate) fn from_weights_trusted(
        mut entries: Vec<(TokenId, f64)>,
        tail_weight: f64,
        tail_tokens: u32,
    ) -> Self {
        debug_assert!(!entries.is_empty());
        let mut total = 0.0;
        for &(_, w) in &entries {
            debug_assert!(w.is_finite() && w >= 0.0);
            total += w;
        }
        let tail_weight = if tail_tokens == 0 { 0.0 } else { tail_weight };
        total += tail_weight;
        debug_assert!(total > 0.0);
        for e in &mut entries {
            e.1 /= total;
        }
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN prob").then(a.0.cmp(&b.0)));
        Dist {
            entries,
            tail_mass: tail_weight / total,
            tail_tokens,
        }
    }

    /// Reassembles a distribution from the exact parts a previous
    /// [`Dist::entries`] / [`Dist::tail_mass`] / [`Dist::tail_tokens`]
    /// reported, without re-normalising. [`Dist::from_weights`] divides by
    /// the total, which is floating-point-inexact; a journal replay that
    /// went through it could flip a near-tie sample. Entries must already
    /// be sorted by descending probability (token-ascending on ties) and
    /// sum with the tail to ~1.
    pub fn from_normalized_parts(
        entries: Vec<(TokenId, f64)>,
        tail_mass: f64,
        tail_tokens: u32,
    ) -> Self {
        assert!(!entries.is_empty(), "distribution needs at least one entry");
        assert!(
            tail_mass >= 0.0 && tail_mass.is_finite(),
            "tail mass must be non-negative"
        );
        let mut seen = std::collections::BTreeSet::new();
        let mut total = tail_mass;
        for w in entries.windows(2) {
            assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "entries must be sorted descending"
            );
        }
        for &(t, p) in &entries {
            assert!(p.is_finite() && p >= 0.0, "probabilities must be non-negative");
            assert!(seen.insert(t), "duplicate token {t} in distribution");
            total += p;
        }
        assert!(
            (total - 1.0).abs() < 1e-6,
            "parts must already be normalised (total {total})"
        );
        Dist {
            entries,
            tail_mass: if tail_tokens == 0 { 0.0 } else { tail_mass },
            tail_tokens,
        }
    }

    /// The explicit candidates, highest probability first.
    pub fn entries(&self) -> &[(TokenId, f64)] {
        &self.entries
    }

    /// Total tail probability.
    pub fn tail_mass(&self) -> f64 {
        self.tail_mass
    }

    /// Number of tail tokens.
    pub fn tail_tokens(&self) -> u32 {
        self.tail_tokens
    }

    /// Probability of `token`: its entry probability, or the uniform
    /// per-token tail share if it is not an explicit candidate.
    pub fn prob(&self, token: TokenId) -> f64 {
        for &(t, p) in &self.entries {
            if t == token {
                return p;
            }
        }
        if self.tail_tokens == 0 {
            0.0
        } else {
            self.tail_mass / self.tail_tokens as f64
        }
    }

    /// The most likely token.
    pub fn argmax(&self) -> TokenId {
        self.entries[0].0
    }

    /// Samples a token given a uniform draw `u ∈ [0, 1)`.
    ///
    /// If the draw lands in the tail, a pseudo-token is synthesised
    /// deterministically from the residual draw; it is guaranteed not to
    /// collide with an explicit candidate. Callers that must avoid tail
    /// tokens (e.g. greedy loops) should use [`Dist::top_p`]/[`Dist::top_k`]
    /// first.
    pub fn sample_with(&self, u: f64, vocab_hint: u32) -> TokenId {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        let mut acc = 0.0;
        for &(t, p) in &self.entries {
            acc += p;
            if u < acc {
                return t;
            }
        }
        // Tail: derive an index from the residual and skip candidates.
        let residual = if self.tail_mass > 0.0 {
            ((u - acc) / self.tail_mass).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let vocab = vocab_hint.max(self.entries.len() as u32 + 1);
        let mut tok = (residual * vocab as f64) as TokenId % vocab;
        while self.entries.iter().any(|&(t, _)| t == tok) {
            tok = (tok + 1) % vocab;
        }
        tok
    }

    /// Rescales probabilities by `p^(1/temperature)` and renormalises.
    ///
    /// `temperature == 0` is treated as greedy (all mass on the argmax).
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is negative or non-finite.
    pub fn with_temperature(&self, temperature: f64) -> Dist {
        assert!(
            temperature.is_finite() && temperature >= 0.0,
            "temperature must be non-negative"
        );
        if temperature == 0.0 {
            return Dist {
                entries: vec![(self.argmax(), 1.0)],
                tail_mass: 0.0,
                tail_tokens: 0,
            };
        }
        let inv = 1.0 / temperature;
        let entries: Vec<(TokenId, f64)> = self
            .entries
            .iter()
            .map(|&(t, p)| (t, p.powf(inv)))
            .collect();
        let tail_per = if self.tail_tokens == 0 {
            0.0
        } else {
            (self.tail_mass / self.tail_tokens as f64).powf(inv)
        };
        Dist::from_weights(entries, tail_per * self.tail_tokens as f64, self.tail_tokens)
    }

    /// Keeps only the `k` most likely candidates (tail dropped), renormalised.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn top_k(&self, k: usize) -> Dist {
        assert!(k > 0, "top_k needs k >= 1");
        let kept: Vec<(TokenId, f64)> =
            self.entries.iter().take(k).copied().collect();
        Dist::from_weights(kept, 0.0, 0)
    }

    /// Nucleus sampling: keeps the smallest candidate prefix with cumulative
    /// mass at least `p` (tail dropped), renormalised.
    pub fn top_p(&self, p: f64) -> Dist {
        let p = p.clamp(0.0, 1.0);
        let mut kept = Vec::new();
        let mut acc = 0.0;
        for &(t, pr) in &self.entries {
            kept.push((t, pr));
            acc += pr;
            if acc >= p {
                break;
            }
        }
        Dist::from_weights(kept, 0.0, 0)
    }

    /// Constrained decoding: restricts the distribution to `allowed` tokens.
    ///
    /// Allowed tokens that were explicit candidates keep their weight; other
    /// allowed tokens receive the uniform tail share, so a grammar can force
    /// a token the model ranked low. Returns `None` if `allowed` is empty.
    pub fn constrain(&self, allowed: &[TokenId]) -> Option<Dist> {
        if allowed.is_empty() {
            return None;
        }
        let tail_per = if self.tail_tokens == 0 {
            0.0
        } else {
            self.tail_mass / self.tail_tokens as f64
        };
        let mut seen = std::collections::BTreeSet::new();
        let entries: Vec<(TokenId, f64)> = allowed
            .iter()
            .filter(|&&t| seen.insert(t))
            .map(|&t| {
                let w = self
                    .entries
                    .iter()
                    .find(|&&(et, _)| et == t)
                    .map(|&(_, p)| p)
                    .unwrap_or(tail_per);
                // Give fully-suppressed tokens a floor so a grammar with only
                // previously-impossible continuations still terminates.
                (t, w.max(1e-12))
            })
            .collect();
        Some(Dist::from_weights(entries, 0.0, 0))
    }

    /// Shannon entropy in nats (tail contributes as a uniform block).
    pub fn entropy(&self) -> f64 {
        let mut h = 0.0;
        for &(_, p) in &self.entries {
            if p > 0.0 {
                h -= p * p.ln();
            }
        }
        if self.tail_mass > 0.0 && self.tail_tokens > 0 {
            let per = self.tail_mass / self.tail_tokens as f64;
            h -= self.tail_mass * per.ln();
        }
        h
    }

    /// Sum of all probability (should be 1; exposed for tests).
    pub fn total_mass(&self) -> f64 {
        self.entries.iter().map(|&(_, p)| p).sum::<f64>() + self.tail_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Dist {
        Dist::from_weights(vec![(10, 5.0), (20, 3.0), (30, 1.0)], 1.0, 100)
    }

    #[test]
    fn normalises_and_sorts() {
        let dist = d();
        assert!((dist.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(dist.argmax(), 10);
        assert_eq!(dist.entries()[0].0, 10);
        assert_eq!(dist.entries()[2].0, 30);
        assert!((dist.prob(10) - 0.5).abs() < 1e-12);
        assert!((dist.tail_mass() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tail_prob_uniform() {
        let dist = d();
        assert!((dist.prob(999) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn sample_with_hits_entries_and_tail() {
        let dist = d();
        assert_eq!(dist.sample_with(0.0, 1000), 10);
        assert_eq!(dist.sample_with(0.49, 1000), 10);
        assert_eq!(dist.sample_with(0.51, 1000), 20);
        assert_eq!(dist.sample_with(0.85, 1000), 30);
        // Tail draw produces a non-candidate token.
        let t = dist.sample_with(0.95, 1000);
        assert!(![10, 20, 30].contains(&t));
        assert!(t < 1000);
    }

    #[test]
    fn temperature_zero_is_greedy() {
        let g = d().with_temperature(0.0);
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.argmax(), 10);
        assert!((g.prob(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_one_is_identity() {
        let dist = d();
        let t1 = dist.with_temperature(1.0);
        for &(tok, p) in dist.entries() {
            assert!((t1.prob(tok) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn low_temperature_sharpens_high_flattens() {
        let dist = d();
        assert!(dist.with_temperature(0.5).prob(10) > dist.prob(10));
        assert!(dist.with_temperature(2.0).prob(10) < dist.prob(10));
        // Entropy ordering.
        assert!(dist.with_temperature(2.0).entropy() > dist.entropy());
    }

    #[test]
    fn top_k_and_top_p() {
        let dist = d();
        let k2 = dist.top_k(2);
        assert_eq!(k2.entries().len(), 2);
        assert_eq!(k2.tail_mass(), 0.0);
        assert!((k2.total_mass() - 1.0).abs() < 1e-12);
        // p=0.5 keeps just the top entry (its mass is exactly 0.5).
        let p = dist.top_p(0.5);
        assert_eq!(p.entries().len(), 1);
        // p=1.0 keeps all explicit entries.
        assert_eq!(dist.top_p(1.0).entries().len(), 3);
    }

    #[test]
    fn constrain_restricts_support() {
        let dist = d();
        let c = dist.constrain(&[20, 777]).unwrap();
        assert!((c.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(c.argmax(), 20);
        assert!(c.prob(777) > 0.0);
        assert_eq!(c.prob(10), 0.0);
        assert!(dist.constrain(&[]).is_none());
    }

    #[test]
    fn constrain_dedups_allowed_list() {
        let c = d().constrain(&[20, 20, 20]).unwrap();
        assert_eq!(c.entries().len(), 1);
        assert!((c.prob(20) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate token")]
    fn rejects_duplicates() {
        Dist::from_weights(vec![(1, 1.0), (1, 2.0)], 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn rejects_zero_mass() {
        Dist::from_weights(vec![(1, 0.0)], 0.0, 0);
    }

    #[test]
    fn normalized_parts_round_trip_is_bit_exact() {
        let orig = Dist::from_weights(vec![(7, 3.0), (2, 1.0), (9, 1.0)], 0.5, 100);
        let back = Dist::from_normalized_parts(
            orig.entries().to_vec(),
            orig.tail_mass(),
            orig.tail_tokens(),
        );
        assert_eq!(orig.entries(), back.entries());
        assert_eq!(orig.tail_mass().to_bits(), back.tail_mass().to_bits());
        assert_eq!(orig.tail_tokens(), back.tail_tokens());
    }

    #[test]
    #[should_panic(expected = "sorted descending")]
    fn normalized_parts_reject_unsorted() {
        Dist::from_normalized_parts(vec![(1, 0.25), (2, 0.75)], 0.0, 0);
    }
}
