//! The surrogate language model.
//!
//! Maps a context fingerprint to a deterministic sparse next-token
//! distribution. The distribution is *semantically arbitrary* (it is not a
//! trained model) but *statistically shaped*: candidate probabilities decay
//! Zipf-like, an EOS gate terminates generations with geometric lengths
//! around [`crate::ModelConfig::mean_output_tokens`], and everything is a pure
//! function of `(model seed, context fingerprint)` — the property the whole
//! KV-reuse test story rests on.

use crate::config::ModelConfig;
use crate::dist::Dist;
use crate::fingerprint::{CtxFingerprint, Fingerprinter};
use crate::TokenId;

/// Ties the surrogate's emitted token IDs to a concrete tokenizer vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabInfo {
    /// Emitted content tokens are drawn from `0..content_tokens`.
    pub content_tokens: u32,
    /// The end-of-sequence token ID.
    pub eos: TokenId,
}

impl VocabInfo {
    /// Vocabulary info for a tokenizer's vocab and specials.
    pub fn from_tokenizer(bpe: &symphony_tokenizer::Bpe) -> Self {
        VocabInfo {
            content_tokens: bpe.specials().bos,
            eos: bpe.specials().eos,
        }
    }
}

/// A deterministic surrogate LLM.
#[derive(Debug, Clone)]
pub struct Surrogate {
    config: ModelConfig,
    seed: u64,
    vocab: VocabInfo,
    fingerprinter: Fingerprinter,
    /// `(i+1)^-1.3` for each candidate rank — `powf` hoisted out of
    /// [`Surrogate::next_dist`], which runs once per generated token.
    zipf: [f64; CANDIDATES],
}

/// Number of explicit candidates per distribution.
const CANDIDATES: usize = 24;

/// Probability mass reserved for the uniform tail.
const TAIL_MASS: f64 = 0.05;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from 64 hash bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Surrogate {
    /// Creates a surrogate with the default vocabulary derived from the
    /// model config (content tokens `0..vocab_size-1`, EOS = `vocab_size-1`).
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        let vocab = VocabInfo {
            content_tokens: config.vocab_size - 1,
            eos: config.vocab_size - 1,
        };
        let mut zipf = [0.0; CANDIDATES];
        for (i, z) in zipf.iter_mut().enumerate() {
            *z = ((i + 1) as f64).powf(-1.3);
        }
        Surrogate {
            config,
            seed,
            vocab,
            fingerprinter: Fingerprinter::new(seed),
            zipf,
        }
    }

    /// Overrides the emitted vocabulary (e.g. to match a trained tokenizer).
    pub fn with_vocab(mut self, vocab: VocabInfo) -> Self {
        assert!(vocab.content_tokens > 0, "need at least one content token");
        self.vocab = vocab;
        self
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The model seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Vocabulary binding.
    pub fn vocab(&self) -> VocabInfo {
        self.vocab
    }

    /// The fingerprinter that chains this model's contexts.
    pub fn fingerprinter(&self) -> Fingerprinter {
        self.fingerprinter
    }

    /// Computes the next-token distribution for a context.
    ///
    /// Pure and deterministic: equal fingerprints yield equal distributions,
    /// regardless of how the context was assembled.
    pub fn next_dist(&self, ctx: CtxFingerprint) -> Dist {
        let h0 = mix(ctx.0 ^ self.seed.rotate_left(32) ^ 0xD6E8_FEB8_6659_FD93);

        // EOS gate: with per-step probability ~1/mean_output_tokens the gate
        // opens and EOS dominates the distribution, giving geometric response
        // lengths under both greedy and sampled decoding.
        let p_gate = 1.0 / self.config.mean_output_tokens as f64;
        let gate_open = unit(mix(h0 ^ 0x0E05_0E05_0E05_0E05)) < p_gate;

        let mut entries: Vec<(TokenId, f64)> = Vec::with_capacity(CANDIDATES + 1);
        // Candidate sets are tiny (25 tokens), so dedup by linear scan over
        // the tokens picked so far — no allocation on the per-token path.
        let mut used = [0 as TokenId; CANDIDATES + 1];
        if gate_open {
            entries.push((self.vocab.eos, 10.0));
        } else {
            // A faint EOS presence so sampled decoding can terminate early.
            entries.push((self.vocab.eos, 0.02));
        }
        used[0] = self.vocab.eos;

        let mut h = h0;
        for i in 0..CANDIDATES {
            h = mix(h ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut tok = (h % self.vocab.content_tokens as u64) as TokenId;
            while used[..=i].contains(&tok) {
                tok = (tok + 1) % self.vocab.content_tokens;
            }
            used[i + 1] = tok;
            // Zipf-like decay with multiplicative jitter.
            let jitter = 0.5 + unit(mix(h ^ 0xA5A5_A5A5_A5A5_A5A5));
            let w = self.zipf[i] * jitter;
            entries.push((tok, w));
        }

        let tail_tokens = self
            .vocab
            .content_tokens
            .saturating_sub(entries.len() as u32);
        // Tail weight chosen so tail mass lands near TAIL_MASS after
        // normalisation.
        let entry_total: f64 = entries.iter().map(|&(_, w)| w).sum();
        let tail_weight = entry_total * TAIL_MASS / (1.0 - TAIL_MASS);
        // Tokens are unique by construction; skip `from_weights` validation.
        Dist::from_weights_trusted(entries, tail_weight, tail_tokens)
    }

    /// Convenience: fold a prompt into a fingerprint starting at `origin`.
    pub fn context_of(&self, tokens: &[TokenId]) -> CtxFingerprint {
        let mut fp = self.fingerprinter.origin();
        for (i, &t) in tokens.iter().enumerate() {
            fp = self.fingerprinter.advance(fp, t, i as u32);
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Surrogate {
        Surrogate::new(ModelConfig::tiny(), 7)
    }

    #[test]
    fn deterministic_distribution() {
        let m = model();
        let ctx = m.context_of(&[1, 2, 3]);
        let a = m.next_dist(ctx);
        let b = m.next_dist(ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn different_contexts_differ() {
        let m = model();
        let a = m.next_dist(m.context_of(&[1, 2, 3]));
        let b = m.next_dist(m.context_of(&[1, 2, 4]));
        assert_ne!(a.argmax(), b.argmax());
    }

    #[test]
    fn distributions_are_normalised() {
        let m = model();
        for i in 0..50 {
            let d = m.next_dist(m.context_of(&[i, i + 1]));
            assert!((d.total_mass() - 1.0).abs() < 1e-9);
            assert!(d.entries().len() >= CANDIDATES);
        }
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let m = model();
        let vocab = m.vocab();
        for i in 0..50 {
            let d = m.next_dist(m.context_of(&[i]));
            for &(t, _) in d.entries() {
                assert!(
                    t < vocab.content_tokens || t == vocab.eos,
                    "token {t} outside vocab"
                );
            }
        }
    }

    #[test]
    fn greedy_generation_terminates_with_plausible_length() {
        let m = Surrogate::new(ModelConfig::tiny().with_mean_output_tokens(16), 3);
        let f = m.fingerprinter();
        let mut lengths = Vec::new();
        for s in 0..40u32 {
            let mut fp = m.context_of(&[s, s + 100]);
            let mut pos = 2;
            let mut n = 0;
            loop {
                let t = m.next_dist(fp).argmax();
                if t == m.vocab().eos || n > 2000 {
                    break;
                }
                fp = f.advance(fp, t, pos);
                pos += 1;
                n += 1;
            }
            assert!(n <= 2000, "generation did not terminate");
            lengths.push(n as f64);
        }
        let mean: f64 = lengths.iter().sum::<f64>() / lengths.len() as f64;
        // Geometric with p=1/16 has mean 16; wide tolerance for 40 samples.
        assert!((4.0..60.0).contains(&mean), "mean length {mean}");
    }

    #[test]
    fn kv_reuse_equivalence() {
        // The crate's core invariant: same logical context, same output —
        // whether built token-by-token or in one run.
        let m = model();
        let f = m.fingerprinter();
        let prompt = [5u32, 6, 7, 8];
        let whole = m.context_of(&prompt);
        let mut fp = f.origin();
        fp = f.advance_run(fp, &[(5, 0), (6, 1)]);
        // "Cache hit" on the first two tokens, extend with the rest.
        fp = f.advance_run(fp, &[(7, 2), (8, 3)]);
        assert_eq!(whole, fp);
        assert_eq!(m.next_dist(whole), m.next_dist(fp));
    }

    #[test]
    fn seeds_change_behaviour() {
        let a = Surrogate::new(ModelConfig::tiny(), 1);
        let b = Surrogate::new(ModelConfig::tiny(), 2);
        let ctx = [3u32, 4, 5];
        assert_ne!(
            a.next_dist(a.context_of(&ctx)).argmax(),
            b.next_dist(b.context_of(&ctx)).argmax()
        );
    }

    #[test]
    fn with_vocab_binds_tokenizer() {
        let bpe = symphony_tokenizer::Bpe::default_tokenizer();
        let m = Surrogate::new(ModelConfig::tiny(), 7).with_vocab(VocabInfo::from_tokenizer(bpe));
        assert_eq!(m.vocab().eos, bpe.specials().eos);
        let d = m.next_dist(m.context_of(&[1, 2]));
        for &(t, _) in d.entries() {
            assert!(bpe.vocab().get(t).is_some());
        }
    }
}
