//! Analytic cost accounting for forward passes.
//!
//! A forward pass over `new_tokens` with `past_tokens` of cached context
//! produces a [`WorkEstimate`]: FLOPs plus the bytes that must move through
//! HBM. The GPU simulator combines estimates across a batch (weights are
//! read **once per batch**, which is exactly why batching pays) and applies
//! a roofline rule to produce virtual time.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;

/// Work performed by (part of) a forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkEstimate {
    /// Floating-point operations.
    pub flops: f64,
    /// Weight bytes that must be streamed from HBM (per batch, not per
    /// sequence; the GPU executor charges this once).
    pub weight_bytes: u64,
    /// KV-cache bytes read.
    pub kv_read_bytes: u64,
    /// KV-cache bytes written.
    pub kv_write_bytes: u64,
}

impl WorkEstimate {
    /// Accumulates per-sequence work (weight traffic is `max`ed, not summed,
    /// since one weight stream serves the whole batch).
    pub fn accumulate(&mut self, other: &WorkEstimate) {
        self.flops += other.flops;
        self.weight_bytes = self.weight_bytes.max(other.weight_bytes);
        self.kv_read_bytes += other.kv_read_bytes;
        self.kv_write_bytes += other.kv_write_bytes;
    }

    /// Total HBM traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.kv_read_bytes + self.kv_write_bytes
    }
}

/// A sequential I/O lane with fixed per-operation latency and streaming
/// bandwidth — the analytic cost model for the KVFS disk tier's NVMe link
/// (the third level of the storage hierarchy, below HBM and DRAM). Swap
/// traffic that crosses this lane is charged `base_latency + bytes/bw`,
/// which keeps disk swap-in visibly more expensive than a PCIe DRAM swap
/// of the same size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoLane {
    /// Streaming bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Fixed latency per operation in seconds (seek/submission overhead).
    pub base_latency_s: f64,
}

impl IoLane {
    /// A datacenter NVMe SSD: ~3.5 GB/s sequential, ~100 µs access.
    pub fn nvme() -> Self {
        IoLane {
            bandwidth: 3.5e9,
            base_latency_s: 100e-6,
        }
    }

    /// Seconds to move `bytes` across the lane. Zero bytes cost nothing —
    /// a no-op swap must not be charged the base latency.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.base_latency_s + bytes as f64 / self.bandwidth
    }
}

impl ModelConfig {
    /// Estimates the work of running `new_tokens` through the model with
    /// `past_tokens` of context already cached.
    ///
    /// - Linear layers: `2 × params` FLOPs per new token.
    /// - Attention: `4 × layers × hidden` FLOPs per (new token, context
    ///   token) pair, with the triangular prefill structure accounted for by
    ///   using the average context length.
    /// - KV traffic: the cached context is read once and each new token's KV
    ///   entry is written once.
    pub fn forward_work(&self, new_tokens: u64, past_tokens: u64) -> WorkEstimate {
        if new_tokens == 0 {
            return WorkEstimate::default();
        }
        let n = new_tokens as f64;
        let avg_ctx = past_tokens as f64 + (n + 1.0) / 2.0;
        let flops_linear = 2.0 * self.params * n;
        let flops_attn =
            4.0 * self.num_layers as f64 * self.hidden_size as f64 * n * avg_ctx;
        let kv = self.kv_bytes_per_token();
        WorkEstimate {
            flops: flops_linear + flops_attn,
            weight_bytes: self.weight_bytes(),
            kv_read_bytes: (past_tokens + new_tokens / 2) * kv,
            kv_write_bytes: new_tokens * kv,
        }
    }

    /// Estimates the work of the same prefill split into `chunk`-token
    /// iterations, as the continuous-batching executor runs it: the
    /// `k`-th chunk sees all earlier chunks as cached past.
    ///
    /// Attention FLOPs are *identical* to the unchunked prefill — splitting
    /// Σ over the triangular prefill structure is exact — so chunking's
    /// only throughput cost is re-streaming the weights once per extra
    /// iteration (visible here as `weight_bytes` being per-iteration; the
    /// caller pays it `ceil(new/chunk)` times instead of once).
    pub fn chunked_prefill_work(
        &self,
        new_tokens: u64,
        past_tokens: u64,
        chunk: u64,
    ) -> Vec<WorkEstimate> {
        let chunk = chunk.max(1);
        let mut out = Vec::new();
        let mut done = 0;
        while done < new_tokens {
            let take = chunk.min(new_tokens - done);
            out.push(self.forward_work(take, past_tokens + done));
            done += take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tokens_zero_work() {
        let w = ModelConfig::llama_13b().forward_work(0, 500);
        assert_eq!(w, WorkEstimate::default());
    }

    #[test]
    fn decode_is_bandwidth_bound_prefill_is_compute_bound() {
        let c = ModelConfig::llama_13b();
        // A100: 312 TFLOPS FP16, 2 TB/s HBM.
        let flops_rate = 312e12;
        let bw = 2e12;
        let decode = c.forward_work(1, 1000);
        let prefill = c.forward_work(3000, 0);
        let decode_compute = decode.flops / flops_rate;
        let decode_mem = decode.total_bytes() as f64 / bw;
        let prefill_compute = prefill.flops / flops_rate;
        let prefill_mem = prefill.total_bytes() as f64 / bw;
        assert!(
            decode_mem > decode_compute * 10.0,
            "decode should be memory bound: mem={decode_mem} compute={decode_compute}"
        );
        assert!(
            prefill_compute > prefill_mem,
            "prefill should be compute bound: compute={prefill_compute} mem={prefill_mem}"
        );
    }

    #[test]
    fn prefill_cost_scales_superlinearly_in_context() {
        let c = ModelConfig::llama_13b();
        let short = c.forward_work(1000, 0).flops;
        let long = c.forward_work(2000, 0).flops;
        assert!(long > 2.0 * short, "attention should grow quadratically");
    }

    #[test]
    fn accumulate_maxes_weights_sums_rest() {
        let c = ModelConfig::llama_13b();
        let mut batch = WorkEstimate::default();
        let a = c.forward_work(1, 100);
        let b = c.forward_work(1, 200);
        batch.accumulate(&a);
        batch.accumulate(&b);
        assert_eq!(batch.weight_bytes, c.weight_bytes());
        assert_eq!(batch.kv_write_bytes, a.kv_write_bytes + b.kv_write_bytes);
        assert!((batch.flops - (a.flops + b.flops)).abs() < 1.0);
    }

    #[test]
    fn chunked_prefill_preserves_attention_flops_exactly() {
        // Σ_k 4LH·c_k·(past_k + (c_k+1)/2) telescopes to the unchunked
        // n·(past + (n+1)/2): chunking may never change the attention work,
        // only when it happens.
        let c = ModelConfig::llama_13b();
        for (n, past, chunk) in [(1024, 0, 256), (1000, 0, 256), (777, 123, 100), (5, 0, 8)] {
            let whole = c.forward_work(n, past);
            let chunks = c.chunked_prefill_work(n, past, chunk);
            let sum_flops: f64 = chunks.iter().map(|w| w.flops).sum();
            let rel = (sum_flops - whole.flops).abs() / whole.flops;
            assert!(rel < 1e-12, "n={n} chunk={chunk}: rel error {rel}");
            let sum_writes: u64 = chunks.iter().map(|w| w.kv_write_bytes).sum();
            assert_eq!(sum_writes, whole.kv_write_bytes);
        }
    }

    #[test]
    fn chunking_tax_is_weight_restreaming() {
        // Each chunk is its own iteration, so the weights stream once per
        // chunk instead of once per prefill — that is the entire
        // throughput cost of bounding inter-token latency.
        let c = ModelConfig::llama_13b();
        let chunks = c.chunked_prefill_work(1024, 0, 256);
        assert_eq!(chunks.len(), 4);
        for w in &chunks {
            assert_eq!(w.weight_bytes, c.weight_bytes());
        }
        // Uneven tail chunk still covers every token.
        let uneven = c.chunked_prefill_work(1000, 0, 256);
        assert_eq!(uneven.len(), 4);
        let total: u64 = uneven
            .iter()
            .map(|w| w.kv_write_bytes / c.kv_bytes_per_token())
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn io_lane_charges_latency_plus_bandwidth() {
        let lane = IoLane::nvme();
        assert_eq!(lane.transfer_seconds(0), 0.0, "no-op moves are free");
        let small = lane.transfer_seconds(1);
        assert!(small >= lane.base_latency_s, "every real op pays the seek");
        let big = lane.transfer_seconds(3_500_000_000);
        assert!(
            (big - (lane.base_latency_s + 1.0)).abs() < 1e-9,
            "one bandwidth-second of bytes takes ~1s: {big}"
        );
        // The NVMe lane is far slower than any PCIe link we model.
        assert!(lane.bandwidth < 25e9);
    }

    #[test]
    fn cached_prefix_removes_prefill_compute() {
        // The whole point of prompt caching: pred over the suffix with a
        // cached 3000-token prefix does far less work than full prefill.
        let c = ModelConfig::llama_13b();
        let full = c.forward_work(3_020, 0);
        let cached = c.forward_work(20, 3_000);
        assert!(cached.flops < full.flops / 20.0);
    }
}
