//! Analytic cost accounting for forward passes.
//!
//! A forward pass over `new_tokens` with `past_tokens` of cached context
//! produces a [`WorkEstimate`]: FLOPs plus the bytes that must move through
//! HBM. The GPU simulator combines estimates across a batch (weights are
//! read **once per batch**, which is exactly why batching pays) and applies
//! a roofline rule to produce virtual time.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;

/// Work performed by (part of) a forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkEstimate {
    /// Floating-point operations.
    pub flops: f64,
    /// Weight bytes that must be streamed from HBM (per batch, not per
    /// sequence; the GPU executor charges this once).
    pub weight_bytes: u64,
    /// KV-cache bytes read.
    pub kv_read_bytes: u64,
    /// KV-cache bytes written.
    pub kv_write_bytes: u64,
}

impl WorkEstimate {
    /// Accumulates per-sequence work (weight traffic is `max`ed, not summed,
    /// since one weight stream serves the whole batch).
    pub fn accumulate(&mut self, other: &WorkEstimate) {
        self.flops += other.flops;
        self.weight_bytes = self.weight_bytes.max(other.weight_bytes);
        self.kv_read_bytes += other.kv_read_bytes;
        self.kv_write_bytes += other.kv_write_bytes;
    }

    /// Total HBM traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.kv_read_bytes + self.kv_write_bytes
    }
}

impl ModelConfig {
    /// Estimates the work of running `new_tokens` through the model with
    /// `past_tokens` of context already cached.
    ///
    /// - Linear layers: `2 × params` FLOPs per new token.
    /// - Attention: `4 × layers × hidden` FLOPs per (new token, context
    ///   token) pair, with the triangular prefill structure accounted for by
    ///   using the average context length.
    /// - KV traffic: the cached context is read once and each new token's KV
    ///   entry is written once.
    pub fn forward_work(&self, new_tokens: u64, past_tokens: u64) -> WorkEstimate {
        if new_tokens == 0 {
            return WorkEstimate::default();
        }
        let n = new_tokens as f64;
        let avg_ctx = past_tokens as f64 + (n + 1.0) / 2.0;
        let flops_linear = 2.0 * self.params * n;
        let flops_attn =
            4.0 * self.num_layers as f64 * self.hidden_size as f64 * n * avg_ctx;
        let kv = self.kv_bytes_per_token();
        WorkEstimate {
            flops: flops_linear + flops_attn,
            weight_bytes: self.weight_bytes(),
            kv_read_bytes: (past_tokens + new_tokens / 2) * kv,
            kv_write_bytes: new_tokens * kv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tokens_zero_work() {
        let w = ModelConfig::llama_13b().forward_work(0, 500);
        assert_eq!(w, WorkEstimate::default());
    }

    #[test]
    fn decode_is_bandwidth_bound_prefill_is_compute_bound() {
        let c = ModelConfig::llama_13b();
        // A100: 312 TFLOPS FP16, 2 TB/s HBM.
        let flops_rate = 312e12;
        let bw = 2e12;
        let decode = c.forward_work(1, 1000);
        let prefill = c.forward_work(3000, 0);
        let decode_compute = decode.flops / flops_rate;
        let decode_mem = decode.total_bytes() as f64 / bw;
        let prefill_compute = prefill.flops / flops_rate;
        let prefill_mem = prefill.total_bytes() as f64 / bw;
        assert!(
            decode_mem > decode_compute * 10.0,
            "decode should be memory bound: mem={decode_mem} compute={decode_compute}"
        );
        assert!(
            prefill_compute > prefill_mem,
            "prefill should be compute bound: compute={prefill_compute} mem={prefill_mem}"
        );
    }

    #[test]
    fn prefill_cost_scales_superlinearly_in_context() {
        let c = ModelConfig::llama_13b();
        let short = c.forward_work(1000, 0).flops;
        let long = c.forward_work(2000, 0).flops;
        assert!(long > 2.0 * short, "attention should grow quadratically");
    }

    #[test]
    fn accumulate_maxes_weights_sums_rest() {
        let c = ModelConfig::llama_13b();
        let mut batch = WorkEstimate::default();
        let a = c.forward_work(1, 100);
        let b = c.forward_work(1, 200);
        batch.accumulate(&a);
        batch.accumulate(&b);
        assert_eq!(batch.weight_bytes, c.weight_bytes());
        assert_eq!(batch.kv_write_bytes, a.kv_write_bytes + b.kv_write_bytes);
        assert!((batch.flops - (a.flops + b.flops)).abs() < 1.0);
    }

    #[test]
    fn cached_prefix_removes_prefill_compute() {
        // The whole point of prompt caching: pred over the suffix with a
        // cached 3000-token prefix does far less work than full prefill.
        let c = ModelConfig::llama_13b();
        let full = c.forward_work(3_020, 0);
        let cached = c.forward_work(20, 3_000);
        assert!(cached.flops < full.flops / 20.0);
    }
}
