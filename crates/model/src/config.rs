//! Model shape configurations.
//!
//! Shapes follow the published Llama family so the cost model reproduces the
//! real prefill/decode asymmetry (weight traffic dominates decode, FLOPs
//! dominate prefill). The `tiny` preset keeps unit tests fast.

use serde::{Deserialize, Serialize};

/// Architecture and size parameters of a served model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"llama-13b"`.
    pub name: &'static str,
    /// Total parameter count (used directly by the cost model).
    pub params: f64,
    /// Transformer layer count.
    pub num_layers: u32,
    /// Hidden (embedding) dimension.
    pub hidden_size: u32,
    /// Attention head count.
    pub num_heads: u32,
    /// KV head count (`< num_heads` for grouped-query attention).
    pub num_kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Vocabulary size used for cost accounting (the surrogate emits a
    /// sparse distribution but real logits are `vocab_size` wide).
    pub vocab_size: u32,
    /// Bytes per tensor element (2 for FP16/BF16).
    pub dtype_bytes: u32,
    /// Mean generated-response length the surrogate's EOS dynamics target.
    pub mean_output_tokens: u32,
}

impl ModelConfig {
    /// Llama-2 7B.
    pub fn llama_7b() -> Self {
        ModelConfig {
            name: "llama-7b",
            params: 6.7e9,
            num_layers: 32,
            hidden_size: 4096,
            num_heads: 32,
            num_kv_heads: 32,
            head_dim: 128,
            vocab_size: 32_000,
            dtype_bytes: 2,
            mean_output_tokens: 128,
        }
    }

    /// Llama-2 13B — the model used in the paper's Figure 3.
    pub fn llama_13b() -> Self {
        ModelConfig {
            name: "llama-13b",
            params: 13.0e9,
            num_layers: 40,
            hidden_size: 5120,
            num_heads: 40,
            num_kv_heads: 40,
            head_dim: 128,
            vocab_size: 32_000,
            dtype_bytes: 2,
            mean_output_tokens: 128,
        }
    }

    /// Llama-2 70B (grouped-query attention).
    pub fn llama_70b() -> Self {
        ModelConfig {
            name: "llama-70b",
            params: 70.0e9,
            num_layers: 80,
            hidden_size: 8192,
            num_heads: 64,
            num_kv_heads: 8,
            head_dim: 128,
            vocab_size: 32_000,
            dtype_bytes: 2,
            mean_output_tokens: 128,
        }
    }

    /// A miniature shape for unit tests: cheap, tiny KV footprint.
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny",
            params: 1.0e6,
            num_layers: 2,
            hidden_size: 64,
            num_heads: 4,
            num_kv_heads: 4,
            head_dim: 16,
            vocab_size: 2_000,
            dtype_bytes: 2,
            mean_output_tokens: 16,
        }
    }

    /// Returns a copy with a different target mean output length.
    pub fn with_mean_output_tokens(mut self, n: u32) -> Self {
        self.mean_output_tokens = n.max(1);
        self
    }

    /// Bytes of KV cache stored per token: `2 (K and V) × layers × kv_heads ×
    /// head_dim × dtype_bytes`.
    ///
    /// For Llama-13B this is ~0.78 MiB/token, which is what makes the
    /// Figure 3 setup interesting: 100 documents × 3000 tokens of KV
    /// (~240 GB) cannot fit beside 26 GB of weights in 80 GB of HBM — only
    /// about 20 documents can, hence the LIP's top-20 pinning policy.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.num_layers as u64
            * self.num_kv_heads as u64
            * self.head_dim as u64
            * self.dtype_bytes as u64
    }

    /// Bytes occupied by the weights.
    pub fn weight_bytes(&self) -> u64 {
        (self.params * self.dtype_bytes as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_13b_kv_footprint_matches_published_value() {
        let c = ModelConfig::llama_13b();
        // 2 * 40 * 40 * 128 * 2 = 819,200 bytes ≈ 0.78 MiB per token.
        assert_eq!(c.kv_bytes_per_token(), 819_200);
        // Weights: 26 GB in FP16.
        assert_eq!(c.weight_bytes(), 26_000_000_000);
    }

    #[test]
    fn gqa_shrinks_kv() {
        let full = ModelConfig::llama_13b().kv_bytes_per_token();
        let gqa = ModelConfig::llama_70b().kv_bytes_per_token();
        // 70B has twice the layers but 1/5 the kv heads of 13B.
        assert!(gqa < full, "GQA should store less KV per token: {gqa} vs {full}");
    }

    #[test]
    fn figure3_capacity_story_holds() {
        // The Fig. 3 setup: ~20 of 100 3000-token documents fit in an A100-80G
        // beside the 13B weights. Verify with 10% activation reserve.
        let c = ModelConfig::llama_13b();
        let hbm: u64 = 80_000_000_000;
        let budget = hbm - c.weight_bytes() - hbm / 10;
        let doc_bytes = 3_000 * c.kv_bytes_per_token();
        let docs_that_fit = budget / doc_bytes;
        assert!(
            (15..=25).contains(&docs_that_fit),
            "expected ~20 docs to fit, got {docs_that_fit}"
        );
    }

    #[test]
    fn with_mean_output_tokens_clamps() {
        assert_eq!(ModelConfig::tiny().with_mean_output_tokens(0).mean_output_tokens, 1);
        assert_eq!(ModelConfig::tiny().with_mean_output_tokens(64).mean_output_tokens, 64);
    }
}
