//! Context fingerprints: the surrogate's stand-in for attention KV state.
//!
//! A fingerprint summarises a logical context — the ordered sequence of
//! `(token, position)` pairs the model has "seen". KVFS stores one
//! fingerprint per cached token; `pred` chains fingerprints forward exactly
//! as a causal transformer extends its KV cache. Two different routes to the
//! same logical context (recompute vs. cache hit vs. forked file) reach the
//! same fingerprint and therefore the same model output.

use serde::{Deserialize, Serialize};

use crate::TokenId;

/// A 64-bit rolling hash of a logical context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CtxFingerprint(pub u64);

/// Produces and chains context fingerprints for one model identity.
///
/// Distinct model seeds yield unrelated fingerprint spaces, so a 7B draft
/// model and a 13B target never collide in tests.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprinter {
    seed: u64,
}

/// One round of splitmix64-style avalanche mixing.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Fingerprinter {
    /// Creates a fingerprinter for the given model seed.
    pub fn new(seed: u64) -> Self {
        Fingerprinter { seed }
    }

    /// The fingerprint of the empty context.
    pub fn origin(&self) -> CtxFingerprint {
        CtxFingerprint(mix(self.seed ^ 0x5151_5151_5151_5151))
    }

    /// Extends a context by one `(token, position)` pair.
    pub fn advance(&self, fp: CtxFingerprint, token: TokenId, position: u32) -> CtxFingerprint {
        let t = (token as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let p = (position as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        CtxFingerprint(mix(fp.0 ^ t ^ p.rotate_left(17) ^ 0xA24B_AED4_963E_E407))
    }

    /// Folds a whole token run into a context.
    pub fn advance_run(
        &self,
        mut fp: CtxFingerprint,
        tokens: &[(TokenId, u32)],
    ) -> CtxFingerprint {
        for &(t, p) in tokens {
            fp = self.advance(fp, t, p);
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let f = Fingerprinter::new(1);
        let a = f.advance(f.origin(), 10, 0);
        let b = f.advance(f.origin(), 10, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn order_sensitive() {
        let f = Fingerprinter::new(1);
        let ab = f.advance_run(f.origin(), &[(1, 0), (2, 1)]);
        let ba = f.advance_run(f.origin(), &[(2, 0), (1, 1)]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn position_sensitive() {
        let f = Fingerprinter::new(1);
        let a = f.advance(f.origin(), 5, 0);
        let b = f.advance(f.origin(), 5, 7);
        assert_ne!(a, b, "same token at different positions must differ");
    }

    #[test]
    fn token_sensitive() {
        let f = Fingerprinter::new(1);
        assert_ne!(f.advance(f.origin(), 5, 0), f.advance(f.origin(), 6, 0));
    }

    #[test]
    fn seeds_separate_models() {
        let a = Fingerprinter::new(1);
        let b = Fingerprinter::new(2);
        assert_ne!(a.origin(), b.origin());
        assert_ne!(a.advance(a.origin(), 1, 0), b.advance(b.origin(), 1, 0));
    }

    #[test]
    fn run_equals_stepwise() {
        let f = Fingerprinter::new(3);
        let run = f.advance_run(f.origin(), &[(9, 0), (8, 1), (7, 2)]);
        let mut fp = f.origin();
        for (i, t) in [9u32, 8, 7].into_iter().enumerate() {
            fp = f.advance(fp, t, i as u32);
        }
        assert_eq!(run, fp);
    }
}
