//! Surrogate LLM: deterministic token distributions plus an analytic cost
//! model.
//!
//! No GPU or model weights are available to this reproduction (and the paper
//! itself evaluates on a simulation, §5), so this crate substitutes the
//! Llama-13B forward pass with two decoupled pieces:
//!
//! - **Semantics** ([`surrogate`]): a deterministic function from a *context
//!   fingerprint* (a rolling hash of `(token, position)` pairs, [`fingerprint`])
//!   to a next-token distribution ([`dist`]). Because the distribution depends
//!   only on the logical context, any mechanism that reconstructs the same
//!   context — full recompute, cached prefix, forked KV file — produces
//!   bit-identical output. That is exactly the property KV-cache reuse must
//!   preserve, and it makes cache correctness *testable*.
//! - **Timing** ([`cost`]): analytic FLOP and byte counts for prefill/decode
//!   work, parameterised by real model shapes ([`config`]). The GPU simulator
//!   turns these into virtual time with a roofline rule.
//!
//! # Examples
//!
//! ```
//! use symphony_model::{ModelConfig, Surrogate, Fingerprinter};
//!
//! let config = ModelConfig::tiny();
//! let model = Surrogate::new(config, 42);
//! let fp = Fingerprinter::new(42);
//! let mut ctx = fp.origin();
//! ctx = fp.advance(ctx, 17, 0);
//! let dist = model.next_dist(ctx);
//! assert!(!dist.entries().is_empty());
//! // Deterministic: same context, same distribution.
//! assert_eq!(dist.argmax(), model.next_dist(ctx).argmax());
//! ```

pub mod config;
pub mod cost;
pub mod dist;
pub mod fingerprint;
pub mod surrogate;

pub use config::ModelConfig;
pub use cost::{IoLane, WorkEstimate};
pub use dist::Dist;
pub use fingerprint::{CtxFingerprint, Fingerprinter};
pub use surrogate::Surrogate;

/// Token identifier, shared with the tokenizer crate.
pub use symphony_tokenizer::TokenId;
