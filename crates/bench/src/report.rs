//! Table printing and JSON result dumping.

use std::io::Write as _;
use std::path::Path;

/// A printable results table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    /// Table title (e.g. `"Figure 3a"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a serialisable result to `results/<name>.json`, folding a
/// metrics snapshot in when one is given (`--metrics`). With `None` this
/// is exactly [`write_json`] — the legacy report stays byte-identical.
/// With `Some`, the payload becomes `{"results": ..., "metrics": ...}`.
pub fn write_json_with_metrics<T: serde::Serialize>(
    name: &str,
    value: &T,
    metrics: Option<&symphony::MetricsSnapshot>,
) {
    match metrics {
        None => write_json(name, value),
        Some(snap) => {
            struct WithMetrics<'a, T>(&'a T, &'a symphony::MetricsSnapshot);
            impl<T: serde::Serialize> serde::Serialize for WithMetrics<'_, T> {
                fn serialize_json(&self, out: &mut String) {
                    out.push_str("{\"results\":");
                    self.0.serialize_json(out);
                    out.push_str(",\"metrics\":");
                    self.1.serialize_json(out);
                    out.push('}');
                }
            }
            write_json(name, &WithMetrics(value, snap));
        }
    }
}

/// Writes a serialisable result to `results/<name>.json` under the
/// workspace root (created if needed). Failures are reported, not fatal —
/// the printed table is the primary artifact.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warn: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let s = serde_json::to_string_pretty(value).expect("serialisable");
            if let Err(e) = f.write_all(s.as_bytes()) {
                eprintln!("warn: write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warn: create {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "long_header", "b"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "20000".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines equal length (aligned).
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }
}
