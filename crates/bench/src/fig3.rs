//! Figure 3: the RAG prompt-caching experiment (§5).
//!
//! "We compare Symphony with two popular prompt-serving systems, vLLM and
//! TGI, in a retrieval-augmented generation (RAG) application scenario. The
//! application inputs a topic, fetches the relevant document, and generates
//! an answer. There are 100 documents, each containing 3,000 tokens. A LIP
//! implements prompt caching by retaining the KV cache for the top `k` most
//! popular topics and discarding it for others. We evaluate throughput and
//! latency under varying request loads and Pareto indices."
//!
//! All three systems run on the same surrogate model, GPU cost model and
//! paged KV store; the only difference is who controls cache policy.
//!
//! Note on `cache_top_k`: the paper pins the top 20 topics. On an A100-80G
//! the Llama-13B KV budget fits ~18 documents of 3,000 tokens with *zero*
//! working memory left, so a LIP that pinned 20 would starve its own
//! prefills. The harness defaults to 12 — exactly the kind of
//! application-level capacity planning the paper argues only the
//! application can do. The axis behaviour (Symphony wins at small Pareto
//! index) is unaffected.

use serde::Serialize;
use symphony::sampling::{self, GenOpts};
use symphony::{
    BatchPolicy, Ctx, Kernel, KernelConfig, Mode, SimDuration, SysError, ToolOutcome, ToolSpec,
};
use symphony_baseline::{Engine, EngineConfig, PromptRequest};
use symphony_gpu::DeviceSpec;
use symphony_kvfs::KvError;
use symphony_model::ModelConfig;
use symphony_sim::{LogNormal, Rng, SimTime};
use symphony_tokenizer::Bpe;
use symphony_workloads::{RagCorpus, RagRequest, RagWorkload};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Number of documents/topics (paper: 100).
    pub num_docs: usize,
    /// Tokens per document (paper: 3,000).
    pub tokens_per_doc: usize,
    /// Requests per measured point.
    pub requests: usize,
    /// Target mean answer length in tokens.
    pub answer_tokens: u32,
    /// Topics the Symphony LIP pins (see module docs).
    pub cache_top_k: usize,
    /// Mean retrieval latency (tool call / client fetch).
    pub retrieval: SimDuration,
    /// Base seed; workloads and engines derive their streams from it.
    pub seed: u64,
}

impl Fig3Config {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        Fig3Config {
            num_docs: 100,
            tokens_per_doc: 3_000,
            requests: 150,
            answer_tokens: 64,
            cache_top_k: 12,
            retrieval: SimDuration::from_millis(30),
            seed: 0xF163,
        }
    }

    /// A miniature configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Fig3Config {
            num_docs: 10,
            tokens_per_doc: 120,
            requests: 30,
            answer_tokens: 12,
            cache_top_k: 3,
            retrieval: SimDuration::from_millis(10),
            seed: 0xF163,
        }
    }
}

/// Model/device scale the experiment runs at.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Served model (with the answer-length target applied).
    pub model: ModelConfig,
    /// Accelerator.
    pub device: DeviceSpec,
    /// Surrogate seed shared by every system.
    pub model_seed: u64,
    /// KV page size in tokens.
    pub page_tokens: usize,
    /// Optional KV-pool override (used by the quick scale to create
    /// contention despite the tiny model).
    pub gpu_kv_override: Option<u64>,
}

impl Scale {
    /// Llama-13B on A100-80G — the paper's setup.
    pub fn paper(cfg: &Fig3Config) -> Self {
        Scale {
            model: ModelConfig::llama_13b().with_mean_output_tokens(cfg.answer_tokens),
            device: DeviceSpec::a100_80g(),
            model_seed: 13,
            page_tokens: 16,
            gpu_kv_override: None,
        }
    }

    /// Tiny model on the test device, with a pool sized so only a few
    /// documents fit (mirroring the paper's capacity pressure).
    pub fn quick(cfg: &Fig3Config) -> Self {
        let model = ModelConfig::tiny().with_mean_output_tokens(cfg.answer_tokens);
        let doc_bytes = cfg.tokens_per_doc as u64 * model.kv_bytes_per_token();
        Scale {
            model,
            device: DeviceSpec::test_device(),
            model_seed: 7,
            page_tokens: 4,
            // ~5 documents plus working space.
            gpu_kv_override: Some(doc_bytes * 11 / 2),
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct PointResult {
    /// System name.
    pub system: String,
    /// Popularity skew (paper's Pareto index; small = heavy skew).
    pub pareto_index: f64,
    /// Offered load in requests/second.
    pub load_rps: f64,
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests that failed (e.g. out-of-memory after retries).
    pub failed: usize,
    /// Mean end-to-end latency (seconds).
    pub mean_latency_s: f64,
    /// 95th-percentile end-to-end latency (seconds).
    pub p95_latency_s: f64,
    /// Mean end-to-end latency per generated token (milliseconds) — the
    /// Figure 3a metric.
    pub latency_per_token_ms: f64,
    /// Generated-token throughput (tokens/second) — the Figure 3b metric.
    pub throughput_tok_s: f64,
    /// Request throughput (requests/second).
    pub throughput_req_s: f64,
    /// Fraction of requests served from cached document KV.
    pub cache_hit_rate: f64,
    /// GPU busy fraction over the run.
    pub gpu_util: f64,
}

/// The Symphony RAG LIP (the paper's §5 program).
///
/// Args format: `"topic|top_k|query"`. Policy: documents for topics below
/// `top_k` are prefilled once, published under `rag/doc<topic>.kv`, pinned,
/// and forked by later requests; other topics are prefilled privately and
/// discarded. On GPU memory exhaustion the LIP retries with backoff —
/// application-level handling of a resource the application is managing.
pub fn rag_lip(ctx: &mut Ctx) -> Result<(), SysError> {
    let args = ctx.args();
    let mut parts = args.splitn(3, '|');
    let topic: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(SysError::BadArgument)?;
    let top_k: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(SysError::BadArgument)?;
    let query = parts.next().ok_or(SysError::BadArgument)?.to_string();

    // Application-level congestion control: on GPU memory exhaustion the
    // LIP releases *everything* it holds and restarts after a jittered
    // exponential backoff, so sleeping requests never pin pages. This is
    // the flip side of application-controlled memory: the application also
    // owns overload behaviour.
    for attempt in 0..40u32 {
        match try_serve_rag(ctx, topic, top_k, &query) {
            Ok(()) => return Ok(()),
            Err(e) if is_oom(&e) => {
                let base = 100u64 << attempt.min(6);
                let jitter = ctx.rng_u64() % base.max(1);
                ctx.sleep(SimDuration::from_millis(base + jitter))?;
            }
            Err(e) => return Err(e),
        }
    }
    Err(SysError::Kv(KvError::NoGpuMemory))
}

/// One attempt at serving the request; holds no KV on failure.
fn try_serve_rag(
    ctx: &mut Ctx,
    topic: usize,
    top_k: usize,
    query: &str,
) -> Result<(), SysError> {
    let path = format!("rag/doc{topic}.kv");
    let kv = match ctx.kv_open(&path) {
        Ok(doc) => ctx.kv_fork(doc)?,
        Err(_) => {
            // Miss: fetch and prefill the document.
            let text = ctx.call_tool("retrieve", &topic.to_string())?;
            let doc_tokens = ctx.tokenize(&text)?;
            let f = ctx.kv_create()?;
            if let Err(e) = ctx.pred_positions(f, &doc_tokens, 0) {
                let _ = ctx.kv_remove(f);
                return Err(e);
            }
            if topic < top_k {
                // Publish the document prefix for future requests. Another
                // request may have raced us; losing the race is fine.
                if ctx.kv_link(f, &path).is_ok() {
                    ctx.kv_chmod(f, Mode::SHARED_READ)?;
                    ctx.kv_pin(f)?;
                    // Continue on a fork so the published file stays
                    // document-only.
                    ctx.kv_fork(f)?
                } else {
                    f
                }
            } else {
                f
            }
        }
    };

    let q = ctx.tokenize(&format!("\n{query}"))?;
    let opts = GenOpts {
        max_tokens: 512,
        temperature: 0.0,
        emit: false,
        ..Default::default()
    };
    match sampling::generate(ctx, kv, &q, &opts) {
        Ok(out) => {
            ctx.emit_tokens(&out.tokens)?;
            ctx.kv_remove(kv)?;
            Ok(())
        }
        Err(e) => {
            let _ = ctx.kv_remove(kv);
            Err(e)
        }
    }
}

fn is_oom(e: &SysError) -> bool {
    matches!(e, SysError::Kv(KvError::NoGpuMemory))
}

/// Builds the shared workload for one point (same seed ⇒ same requests for
/// every system).
fn workload(cfg: &Fig3Config, pareto: f64, load: f64) -> Vec<RagRequest> {
    let mut wl = RagWorkload::new(cfg.num_docs, pareto, load, cfg.seed);
    wl.take(cfg.requests)
}

/// Document texts (decoded once; the tool and the baseline clients share
/// them).
fn doc_texts(cfg: &Fig3Config) -> Vec<String> {
    let bpe = Bpe::default_tokenizer();
    let corpus = RagCorpus::generate(bpe, cfg.num_docs, cfg.tokens_per_doc, cfg.seed ^ 0xD0C5);
    (0..corpus.len()).map(|i| bpe.decode(corpus.doc(i))).collect()
}

/// Runs Symphony at one `(pareto, load)` point.
pub fn run_symphony_point(
    cfg: &Fig3Config,
    scale: &Scale,
    pareto: f64,
    load: f64,
) -> PointResult {
    run_symphony_point_persist(cfg, scale, pareto, load, None, None).0
}

/// Runs Symphony at one point with optional warm-restart journaling (E13):
/// boots from `boot_journal` when the file exists, and snapshots the
/// post-run store to `persist_to`. Returns the restore report when the
/// kernel warm-started.
pub fn run_symphony_point_persist(
    cfg: &Fig3Config,
    scale: &Scale,
    pareto: f64,
    load: f64,
    boot_journal: Option<&std::path::Path>,
    persist_to: Option<&std::path::Path>,
) -> (PointResult, Option<symphony::RestoreReport>) {
    let kcfg = KernelConfig {
        model: scale.model,
        model_seed: scale.model_seed,
        device: scale.device,
        // Work-conserving continuous batching, matching the baselines'
        // scheduler (the policy trade-off itself is studied in exp E1).
        batch_policy: BatchPolicy::Immediate,
        exec: symphony::ExecMode::Static,
        max_batch: 64,
        page_tokens: scale.page_tokens,
        cpu_swap_bytes: 256_000_000_000,
        disk_swap_bytes: 0,
        journal_path: boot_journal.map(|p| p.to_path_buf()),
        gpu_kv_bytes_override: scale.gpu_kv_override,
        syscall_cost: SimDuration::from_micros(2),
        offload_on_io_wait: false,
        offload_min_latency: SimDuration::from_millis(20),
        seed: cfg.seed,
        default_limits: symphony::Limits::default(),
        trace: false,
        telemetry: false,
        telemetry_capacity: None,
        causal: false,
        faults: symphony::FaultPlan::none(),
        tool_retry: None,
        breaker: None,
        admission: None,
        wal: None,
    };
    let mut kernel = Kernel::new(kcfg);
    let texts = std::sync::Arc::new(doc_texts(cfg));
    {
        let texts = texts.clone();
        kernel.register_tool(
            "retrieve",
            ToolSpec::new(cfg.retrieval, move |args| match args.parse::<usize>() {
                Ok(i) if i < texts.len() => ToolOutcome::Ok(texts[i].clone()),
                _ => ToolOutcome::Failed(format!("no such topic: {args}")),
            }),
        );
    }
    let requests = workload(cfg, pareto, load);
    let top_k = cfg.cache_top_k;
    let mut pids = Vec::with_capacity(requests.len());
    for (i, r) in requests.iter().enumerate() {
        let args = format!("{}|{}|{}", r.topic, top_k, r.query);
        pids.push(kernel.schedule_process(r.at, &format!("rag{i}"), &args, rag_lip));
    }
    kernel.run();
    let restored = kernel.restored().copied();
    if let Some(p) = persist_to {
        kernel.persist_kv(p).expect("journal write");
    }

    // Collect metrics.
    let mut lat = symphony_sim::Series::new();
    let mut lat_per_tok = symphony_sim::Series::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut tokens = 0u64;
    let mut misses = 0u64;
    let mut makespan = SimTime::ZERO;
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        let Some(exit) = rec.exited_at else {
            failed += 1;
            continue;
        };
        makespan = makespan.max(exit);
        if !rec.status.is_ok() {
            if std::env::var_os("FIG3_DEBUG").is_some() {
                eprintln!("fig3 failure pid={:?}: {:?}", pid, rec.status);
            }
            failed += 1;
            continue;
        }
        completed += 1;
        tokens += rec.usage.emitted_tokens;
        misses += u64::from(rec.usage.tool_calls > 0);
        let l = exit.duration_since(rec.spawned_at).as_secs_f64();
        lat.add(l);
        if rec.usage.emitted_tokens > 0 {
            lat_per_tok.add(l * 1e3 / rec.usage.emitted_tokens as f64);
        }
    }
    let span = makespan.as_secs_f64().max(1e-9);
    let point = PointResult {
        system: "symphony".into(),
        pareto_index: pareto,
        load_rps: load,
        completed,
        failed,
        mean_latency_s: lat.mean(),
        p95_latency_s: lat.percentiles(&[0.95])[0].unwrap_or(0.0),
        latency_per_token_ms: lat_per_tok.mean(),
        throughput_tok_s: tokens as f64 / span,
        throughput_req_s: completed as f64 / span,
        cache_hit_rate: if completed > 0 {
            1.0 - misses as f64 / completed as f64
        } else {
            0.0
        },
        gpu_util: kernel.gpu_metrics().busy.as_secs_f64() / span,
    };
    (point, restored)
}

/// Runs a prompt-serving baseline at one `(pareto, load)` point.
pub fn run_engine_point(
    which: &str,
    cfg: &Fig3Config,
    scale: &Scale,
    pareto: f64,
    load: f64,
) -> PointResult {
    let mut ecfg = match which {
        "vllm" => EngineConfig::vllm_like(),
        "vllm-noapc" => EngineConfig::vllm_noapc(),
        "tgi" => EngineConfig::tgi_like(),
        other => panic!("unknown engine {other}"),
    };
    ecfg.model = scale.model;
    ecfg.model_seed = scale.model_seed;
    ecfg.device = scale.device;
    ecfg.page_tokens = scale.page_tokens;
    ecfg.gpu_kv_bytes_override = scale.gpu_kv_override;
    ecfg.seed = cfg.seed;
    let mut engine = Engine::new(ecfg);

    let texts = doc_texts(cfg);
    let bpe = Bpe::default_tokenizer();
    let requests = workload(cfg, pareto, load);
    // The client fetches the document itself before submitting the prompt;
    // the fetch costs the same retrieval latency Symphony's tool pays.
    let fetch = LogNormal::from_mean_cv(cfg.retrieval.as_secs_f64(), 0.3);
    let mut rng = Rng::new(cfg.seed ^ 0xC11E);
    let mut originals = std::collections::HashMap::new();
    let prompt_reqs: Vec<PromptRequest> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let fetch_done = r.at + SimDuration::from_secs_f64(fetch.sample(&mut rng));
            originals.insert(i as u64, r.at);
            PromptRequest {
                id: i as u64,
                arrival: fetch_done,
                prompt: bpe.encode(&format!("{}\n{}", texts[r.topic], r.query)),
                max_tokens: 512,
                temperature: 0.0,
            }
        })
        .collect();
    let (completions, stats) = engine.run(prompt_reqs);
    let gpu_busy = engine.gpu_busy();

    let mut lat = symphony_sim::Series::new();
    let mut lat_per_tok = symphony_sim::Series::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut tokens = 0u64;
    let mut makespan = SimTime::ZERO;
    for c in &completions {
        let original = originals[&c.id];
        makespan = makespan.max(c.finished_at);
        if c.failed {
            failed += 1;
            continue;
        }
        completed += 1;
        tokens += c.tokens.len() as u64;
        let l = c.finished_at.duration_since(original).as_secs_f64();
        lat.add(l);
        if !c.tokens.is_empty() {
            lat_per_tok.add(l * 1e3 / c.tokens.len() as f64);
        }
    }
    let span = makespan.as_secs_f64().max(1e-9);
    PointResult {
        system: which.into(),
        pareto_index: pareto,
        load_rps: load,
        completed,
        failed,
        mean_latency_s: lat.mean(),
        p95_latency_s: lat.percentiles(&[0.95])[0].unwrap_or(0.0),
        latency_per_token_ms: lat_per_tok.mean(),
        throughput_tok_s: tokens as f64 / span,
        throughput_req_s: completed as f64 / span,
        cache_hit_rate: stats.cache_hit_rate(),
        gpu_util: gpu_busy.as_secs_f64() / span,
    }
}

/// Runs all three systems over the full `(pareto, load)` grid.
pub fn sweep(
    cfg: &Fig3Config,
    scale: &Scale,
    paretos: &[f64],
    loads: &[f64],
) -> Vec<PointResult> {
    let mut out = Vec::new();
    for &p in paretos {
        for &l in loads {
            eprintln!("fig3: pareto={p} load={l} ...");
            out.push(run_symphony_point(cfg, scale, p, l));
            out.push(run_engine_point("vllm", cfg, scale, p, l));
            out.push(run_engine_point("vllm-noapc", cfg, scale, p, l));
            out.push(run_engine_point("tgi", cfg, scale, p, l));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_point_runs_all_three_systems() {
        let cfg = Fig3Config::quick();
        let scale = Scale::quick(&cfg);
        let s = run_symphony_point(&cfg, &scale, 0.5, 20.0);
        assert_eq!(s.failed, 0, "symphony failures: {s:?}");
        assert_eq!(s.completed, cfg.requests);
        assert!(s.throughput_tok_s > 0.0);
        assert!(s.cache_hit_rate > 0.0, "heavy skew must produce hits");
        let v = run_engine_point("vllm", &cfg, &scale, 0.5, 20.0);
        assert_eq!(v.completed, cfg.requests);
        let t = run_engine_point("tgi", &cfg, &scale, 0.5, 20.0);
        assert_eq!(t.completed, cfg.requests);
        assert_eq!(t.cache_hit_rate, 0.0);
    }

    #[test]
    fn symphony_beats_tgi_under_heavy_skew_quick() {
        let cfg = Fig3Config::quick();
        let scale = Scale::quick(&cfg);
        let s = run_symphony_point(&cfg, &scale, 0.5, 50.0);
        let t = run_engine_point("tgi", &cfg, &scale, 0.5, 50.0);
        assert!(
            s.latency_per_token_ms < t.latency_per_token_ms,
            "symphony {s:?} vs tgi {t:?}"
        );
    }
}
