//! Experiment harness: regenerates every figure in the paper plus the
//! extension experiments listed in `DESIGN.md`.
//!
//! Each `src/bin/` binary prints the rows/series of one figure or
//! experiment and writes a JSON dump next to it (under `results/`) so
//! `EXPERIMENTS.md` numbers are regenerable.

pub mod fig3;
pub mod report;
pub mod telemetry_cli;

pub use report::{write_json, write_json_with_metrics, Table};
pub use telemetry_cli::{ExpArgs, TelemetryOpts};
