//! E10 — KVFS page-size ablation.
//!
//! The page size trades fragmentation against copy-on-write cost: small
//! pages waste little tail space but make `kv_fork`-heavy workloads copy
//! more often (any partial tail page is COWed on divergence); big pages
//! amortise metadata but strand unused tokens in every file's last page —
//! with 100+ pinned documents that adds up. We run the heavy-skew Figure 3
//! point at several page sizes.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_pagesize`

use serde::Serialize;
use symphony_bench::fig3::{run_symphony_point, Fig3Config, Scale};
use symphony_bench::{write_json, Table};

#[derive(Debug, Clone, Serialize)]
struct Point {
    page_tokens: usize,
    throughput_tok_s: f64,
    latency_per_token_ms: f64,
    cache_hit_rate: f64,
    failed: usize,
}

fn run_sweep(title: &str, cfg: &Fig3Config, tight: bool, results: &mut Vec<Point>) {
    let mut table = Table::new(title, &["page tokens", "tok/s", "lat/token", "hit%", "failed"]);
    for page_tokens in [4usize, 16, 64, 256] {
        eprintln!("E10: tight={tight} page_tokens={page_tokens} ...");
        let mut scale = Scale::paper(cfg);
        scale.page_tokens = page_tokens;
        if tight {
            // A pool of ~40k tokens (13 documents): pinning plus working
            // memory now contends, so per-file tail fragmentation matters.
            scale.gpu_kv_override = Some(40_000 * scale.model.kv_bytes_per_token());
        }
        let p = run_symphony_point(cfg, &scale, 0.5, 4.0);
        table.row(vec![
            page_tokens.to_string(),
            format!("{:.0}", p.throughput_tok_s),
            format!("{:.1}ms", p.latency_per_token_ms),
            format!("{:.0}%", p.cache_hit_rate * 100.0),
            p.failed.to_string(),
        ]);
        results.push(Point {
            page_tokens,
            throughput_tok_s: p.throughput_tok_s,
            latency_per_token_ms: p.latency_per_token_ms,
            cache_hit_rate: p.cache_hit_rate,
            failed: p.failed,
        });
    }
    table.print();
    println!();
}

fn main() {
    let mut cfg = Fig3Config::paper();
    cfg.requests = 120;
    let mut results = Vec::new();
    run_sweep(
        "E10 — page-size ablation, ample pool (Fig. 3 point: pareto 0.5, 4 rps)",
        &cfg,
        false,
        &mut results,
    );
    let mut tight_cfg = cfg.clone();
    tight_cfg.cache_top_k = 8;
    run_sweep(
        "E10 — page-size ablation, tight pool (~13 documents of capacity)",
        &tight_cfg,
        true,
        &mut results,
    );
    println!("\nShape check: performance is flat across reasonable page sizes (16 is the");
    println!("vLLM default); very large pages waste pool capacity to tail fragmentation,");
    println!("which surfaces as extra memory pressure at full utilisation.");
    write_json("exp_pagesize", &results);
}
