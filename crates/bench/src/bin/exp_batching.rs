//! E1 — §4.4 batch-scheduling policy ablation.
//!
//! Decode loops batch themselves (the pool refills while the GPU runs), so
//! the policies only separate on workloads of *independent, single-`pred`*
//! requests — classification-style calls that run one forward pass over a
//! short prompt and read the distribution. There, launching eagerly wastes
//! a full weight-stream per tiny batch:
//!
//! - `immediate` is work-conserving: lowest latency at low load, but
//!   batch≈1 costs one 13 ms weight read per request (saturates early).
//! - `fixed-window` waits up to `max_wait`, amortising weights across the
//!   window at a constant latency tax.
//! - `adaptive` estimates the `pred` arrival rate and waits only as long as
//!   filling a batch plausibly takes: it tracks immediate at low load and
//!   fixed-window at high load — the §4.4 design.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_batching`

use serde::Serialize;
use symphony::{BatchPolicy, Kernel, KernelConfig, SimDuration, SimTime, SysError};
use symphony_bench::{write_json_with_metrics, Table, TelemetryOpts};
use symphony_sim::{PoissonProcess, Rng};

const PROMPT_TOKENS: usize = 48;
const REQUESTS: usize = 300;

#[derive(Debug, Clone, Serialize)]
struct Point {
    policy: String,
    load_rps: f64,
    mean_latency_ms: f64,
    p95_latency_ms: f64,
    throughput_req_s: f64,
    mean_batch_size: f64,
    gpu_util: f64,
}

fn run_point(
    policy: BatchPolicy,
    policy_name: &str,
    load: f64,
    telemetry: &TelemetryOpts,
    designated: bool,
) -> (Point, Option<symphony::MetricsSnapshot>) {
    let mut cfg = KernelConfig::paper_setup();
    cfg.batch_policy = policy;
    cfg.max_batch = 64;
    cfg.trace = false;
    cfg.telemetry = telemetry.record(designated);
    let mut kernel = Kernel::new(cfg);

    let mut rng = Rng::new(0xE1);
    let arrivals = PoissonProcess::new(load);
    let mut at = SimTime::ZERO;
    let mut pids = Vec::new();
    for i in 0..REQUESTS {
        at += arrivals.next_gap(&mut rng);
        let args = format!("classify this input snippet number {i} into a label");
        pids.push(kernel.schedule_process(at, &format!("p{i}"), &args, |ctx| {
            // Classification-style request: ONE pred, read the distribution,
            // emit the verdict. No decode loop.
            let mut prompt = ctx.tokenize(&ctx.args())?;
            prompt.truncate(PROMPT_TOKENS);
            let kv = ctx.kv_create()?;
            let dist = ctx
                .pred_positions(kv, &prompt, 0)?
                .pop()
                .ok_or(SysError::BadArgument)?;
            ctx.emit(if dist.entropy() > 2.0 { "uncertain" } else { "confident" })?;
            ctx.kv_remove(kv)?;
            Ok(())
        }));
    }
    kernel.run();

    let mut lat = symphony_sim::Series::new();
    let mut makespan = SimTime::ZERO;
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        assert!(rec.status.is_ok(), "{policy_name}: {:?}", rec.status);
        let exit = rec.exited_at.expect("completed");
        makespan = makespan.max(exit);
        lat.add(exit.duration_since(rec.spawned_at).as_millis_f64());
    }
    let gm = kernel.gpu_metrics();
    let span = makespan.as_secs_f64().max(1e-9);
    let snap = telemetry.export_designated(&kernel, designated);
    let point = Point {
        policy: policy_name.to_string(),
        load_rps: load,
        mean_latency_ms: lat.mean(),
        p95_latency_ms: lat.percentiles(&[0.95])[0].unwrap_or(0.0),
        throughput_req_s: REQUESTS as f64 / span,
        mean_batch_size: gm.requests_ok as f64 / gm.batches.max(1) as f64,
        gpu_util: gm.busy.as_secs_f64() / span,
    };
    (point, snap)
}

fn main() {
    let policies: Vec<(&str, BatchPolicy)> = vec![
        ("immediate", BatchPolicy::Immediate),
        (
            "fixed-20ms",
            BatchPolicy::FixedWindow {
                max_wait: SimDuration::from_millis(20),
                max_batch: 32,
            },
        ),
        (
            "adaptive",
            BatchPolicy::Adaptive {
                target_batch: 32,
                max_wait: SimDuration::from_millis(20),
            },
        ),
    ];
    let loads = [10.0, 40.0, 150.0, 600.0];

    let opts = TelemetryOpts::from_args();
    let designated_load = *loads.last().expect("non-empty");
    let mut results = Vec::new();
    let mut captured: Option<symphony::MetricsSnapshot> = None;
    let mut table = Table::new(
        "E1 — batch policy ablation on single-pred classification requests",
        &["policy", "load(rps)", "mean lat", "p95 lat", "req/s", "batch size", "gpu%"],
    );
    for &(name, policy) in &policies {
        for &load in &loads {
            eprintln!("E1: {name} @ {load} rps ...");
            // The designated telemetry run: adaptive at the highest load.
            let designated = name == "adaptive" && load == designated_load;
            let (p, snap) = run_point(policy, name, load, &opts, designated);
            if let Some(s) = snap {
                captured = Some(s);
            }
            table.row(vec![
                p.policy.clone(),
                format!("{load}"),
                format!("{:.1}ms", p.mean_latency_ms),
                format!("{:.1}ms", p.p95_latency_ms),
                format!("{:.0}", p.throughput_req_s),
                format!("{:.1}", p.mean_batch_size),
                format!("{:.0}%", p.gpu_util * 100.0),
            ]);
            results.push(p);
        }
    }
    table.print();
    println!("\nShape check: immediate wins at low load (no wait tax) but saturates at");
    println!("batch≈1; the window amortises weight reads at high load; adaptive tracks");
    println!("whichever is better for the observed arrival rate.");
    let metrics = captured.as_ref().filter(|_| opts.metrics);
    write_json_with_metrics("exp_batching", &results, metrics);
}
