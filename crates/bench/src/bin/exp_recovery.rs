//! E14 — crash-tolerant serving: goodput under injected kernel crashes.
//!
//! A durable agent fleet runs against a kernel whose effectful syscalls are
//! journalled to the WAL (tool calls, IPC, clock reads) and whose pred
//! results buffer until the next checkpoint. We sweep the checkpoint
//! interval against a per-syscall-boundary crash rate: each crash kills the
//! kernel at a boundary drawn from a geometric schedule, `Kernel::recover`
//! replays checkpoint + WAL, and every in-flight LIP re-executes from its
//! last durable boundary with journalled effects replayed (tools fire
//! exactly once) and only post-checkpoint pred work re-paid on the GPU.
//!
//! Reported per point: restarts, replayed frames, wasted GPU tokens
//! (re-executed preds the crash threw away), recovery wall latency, and
//! goodput (completions per virtual second) against the crash-free
//! baseline at the same checkpoint interval. The headline: at the default
//! interval, serving under a non-trivial crash rate retains ≥90% of
//! crash-free goodput — recovery re-pays only the unflushed tail, not the
//! whole fleet.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_recovery [-- --smoke]`

use std::sync::Arc;

use serde::Serialize;
use symphony::sampling::{self, GenOpts};
use symphony::{
    wal, Kernel, KernelConfig, ProgramImage, SimDuration, SimTime, ToolOutcome, ToolSpec,
    WalConfig, DEFAULT_CHECKPOINT_EVERY,
};
use symphony_bench::{write_json, Table};
use symphony_sim::Rng;

/// Restart cap per sweep point — a backstop, not an expected ceiling.
const MAX_RESTARTS: u64 = 50;

#[derive(Debug, Clone, Serialize)]
struct Point {
    checkpoint_ms: f64,
    /// Mean syscall boundaries between injected crashes (0 = crash-free).
    crash_every: u64,
    completed: usize,
    failed: usize,
    restarts: u64,
    replayed_frames: u64,
    /// GPU tokens re-paid across all attempts beyond the crash-free cost.
    wasted_tokens: u64,
    /// Wall-clock spent in `recover` + `resume_programs`, summed.
    recovery_ms: f64,
    wal_bytes: u64,
    /// Per-tag WAL frame counts (journal-growth observability), reported
    /// for every point — clean runs and post-recovery alike.
    wal_frames: Vec<(String, u64)>,
    /// Size of the KV store's journal snapshot at point end, taken via
    /// `KvStore::journal_bytes` (which also publishes the
    /// `kvfs.journal_bytes` gauge into the kernel's metrics registry).
    kv_journal_bytes: u64,
    checkpoints: u64,
    /// Completions per virtual second.
    goodput: f64,
    /// This point's goodput over the crash-free goodput at the same
    /// checkpoint interval.
    goodput_ratio: f64,
    /// GPU tokens across every attempt (baseline for the wasted-work delta).
    total_tokens: u64,
    /// False when the point hit the restart cap still crashing — the
    /// crash rate outruns durable progress at this checkpoint interval
    /// (the stability frontier). Reported, not asserted.
    finished: bool,
}

struct Scale {
    agents: usize,
    max_tokens: usize,
    arrival_gap: SimDuration,
    intervals: Vec<SimDuration>,
    crash_everys: Vec<u64>,
}

impl Scale {
    fn new(smoke: bool) -> Self {
        if smoke {
            Scale {
                agents: 10,
                max_tokens: 8,
                arrival_gap: SimDuration::from_millis(3),
                intervals: vec![DEFAULT_CHECKPOINT_EVERY, SimDuration::from_millis(25)],
                crash_everys: vec![0, 400],
            }
        } else {
            Scale {
                agents: 48,
                max_tokens: 24,
                arrival_gap: SimDuration::from_millis(5),
                intervals: vec![
                    SimDuration::from_millis(1),
                    DEFAULT_CHECKPOINT_EVERY,
                    SimDuration::from_millis(25),
                    SimDuration::from_millis(100),
                ],
                crash_everys: vec![0, 1500, 400],
            }
        }
    }
}

/// One fleet agent: decode a short plan, consult the (deterministic,
/// journalled) tool, decode a follow-up, report. Everything after the last
/// checkpoint is what a crash costs.
fn agent_image(max_tokens: usize) -> ProgramImage {
    Arc::new(move |ctx| {
        let args = ctx.args();
        let prompt = ctx.tokenize(&format!("plan the task {args} step by step"))?;
        let kv = ctx.kv_create()?;
        let opts = GenOpts { max_tokens, temperature: 0.0, ..Default::default() };
        sampling::generate(ctx, kv, &prompt, &opts)?;
        let doc = ctx.call_tool("web", &args)?;
        let follow = ctx.tokenize(&doc)?;
        let done = sampling::generate(ctx, kv, &follow, &opts)?;
        ctx.emit(&format!("{args}:{}", done.tokens.len()))?;
        ctx.kv_remove(kv)?;
        Ok(())
    })
}

fn register_tools(k: &mut Kernel) {
    k.register_tool(
        "web",
        ToolSpec::fixed(SimDuration::from_millis(8), |args| {
            ToolOutcome::Ok(format!("findings for {args}: relevant background"))
        }),
    );
}

fn make_config(wal_path: &std::path::Path, every: SimDuration, crash_at: Option<u64>) -> KernelConfig {
    let mut cfg = KernelConfig::for_tests();
    cfg.trace = false;
    cfg.wal = Some(WalConfig::new(wal_path).with_checkpoint_every(every));
    cfg.faults.crash_at_boundary = crash_at;
    cfg
}

fn spawn_fleet(k: &mut Kernel, scale: &Scale) {
    let image = agent_image(scale.max_tokens);
    for i in 0..scale.agents {
        let at = SimTime::ZERO + scale.arrival_gap * i as u64;
        k.schedule_durable(at, &format!("agent{i}"), &format!("{i}"), image.clone());
    }
}

/// Geometric inter-crash gap in syscall boundaries, mean `every`.
fn draw_gap(rng: &mut Rng, every: u64) -> u64 {
    let u = rng.next_f64_open();
    ((-u.ln()) * every as f64).ceil().max(1.0) as u64
}

fn gpu_tokens(k: &Kernel) -> u64 {
    k.metrics_registry().counter_value("gpu.tokens").unwrap_or(0)
}

/// Runs one sweep point to fleet completion, restarting through every
/// injected crash.
fn run_point(scale: &Scale, every: SimDuration, crash_every: u64, tag: &str) -> Point {
    let wal_path = std::env::temp_dir().join(format!(
        "symphony-e14-{}-{tag}.wal",
        std::process::id()
    ));
    let max_tokens = scale.max_tokens;
    let resolver = move |name: &str| {
        name.starts_with("agent").then(|| agent_image(max_tokens))
    };
    // The crash schedule is bench-side and deterministic: re-seeding the
    // kernel's own fault stream after recovery would re-kill the identical
    // boundary forever (re-execution repeats the boundary sequence).
    let mut crash_rng = Rng::new(0xE14 ^ (crash_every << 8) ^ every.as_nanos());

    let mut crash_at = (crash_every > 0).then(|| draw_gap(&mut crash_rng, crash_every));
    let mut kernel = Kernel::new(make_config(&wal_path, every, crash_at));
    register_tools(&mut kernel);
    spawn_fleet(&mut kernel, scale);
    kernel.run();

    let mut total_tokens = gpu_tokens(&kernel);
    let mut restarts = 0u64;
    let mut replayed = 0u64;
    let mut recovery_ms = 0.0f64;
    while kernel.crashed().is_some() && restarts < MAX_RESTARTS {
        restarts += 1;
        crash_at = (crash_every > 0).then(|| draw_gap(&mut crash_rng, crash_every));
        let wall = std::time::Instant::now();
        let (mut next, _report) = Kernel::recover(make_config(&wal_path, every, crash_at))
            .expect("recoverable WAL");
        register_tools(&mut next);
        let resumed = next.resume_programs(resolver);
        recovery_ms += wall.elapsed().as_secs_f64() * 1e3;
        assert_eq!(resumed.lost, 0, "every agent image resolves");
        replayed += next.replayed_frames();
        next.run();
        total_tokens += gpu_tokens(&next);
        kernel = next;
    }
    let finished = kernel.crashed().is_none();

    let completed = kernel.records().filter(|r| r.status.is_ok()).count();
    let failed = kernel.records().filter(|r| r.exited_at.is_some() && !r.status.is_ok()).count();
    let end = kernel
        .records()
        .filter_map(|r| r.exited_at)
        .max()
        .unwrap_or(kernel.now());
    let goodput = completed as f64 / end.as_nanos().max(1) as f64 * 1e9;
    let wal_bytes = std::fs::metadata(&wal_path).map_or(0, |m| m.len());
    let checkpoints = kernel
        .metrics_registry()
        .counter_value("kernel.checkpoints")
        .unwrap_or(0);

    // Per-tag WAL composition: the journal-growth observability hook.
    // Computed for every point — the final kernel is the recovered one
    // when crashes were injected, so this reflects post-recovery growth
    // too, not just clean runs.
    let wal_frames: Vec<(String, u64)> = std::fs::read(&wal_path)
        .ok()
        .and_then(|bytes| wal::frame_counts(&bytes).ok())
        .map(|counts| counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        .unwrap_or_default();
    // Snapshot the KV store's journal: sizes the in-memory store and sets
    // the `kvfs.journal_bytes` gauge so the registry reports it after
    // `Kernel::recover` (re-execution rebuilds the store without touching
    // the gauge) as well as on clean runs.
    kernel.store().journal_bytes();
    let kv_journal_bytes = kernel.metrics_registry().gauge("kvfs.journal_bytes").get() as u64;
    std::fs::remove_file(&wal_path).ok();

    Point {
        checkpoint_ms: every.as_millis_f64(),
        crash_every,
        completed,
        failed,
        restarts,
        replayed_frames: replayed,
        wasted_tokens: 0, // filled in by the caller against the baseline
        recovery_ms,
        wal_bytes,
        wal_frames,
        kv_journal_bytes,
        checkpoints,
        goodput,
        goodput_ratio: 0.0, // filled in by the caller
        total_tokens,
        finished,
    }
}

fn main() {
    let smoke = symphony_bench::ExpArgs::from_args().smoke;
    let scale = Scale::new(smoke);
    let mut points: Vec<Point> = Vec::new();

    for &every in &scale.intervals {
        // Crash-free baseline first: goodput and GPU cost at this interval.
        let mut base: Option<(f64, u64)> = None;
        for &crash_every in &scale.crash_everys {
            eprintln!(
                "E14: checkpoint {:.0}ms, crash every {} boundaries ...",
                every.as_millis_f64(),
                crash_every
            );
            let tag = format!("{}-{}", every.as_nanos(), crash_every);
            let mut p = run_point(&scale, every, crash_every, &tag);
            // Completion is only guaranteed on the stable side of the
            // frontier: crash-free always, and any crash rate at (or
            // tighter than) the default checkpoint interval.
            if crash_every == 0 || every <= DEFAULT_CHECKPOINT_EVERY {
                assert!(p.finished, "stable point must outrun its crash rate");
                assert_eq!(p.completed, scale.agents, "every agent finishes");
                assert_eq!(p.failed, 0);
            }
            if !p.finished {
                eprintln!(
                    "E14: unstable — still crashing after {MAX_RESTARTS} restarts \
                     ({}/{} agents done)",
                    p.completed, scale.agents
                );
            }
            let (base_goodput, base_tokens) =
                *base.get_or_insert((p.goodput, p.total_tokens));
            p.goodput_ratio = p.goodput / base_goodput;
            p.wasted_tokens = p.total_tokens.saturating_sub(base_tokens);
            points.push(p);
        }
    }

    let mut table = Table::new(
        "E14 — goodput under injected kernel crashes (WAL checkpoint interval sweep)",
        &[
            "ckpt", "crash", "done", "restarts", "replayed", "wasted tok", "recovery",
            "wal", "goodput",
        ],
    );
    for p in &points {
        table.row(vec![
            format!("{:.0}ms", p.checkpoint_ms),
            if p.crash_every == 0 { "none".into() } else { format!("1/{}", p.crash_every) },
            if p.finished {
                p.completed.to_string()
            } else {
                format!("{}/{} (unstable)", p.completed, scale.agents)
            },
            p.restarts.to_string(),
            p.replayed_frames.to_string(),
            p.wasted_tokens.to_string(),
            format!("{:.1}ms", p.recovery_ms),
            format!("{:.0}KB", p.wal_bytes as f64 / 1024.0),
            format!("{:.2}/s ({:.0}%)", p.goodput, p.goodput_ratio * 100.0),
        ]);
    }
    table.print();

    // Journal growth, every point: WAL frame mix plus the KV journal
    // gauge — visible after recovery (the recovered kernel's store is
    // re-snapshotted at point end) and on clean runs alike.
    println!();
    for p in &points {
        let breakdown: Vec<String> =
            p.wal_frames.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "journal growth (ckpt {:.0}ms, crash {}): wal {} bytes; frames: {}; \
             kvfs.journal_bytes={}",
            p.checkpoint_ms,
            if p.crash_every == 0 { "none".into() } else { format!("1/{}", p.crash_every) },
            p.wal_bytes,
            if breakdown.is_empty() { "-".to_string() } else { breakdown.join(" ") },
            p.kv_journal_bytes,
        );
    }

    // Acceptance gate: at the default checkpoint interval, crashes cost at
    // most 10% goodput — recovery replays the journal instead of re-paying
    // the fleet.
    let default_ms = DEFAULT_CHECKPOINT_EVERY.as_millis_f64();
    for p in points.iter().filter(|p| p.checkpoint_ms == default_ms && p.crash_every > 0) {
        assert!(
            p.goodput_ratio >= 0.9,
            "default interval, crash every {}: goodput ratio {:.3} < 0.9",
            p.crash_every,
            p.goodput_ratio
        );
    }
    println!("\nShape check: wasted GPU work shrinks as checkpoints tighten (only the");
    println!("unflushed pred tail is re-paid), while WAL bytes and checkpoint count grow —");
    println!("the durability/overhead tradeoff. At the default interval, injected crashes");
    println!("retain >=90% of crash-free goodput.");
    // recovery_ms is wall-clock (machine-dependent); zero it in the JSON
    // artifact so repeated runs stay byte-identical. The printed table above
    // keeps the measured value.
    let mut deterministic = points;
    for p in &mut deterministic {
        p.recovery_ms = 0.0;
    }
    write_json("exp_recovery", &deterministic);
}
