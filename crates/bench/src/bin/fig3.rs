//! Regenerates Figure 3 (both panels) and the headline throughput ratio.
//!
//! Four systems share one substrate: Symphony (LIP-controlled caching), a
//! 2024-era vLLM without automatic prefix caching (the paper's comparator),
//! a stronger vLLM *with* automatic prefix caching, and TGI.
//!
//! Usage: `cargo run -p symphony-bench --release --bin fig3 [--quick]`

use symphony_bench::fig3::{sweep, Fig3Config, PointResult, Scale};
use symphony_bench::{write_json, Table};

const SYSTEMS: &[&str] = &["symphony", "vllm-noapc", "vllm", "tgi"];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Fig3Config::quick()
    } else {
        Fig3Config::paper()
    };
    let scale = if quick {
        Scale::quick(&cfg)
    } else {
        Scale::paper(&cfg)
    };
    // The paper sweeps request load and the Pareto index of topic
    // popularity. Small index = heavy skew.
    let paretos: &[f64] = &[0.5, 1.0, 2.0, 4.0];
    let loads: &[f64] = if quick {
        &[10.0, 40.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    };

    let mut results = sweep(&cfg, &scale, paretos, loads);
    print_panels(&results, paretos, loads);

    if !quick {
        // Headline probe: the ratio is maximised when decode is short and
        // the system saturates (prefill dominates). The paper does not
        // state its answer length; this probe uses 16-token answers at
        // heavy skew and overload.
        eprintln!("fig3: headline probe ...");
        let mut hcfg = cfg.clone();
        hcfg.answer_tokens = 16;
        hcfg.requests = 200;
        let hscale = Scale::paper(&hcfg);
        let s = symphony_bench::fig3::run_symphony_point(&hcfg, &hscale, 0.5, 32.0);
        let v = symphony_bench::fig3::run_engine_point("vllm-noapc", &hcfg, &hscale, 0.5, 32.0);
        println!(
            "Headline probe (16-token answers, pareto 0.5, 32 rps): \
             {:.0} vs {:.0} tok/s = {:.2}x vs vLLM-without-APC",
            s.throughput_tok_s,
            v.throughput_tok_s,
            s.throughput_tok_s / v.throughput_tok_s
        );
        results.push(s);
        results.push(v);
    }
    write_json(if quick { "fig3_quick" } else { "fig3" }, &results);
}

fn by<'a>(
    results: &'a [PointResult],
    system: &str,
    pareto: f64,
    load: f64,
) -> Option<&'a PointResult> {
    results
        .iter()
        .find(|r| r.system == system && r.pareto_index == pareto && r.load_rps == load)
}

fn print_panels(results: &[PointResult], paretos: &[f64], loads: &[f64]) {
    // Panel (a): normalized mean end-to-end latency per generated token.
    let mut a = Table::new(
        "Figure 3a — mean E2E latency per generated token (ms; x = normalized to Symphony)",
        &["pareto", "load", "symphony", "vllm-noapc", "vllm+apc", "tgi", "sym hit%"],
    );
    for &p in paretos {
        for &l in loads {
            let Some(s) = by(results, "symphony", p, l) else { continue };
            let norm = |r: Option<&PointResult>| match r {
                Some(r) => format!(
                    "{:.0} ({:.2}x)",
                    r.latency_per_token_ms,
                    r.latency_per_token_ms / s.latency_per_token_ms
                ),
                None => "-".into(),
            };
            a.row(vec![
                format!("{p}"),
                format!("{l}"),
                format!("{:.0}", s.latency_per_token_ms),
                norm(by(results, "vllm-noapc", p, l)),
                norm(by(results, "vllm", p, l)),
                norm(by(results, "tgi", p, l)),
                format!("{:.0}%", s.cache_hit_rate * 100.0),
            ]);
        }
    }
    a.print();
    println!();

    // Panel (b): throughput.
    let mut b = Table::new(
        "Figure 3b — generated-token throughput (tok/s; x = normalized to Symphony)",
        &["pareto", "load", "symphony", "vllm-noapc", "vllm+apc", "tgi", "gpu%", "failed"],
    );
    let mut max_vs_noapc: f64 = 0.0;
    let mut max_vs_apc: f64 = 0.0;
    for &p in paretos {
        for &l in loads {
            let Some(s) = by(results, "symphony", p, l) else { continue };
            let norm = |r: Option<&PointResult>| match r {
                Some(r) => format!(
                    "{:.0} ({:.2}x)",
                    r.throughput_tok_s,
                    r.throughput_tok_s / s.throughput_tok_s
                ),
                None => "-".into(),
            };
            if let Some(v) = by(results, "vllm-noapc", p, l) {
                if v.throughput_tok_s > 0.0 {
                    max_vs_noapc = max_vs_noapc.max(s.throughput_tok_s / v.throughput_tok_s);
                }
            }
            if let Some(v) = by(results, "vllm", p, l) {
                if v.throughput_tok_s > 0.0 {
                    max_vs_apc = max_vs_apc.max(s.throughput_tok_s / v.throughput_tok_s);
                }
            }
            let failed: String = SYSTEMS
                .iter()
                .map(|sys| {
                    by(results, sys, p, l)
                        .map(|r| r.failed.to_string())
                        .unwrap_or_else(|| "-".into())
                })
                .collect::<Vec<_>>()
                .join("/");
            b.row(vec![
                format!("{p}"),
                format!("{l}"),
                format!("{:.0}", s.throughput_tok_s),
                norm(by(results, "vllm-noapc", p, l)),
                norm(by(results, "vllm", p, l)),
                norm(by(results, "tgi", p, l)),
                format!("{:.0}%", s.gpu_util * 100.0),
                failed,
            ]);
        }
    }
    b.print();
    println!();
    println!(
        "Headline: max Symphony throughput ratio = {max_vs_noapc:.2}x vs vLLM-without-APC \
         (the paper's comparator; paper reports up to 7x), {max_vs_apc:.2}x vs vLLM-with-APC"
    );
}
