//! E6 — §4.3 KV offload during I/O waits.
//!
//! Agents with large contexts block on slow tools. With offload enabled the
//! kernel swaps a blocked process's KV files to host memory, freeing HBM
//! for concurrently arriving work; the agent pays the PCIe restore on
//! resume. We measure the throughput of background completions that must
//! squeeze into the remaining memory, with and without offload.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_offload`

use serde::Serialize;
use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig, SimDuration, SimTime, SysError, ToolOutcome, ToolSpec};
use symphony_bench::{write_json_with_metrics, Table, TelemetryOpts};

const AGENTS: usize = 6;
const AGENT_CONTEXT_TOKENS: usize = 3_000;
const BG_JOBS: usize = 12;
const TOOL_LATENCY: SimDuration = SimDuration::from_secs(3);

#[derive(Debug, Clone, Serialize)]
struct Point {
    offload: bool,
    disk_tier: bool,
    agent_mean_latency_ms: f64,
    bg_mean_latency_ms: f64,
    bg_failures: usize,
    swapped_tokens: u64,
    disk_spilled_tokens: u64,
}

fn run_point(
    offload: bool,
    disk_tier: bool,
    telemetry: &TelemetryOpts,
    designated: bool,
) -> (Point, Option<symphony::MetricsSnapshot>) {
    let mut cfg = KernelConfig::paper_setup();
    cfg.model = cfg.model.with_mean_output_tokens(24);
    cfg.offload_on_io_wait = offload;
    cfg.offload_min_latency = SimDuration::from_millis(50);
    // A pool that fits the agents' contexts with little slack, so the
    // background jobs depend on offload for memory.
    let kv_per_token = cfg.model.kv_bytes_per_token();
    cfg.gpu_kv_bytes_override =
        Some((AGENTS * AGENT_CONTEXT_TOKENS + 4_500) as u64 * kv_per_token);
    if disk_tier {
        // Shrink DRAM to two agents' worth of context: offloading the other
        // four cascades onto the NVMe tier, and they pay the disk lane on
        // resume. Without the disk tier this configuration would simply
        // refuse the swap-outs (NoCpuMemory) and keep HBM full.
        cfg.cpu_swap_bytes = (2 * AGENT_CONTEXT_TOKENS) as u64 * kv_per_token;
    }
    cfg.trace = false;
    cfg.telemetry = telemetry.record(designated);
    let mut kernel = Kernel::new(cfg);
    kernel.register_tool(
        "slow-api",
        ToolSpec::fixed(TOOL_LATENCY, |_| ToolOutcome::Ok("api data".into())),
    );

    let doc = symphony_tokenizer::CorpusGen::new(9).paragraph(AGENT_CONTEXT_TOKENS);
    let doc = std::sync::Arc::new(doc);
    let mut agents = Vec::new();
    for i in 0..AGENTS {
        let doc = doc.clone();
        let at = SimTime::ZERO + SimDuration::from_millis(10 * i as u64);
        agents.push(kernel.schedule_process(at, &format!("agent{i}"), "", move |ctx| {
            let kv = ctx.kv_create()?;
            let toks = ctx.tokenize(&doc)?;
            ctx.pred_positions(kv, &toks, 0)?;
            // Long blocking tool call: the kernel may offload `kv`.
            ctx.call_tool("slow-api", "q")?;
            // The kernel restores offloaded files on I/O completion, but
            // under pressure the restore can fail; the application owns the
            // fallback: ensure residency, generate, and back off (holding
            // the context in host memory, not HBM) on any memory error.
            let q = ctx.tokenize("\nsummarize")?;
            let base = ctx.kv_len(kv)?;
            let mut done = false;
            for attempt in 0..200u64 {
                if ctx.kv_swap_in(kv).is_err() {
                    ctx.sleep(SimDuration::from_millis(20 + 5 * attempt))?;
                    continue;
                }
                match generate(
                    ctx,
                    kv,
                    &q,
                    &GenOpts { max_tokens: 16, emit: false, ..Default::default() },
                ) {
                    Ok(_) => {
                        done = true;
                        break;
                    }
                    Err(SysError::Kv(symphony_kvfs::KvError::NoGpuMemory)) => {
                        ctx.kv_truncate(kv, base)?;
                        let _ = ctx.kv_swap_out(kv);
                        ctx.sleep(SimDuration::from_millis(30 + 5 * attempt))?;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !done {
                return Err(SysError::Kv(symphony_kvfs::KvError::NoGpuMemory));
            }
            ctx.kv_remove(kv)?;
            Ok(())
        }));
    }
    // Background completions arrive while the agents block on I/O.
    let mut bg = Vec::new();
    for i in 0..BG_JOBS {
        // Arrive while every agent sits inside its 3 s tool call (the
        // agents' prefills serialise on the GPU and finish by ~3.3 s).
        let at = SimTime::ZERO + SimDuration::from_millis(3_600 + 40 * i as u64);
        bg.push(kernel.schedule_process(at, &format!("bg{i}"), "", move |ctx| {
            let prompt =
                ctx.tokenize(&symphony_tokenizer::CorpusGen::new(50).paragraph(700))?;
            let kv = ctx.kv_create()?;
            match ctx.pred_positions(kv, &prompt, 0) {
                Ok(_) => {}
                Err(e) => return Err(e), // no retry: measures raw headroom
            }
            let q = [prompt[0]];
            generate(ctx, kv, &q, &GenOpts { max_tokens: 12, emit: false, ..Default::default() })?;
            ctx.kv_remove(kv)?;
            Ok(())
        }));
    }
    kernel.run();

    let mut agent_lat = symphony_sim::Series::new();
    for &pid in &agents {
        let rec = kernel.record(pid).expect("record");
        assert!(rec.status.is_ok(), "agent failed: {:?}", rec.status);
        agent_lat.add(rec.latency().expect("exited").as_millis_f64());
    }
    let mut bg_lat = symphony_sim::Series::new();
    let mut bg_failures = 0;
    for &pid in &bg {
        let rec = kernel.record(pid).expect("record");
        if rec.status.is_ok() {
            bg_lat.add(rec.latency().expect("exited").as_millis_f64());
        } else {
            bg_failures += 1;
        }
    }
    let snap = telemetry.export_designated(&kernel, designated);
    let stats = kernel.kv_stats();
    let point = Point {
        offload,
        disk_tier,
        agent_mean_latency_ms: agent_lat.mean(),
        bg_mean_latency_ms: bg_lat.mean(),
        bg_failures,
        swapped_tokens: stats.swapped_out_tokens,
        disk_spilled_tokens: stats.disk_spilled_tokens,
    };
    (point, snap)
}

fn main() {
    let opts = TelemetryOpts::from_args();
    let mut table = Table::new(
        "E6 — KV offload on I/O wait (6 agents x 3000-token contexts, 3s tool)",
        &["offload", "tier", "agent lat", "bg lat", "bg failures", "swapped", "disk spill"],
    );
    let mut results = Vec::new();
    let mut captured: Option<symphony::MetricsSnapshot> = None;
    for (offload, disk) in [(false, false), (true, false), (true, true)] {
        eprintln!("E6: offload={offload} disk={disk} ...");
        // The designated telemetry run: offload enabled, DRAM-only (swaps
        // happen and the output stays comparable with older traces).
        let (p, snap) = run_point(offload, disk, &opts, offload && !disk);
        if let Some(s) = snap {
            captured = Some(s);
        }
        table.row(vec![
            offload.to_string(),
            if disk { "dram+nvme" } else { "dram" }.to_string(),
            format!("{:.0}ms", p.agent_mean_latency_ms),
            format!("{:.0}ms", p.bg_mean_latency_ms),
            p.bg_failures.to_string(),
            p.swapped_tokens.to_string(),
            p.disk_spilled_tokens.to_string(),
        ]);
        results.push(p);
    }
    table.print();
    println!("\nShape check: offload lets background jobs fit (fewer failures) at the");
    println!("price of agents paying PCIe swap time on resume; with DRAM squeezed to");
    println!("two contexts the overflow spills to NVMe and resume gets dearer still.");
    let metrics = captured.as_ref().filter(|_| opts.metrics);
    write_json_with_metrics("exp_offload", &results, metrics);
}

// Referenced to keep the import used when assertions compile out.
#[allow(dead_code)]
fn _t(e: SysError) -> SysError {
    e
}
