//! E13 — warm restart: KVFS journal persistence across kernel reboots.
//!
//! A kernel that snapshots its KV store to an append-only journal at
//! shutdown and replays it at boot starts with the popular prefixes already
//! hot: the first wave of requests after a restart forks restored KV
//! instead of re-prefilling every document. We run two workloads — the
//! Fig-3 RAG application and a shared-system-prompt agent fleet — twice
//! each: a cold boot, then a warm restart from the cold run's journal, and
//! compare prefix-cache hit rates and latency.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_persist [-- --smoke]`

use serde::Serialize;
use symphony::sampling::{self, GenOpts};
use symphony::{
    Ctx, Kernel, KernelConfig, Mode, SimDuration, SimTime, SysError, ToolOutcome, ToolSpec,
};
use symphony_bench::fig3::{run_symphony_point_persist, Fig3Config, Scale};
use symphony_bench::{write_json_with_metrics, Table};

const AGENTS: usize = 24;
/// Cold-boot agents arrive in waves; the kernel drains the KVFS delta log
/// to the journal between waves, so the journal grows incrementally the
/// way a live deployment's would (and compaction has something to reclaim).
const WAVE: usize = 4;

#[derive(Debug, Clone, Serialize)]
struct Point {
    workload: &'static str,
    boot: &'static str,
    completed: usize,
    failed: usize,
    cache_hit_rate: f64,
    mean_latency_ms: f64,
    restored_files: usize,
    restored_tokens: usize,
    /// Journal size this run wrote (cold) or replayed (warm).
    journal_bytes: u64,
    /// Per-tag frame counts of that journal (growth observability).
    journal_frames: Vec<(String, u64)>,
}

/// Reads a journal back and summarises its growth: total bytes plus valid
/// frames per tag.
fn journal_growth(path: &std::path::Path) -> (u64, Vec<(String, u64)>) {
    let Ok(bytes) = std::fs::read(path) else {
        return (0, Vec::new());
    };
    let frames = symphony_kvfs::journal::frame_counts(&bytes)
        .map(|m| m.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        .unwrap_or_default();
    (bytes.len() as u64, frames)
}

// ---- Fig-3 RAG workload ---------------------------------------------------

fn rag_points(smoke: bool, journal: &std::path::Path) -> (Point, Point) {
    let (cfg, scale) = if smoke {
        let c = Fig3Config::quick();
        let s = Scale::quick(&c);
        (c, s)
    } else {
        let c = Fig3Config::paper();
        let s = Scale::paper(&c);
        (c, s)
    };
    // Heavy skew: the regime where retained document KV matters most.
    let (pareto, load) = (0.5, 20.0);
    std::fs::remove_file(journal).ok();
    eprintln!("E13: rag cold ...");
    let (cold, r) = run_symphony_point_persist(&cfg, &scale, pareto, load, None, Some(journal));
    assert!(r.is_none(), "cold boot must not report a restore");
    eprintln!("E13: rag warm ...");
    let (warm, r) = run_symphony_point_persist(&cfg, &scale, pareto, load, Some(journal), None);
    let report = r.expect("warm boot must replay the journal");
    let (jbytes, jframes) = journal_growth(journal);
    let to_point = |boot, p: &symphony_bench::fig3::PointResult, files, tokens| Point {
        workload: "rag",
        boot,
        completed: p.completed,
        failed: p.failed,
        cache_hit_rate: p.cache_hit_rate,
        mean_latency_ms: p.mean_latency_s * 1e3,
        restored_files: files,
        restored_tokens: tokens,
        journal_bytes: jbytes,
        journal_frames: jframes.clone(),
    };
    (
        to_point("cold", &cold, 0, 0),
        to_point("warm", &warm, report.files, report.tokens),
    )
}

// ---- shared-system-prompt agent workload ----------------------------------

/// One agent session: fork the published system prompt if present,
/// otherwise fetch + prefill + publish it (pinned), then run the task turn.
fn agent_lip(ctx: &mut Ctx) -> Result<(), SysError> {
    let kv = match ctx.kv_open("agent/system.kv") {
        Ok(sys) => ctx.kv_fork(sys)?,
        Err(_) => {
            let text = ctx.call_tool("fetch-system", "")?;
            let toks = ctx.tokenize(&text)?;
            let f = ctx.kv_create()?;
            ctx.pred_positions(f, &toks, 0)?;
            // Racing sessions may have published first; losing is fine.
            if ctx.kv_link(f, "agent/system.kv").is_ok() {
                ctx.kv_chmod(f, Mode::SHARED_READ)?;
                ctx.kv_pin(f)?;
                ctx.kv_fork(f)?
            } else {
                f
            }
        }
    };
    let task = ctx.tokenize(&ctx.args())?;
    sampling::generate(
        ctx,
        kv,
        &task,
        &GenOpts { max_tokens: 16, emit: false, ..Default::default() },
    )?;
    ctx.kv_remove(kv)?;
    Ok(())
}

fn agent_run(smoke: bool, journal: &std::path::Path, warm: bool) -> Point {
    let mut cfg = if smoke {
        KernelConfig::for_tests()
    } else {
        let mut c = KernelConfig::paper_setup();
        c.model = c.model.with_mean_output_tokens(16);
        c
    };
    cfg.trace = false;
    if warm {
        cfg.journal_path = Some(journal.to_path_buf());
    }
    let mut kernel = Kernel::new(cfg);
    let sys_text =
        std::sync::Arc::new("You are a careful planning agent. ".repeat(if smoke { 8 } else { 96 }));
    {
        let sys = sys_text.clone();
        kernel.register_tool(
            "fetch-system",
            ToolSpec::fixed(SimDuration::from_millis(40), move |_| {
                ToolOutcome::Ok(sys.as_ref().clone())
            }),
        );
    }
    let mut pids = Vec::new();
    if warm {
        for i in 0..AGENTS {
            let at = SimTime::ZERO + SimDuration::from_millis(25 * i as u64);
            let args = format!("plan step {i}");
            pids.push(kernel.schedule_process(at, &format!("agent{i}"), &args, agent_lip));
        }
        kernel.run();
    } else {
        // Cold boot persists incrementally: open the journal up front, run
        // the fleet in waves, and drain the KVFS delta log after each wave.
        // A deliberately small compaction threshold forces the journal to be
        // rewritten to its snapshot-equivalent form mid-run, which is what
        // keeps `journal_bytes` bounded no matter how long the fleet runs.
        let threshold: u64 = if smoke { 4 * 1024 } else { 16 * 1024 };
        kernel
            .open_kv_journal(
                journal,
                symphony_kvfs::JournalConfig {
                    flush_every_bytes: 1024,
                    compact_threshold_bytes: threshold,
                },
            )
            .expect("open journal");
        let mut max_bytes = 0u64;
        for wave in 0..AGENTS.div_ceil(WAVE) {
            let base = kernel.now();
            for j in 0..WAVE {
                let i = wave * WAVE + j;
                if i >= AGENTS {
                    break;
                }
                let at = base + SimDuration::from_millis(25 * j as u64);
                let args = format!("plan step {i}");
                pids.push(kernel.schedule_process(at, &format!("agent{i}"), &args, agent_lip));
            }
            kernel.run();
            kernel.persist_kv_delta().expect("delta flush");
            let on_disk = std::fs::metadata(journal).map(|m| m.len()).unwrap_or(0);
            max_bytes = max_bytes.max(on_disk);
            eprintln!("E13: agent wave {wave}: journal {on_disk} bytes");
        }
        // Boundedness: after every drain the journal is at most the
        // compaction threshold, or one snapshot of live state when a single
        // snapshot already exceeds the threshold (plus one buffered batch).
        let snap_path = journal.with_extension("snapshot.tmp");
        kernel.persist_kv(&snap_path).expect("snapshot write");
        let snapshot_len = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
        std::fs::remove_file(&snap_path).ok();
        let bound = threshold.max(snapshot_len) + threshold;
        assert!(
            max_bytes <= bound,
            "journal must stay bounded under compaction: max {max_bytes} > bound {bound}"
        );
        let compactions = kernel
            .metrics_registry()
            .counter_value("kvfs.compactions")
            .unwrap_or(0);
        assert!(
            compactions >= 1,
            "agent fleet must trigger at least one journal compaction"
        );
        eprintln!(
            "E13: agent cold: {compactions} compactions, max journal {max_bytes} bytes \
             (snapshot {snapshot_len}, threshold {threshold})"
        );
    }
    let report = kernel.restored().copied();
    let (journal_bytes, journal_frames) = journal_growth(journal);

    let mut lat = symphony_sim::Series::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut misses = 0u64;
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        if !rec.status.is_ok() {
            failed += 1;
            continue;
        }
        completed += 1;
        misses += u64::from(rec.usage.tool_calls > 0);
        lat.add(rec.latency().expect("exited").as_millis_f64());
    }
    Point {
        workload: "agent",
        boot: if warm { "warm" } else { "cold" },
        completed,
        failed,
        cache_hit_rate: if completed > 0 {
            1.0 - misses as f64 / completed as f64
        } else {
            0.0
        },
        mean_latency_ms: lat.mean(),
        restored_files: report.map_or(0, |r| r.files),
        restored_tokens: report.map_or(0, |r| r.tokens),
        journal_bytes,
        journal_frames,
    }
}

fn main() {
    let smoke = symphony_bench::ExpArgs::from_args().smoke;
    std::fs::create_dir_all("results").ok();
    let rag_journal = std::path::PathBuf::from("results/exp_persist_rag.journal");
    let agent_journal = std::path::PathBuf::from("results/exp_persist_agent.journal");

    let (rag_cold, rag_warm) = rag_points(smoke, &rag_journal);
    eprintln!("E13: agent cold ...");
    std::fs::remove_file(&agent_journal).ok();
    let agent_cold = agent_run(smoke, &agent_journal, false);
    eprintln!("E13: agent warm ...");
    let agent_warm = agent_run(smoke, &agent_journal, true);

    let points = vec![rag_cold, rag_warm, agent_cold, agent_warm];
    let mut table = Table::new(
        "E13 — warm restart from KVFS journal (cold boot vs replayed journal)",
        &["workload", "boot", "done", "failed", "hit rate", "mean lat", "restored", "journal"],
    );
    for p in &points {
        table.row(vec![
            p.workload.to_string(),
            p.boot.to_string(),
            p.completed.to_string(),
            p.failed.to_string(),
            format!("{:.1}%", p.cache_hit_rate * 100.0),
            format!("{:.0}ms", p.mean_latency_ms),
            format!("{} files / {} tok", p.restored_files, p.restored_tokens),
            format!("{:.1}KB", p.journal_bytes as f64 / 1024.0),
        ]);
    }
    table.print();

    for p in &points {
        if p.boot == "cold" && !p.journal_frames.is_empty() {
            let breakdown: Vec<String> =
                p.journal_frames.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!(
                "journal growth ({}): {} bytes; frames: {}",
                p.workload,
                p.journal_bytes,
                breakdown.join(" ")
            );
        }
    }

    let rate = |w, b| {
        points
            .iter()
            .find(|p| p.workload == w && p.boot == b)
            .map(|p| p.cache_hit_rate)
            .unwrap()
    };
    assert!(
        rate("rag", "warm") > rate("rag", "cold"),
        "warm restart must beat cold start on RAG prefix-cache hit rate"
    );
    assert!(
        rate("agent", "warm") > rate("agent", "cold"),
        "warm restart must beat cold start on agent prefix-cache hit rate"
    );
    println!("\nShape check: the journal replay pre-populates the popular prefixes, so");
    println!("warm-restart hit rates sit strictly above cold start on both workloads.");
    write_json_with_metrics("exp_persist", &points, None);
}
