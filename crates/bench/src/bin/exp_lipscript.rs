//! E8 — §6 sandbox cost: LipScript vs native LIPs.
//!
//! The same autoregressive loop runs as a native Rust LIP and as an
//! interpreted LipScript program. Virtual-time behaviour is identical (both
//! issue the same syscalls); the interpreter's cost is host CPU, which we
//! report as wall-clock per generated token, plus the fuel/memory the §6
//! accounting attributes to the guest.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_lipscript`

use serde::Serialize;
use symphony::{Kernel, KernelConfig, SysError};
use symphony_bench::{write_json, Table};
use symphony_lipscript::{InterpLimits, Interpreter};

const RUNS: usize = 16;
const MAX_TOKENS: usize = 64;

#[derive(Debug, Clone, Serialize)]
struct Point {
    mode: String,
    tokens: u64,
    virtual_ms_per_token: f64,
    wall_us_per_token: f64,
    syscalls: u64,
    fuel_per_token: f64,
}

const SCRIPT: &str = r#"
let prompt = tokenize(args());
let kv = kv_create();
let dists = pred(kv, prompt, 0);
let d = dists[len(dists) - 1];
let pos = len(prompt);
let n = 0;
while (n < 64) {
    let t = argmax(d);
    if (t == eos()) { break; }
    emit_token(t);
    d = pred(kv, [t], pos)[0];
    pos = pos + 1;
    n = n + 1;
}
kv_remove(kv);
"#;

fn run_mode(lipscript: bool) -> Point {
    let mut cfg = KernelConfig::for_tests();
    cfg.model = cfg.model.with_mean_output_tokens(100_000);
    cfg.trace = false;
    let mut kernel = Kernel::new(cfg);
    let fuel_total = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut pids = Vec::new();
    for i in 0..RUNS {
        let args = format!("a prompt for measurement case number {i}");
        if lipscript {
            let fuel = fuel_total.clone();
            pids.push(kernel.spawn_process(&format!("ls{i}"), &args, move |ctx| {
                let program = std::sync::Arc::new(
                    symphony_lipscript::parse::parse(SCRIPT)
                        .map_err(|e| SysError::ToolFailed(e.to_string()))?,
                );
                let mut interp = Interpreter::new(program, InterpLimits::default());
                let r = interp
                    .run(ctx)
                    .map(|_| ())
                    .map_err(|e| SysError::ToolFailed(e.to_string()));
                fuel.fetch_add(interp.fuel_used(), std::sync::atomic::Ordering::Relaxed);
                r
            }));
        } else {
            pids.push(kernel.spawn_process(&format!("rs{i}"), &args, |ctx| {
                let prompt = ctx.tokenize(&ctx.args())?;
                let kv = ctx.kv_create()?;
                let mut d = ctx
                    .pred_positions(kv, &prompt, 0)?
                    .pop()
                    .ok_or(SysError::BadArgument)?;
                let mut pos = prompt.len() as u32;
                for _ in 0..MAX_TOKENS {
                    let t = d.argmax();
                    if t == ctx.eos() {
                        break;
                    }
                    ctx.emit_tokens(&[t])?;
                    d = ctx.pred(kv, &[(t, pos)])?.remove(0);
                    pos += 1;
                }
                ctx.kv_remove(kv)?;
                Ok(())
            }));
        }
    }
    let wall = std::time::Instant::now();
    kernel.run();
    let wall = wall.elapsed();

    let mut tokens = 0u64;
    let mut syscalls = 0u64;
    let mut virt = symphony_sim::Series::new();
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        assert!(rec.status.is_ok(), "{:?}", rec.status);
        tokens += rec.usage.emitted_tokens;
        syscalls += rec.usage.syscalls;
        virt.add(rec.latency().expect("exited").as_millis_f64() / rec.usage.emitted_tokens as f64);
    }
    Point {
        mode: if lipscript { "lipscript" } else { "native" }.to_string(),
        tokens,
        virtual_ms_per_token: virt.mean(),
        wall_us_per_token: wall.as_micros() as f64 / tokens.max(1) as f64,
        syscalls,
        fuel_per_token: fuel_total.load(std::sync::atomic::Ordering::Relaxed) as f64
            / tokens.max(1) as f64,
    }
}

fn main() {
    let mut table = Table::new(
        "E8 — interpreter overhead: the same generation loop, native vs LipScript",
        &["mode", "tokens", "virtual ms/token", "wall us/token", "syscalls", "fuel/token"],
    );
    let mut results = Vec::new();
    for lipscript in [false, true] {
        eprintln!("E8: lipscript={lipscript} ...");
        let p = run_mode(lipscript);
        table.row(vec![
            p.mode.clone(),
            p.tokens.to_string(),
            format!("{:.3}", p.virtual_ms_per_token),
            format!("{:.1}", p.wall_us_per_token),
            p.syscalls.to_string(),
            format!("{:.0}", p.fuel_per_token),
        ]);
        results.push(p);
    }
    table.print();
    println!("\nShape check: virtual time per token is identical (same syscalls); the");
    println!("sandbox costs host CPU only, and fuel accounting quantifies guest work.");
    write_json("exp_lipscript", &results);
}
