//! E11 — resilience under injected tool faults (`docs/RESILIENCE.md`).
//!
//! A fleet of agents interleaves generation with tool calls while the
//! kernel's fault injector fails or hangs tool attempts at a swept rate.
//! Three resilience configurations, same substrate, same seed:
//!
//! - `no-retry`: the kernel passes failures straight through; an agent
//!   whose call fails aborts its task.
//! - `retry4`: kernel-level retry, 4 attempts with exponential backoff
//!   (5 ms base) — the LIP code is unchanged.
//! - `retry4+breaker`: retries plus a per-tool circuit breaker
//!   (3 consecutive failed calls open it for 200 ms).
//!
//! Hung attempts (25% of injected faults, 20× stall) are clamped by a
//! 100 ms per-attempt timeout, so the sweep also exercises the deadline
//! machinery. Expected shape: goodput collapses with rate under
//! `no-retry`, while `retry4` holds it near 100% until the per-call
//! failure probability (rate⁴) becomes visible; retries buy that goodput
//! with latency (backoff + re-attempts) — graceful degradation, not a
//! free lunch. The breaker only engages at extreme rates, converting
//! slow repeated failure into fast `Unavailable`.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_faults`

use serde::Serialize;
use symphony::sampling::{generate, GenOpts};
use symphony::{
    BreakerPolicy, FaultPlan, Kernel, KernelConfig, Limits, RetryPolicy, SimDuration, SysError,
    ToolOutcome, ToolSpec,
};
use symphony_bench::{write_json_with_metrics, Table, TelemetryOpts};

const AGENTS: usize = 24;
const CALLS_PER_AGENT: usize = 4;
const TOOL_LATENCY: SimDuration = SimDuration::from_millis(25);
const TOOL_TIMEOUT: SimDuration = SimDuration::from_millis(100);
const SEED: u64 = 0xE11;

#[derive(Debug, Clone, Serialize)]
struct Point {
    policy: String,
    fault_rate: f64,
    ok: usize,
    total: usize,
    mean_ok_latency_ms: f64,
    injected_failures: u64,
    injected_hangs: u64,
    tool_retries: u64,
    tool_timeouts: u64,
    calls_exhausted: u64,
    breaker_trips: u64,
    breaker_rejections: u64,
}

fn run_cell(
    policy: &str,
    fault_rate: f64,
    telemetry: &TelemetryOpts,
    designated: bool,
) -> (Point, Option<symphony::MetricsSnapshot>) {
    let mut cfg = KernelConfig::paper_setup();
    cfg.seed = SEED;
    cfg.trace = false;
    cfg.telemetry = telemetry.record(designated);
    cfg.model = cfg.model.with_mean_output_tokens(1_000); // segments end by cap
    cfg.faults = FaultPlan {
        tool_fault_rate: fault_rate,
        tool_hang_fraction: 0.25,
        tool_stall_factor: 20.0,
        ..FaultPlan::default()
    };
    match policy {
        "no-retry" => {}
        "retry4" => cfg.tool_retry = Some(RetryPolicy::exponential(4, SimDuration::from_millis(5))),
        "retry4+breaker" => {
            cfg.tool_retry = Some(RetryPolicy::exponential(4, SimDuration::from_millis(5)));
            cfg.breaker = Some(BreakerPolicy::new(3, SimDuration::from_millis(200)));
        }
        other => panic!("unknown policy {other}"),
    }
    let mut kernel = Kernel::new(cfg);
    kernel.register_tool(
        "api",
        ToolSpec::fixed(TOOL_LATENCY, |args| {
            ToolOutcome::Ok(format!("api result for {args}"))
        }),
    );
    let limits = Limits {
        tool_timeout: Some(TOOL_TIMEOUT),
        ..Limits::default()
    };
    let mut pids = Vec::new();
    for a in 0..AGENTS {
        let pid = kernel.spawn_process_with_limits(&format!("agent{a}"), "", limits, |ctx| {
            let opts = GenOpts {
                max_tokens: 8,
                temperature: 0.0,
                emit: false,
                ..Default::default()
            };
            let kv = ctx.kv_create()?;
            let mut next = ctx.tokenize("an agent plan with several lookups")?;
            for i in 0..CALLS_PER_AGENT {
                generate(ctx, kv, &next, &opts)?;
                // Any tool failure — Fault, Timeout, Unavailable — aborts
                // the task: resilience lives in the kernel, not the LIP.
                let result = ctx.call_tool("api", &format!("call {i}"))?;
                next = ctx.tokenize(&result)?;
            }
            generate(ctx, kv, &next, &opts)?;
            Ok::<(), SysError>(())
        });
        pids.push(pid);
    }
    kernel.run();
    let (mut ok, mut lat_sum) = (0usize, 0.0f64);
    for &pid in &pids {
        let rec = kernel.record(pid).expect("spawned above");
        if rec.status.is_ok() {
            ok += 1;
            lat_sum += rec.latency().expect("exited").as_millis_f64();
        }
    }
    let fs = kernel.fault_stats();
    let rs = kernel.resilience_stats();
    let snap = telemetry.export_designated(&kernel, designated);
    let point = Point {
        policy: policy.to_string(),
        fault_rate,
        ok,
        total: AGENTS,
        mean_ok_latency_ms: if ok > 0 { lat_sum / ok as f64 } else { f64::NAN },
        injected_failures: fs.tool_failures,
        injected_hangs: fs.tool_hangs,
        tool_retries: rs.tool_retries,
        tool_timeouts: rs.tool_timeouts,
        calls_exhausted: rs.tool_calls_exhausted,
        breaker_trips: rs.breaker_trips,
        breaker_rejections: rs.breaker_rejections,
    };
    (point, snap)
}

fn main() {
    let opts = TelemetryOpts::from_args();
    let policies = ["no-retry", "retry4", "retry4+breaker"];
    let rates = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8];
    let designated_rate = 0.2; // mid-sweep: faults fire, goodput still high
    let mut results = Vec::new();
    let mut captured: Option<symphony::MetricsSnapshot> = None;
    let mut table = Table::new(
        "E11 — tool-fault resilience: goodput / mean latency (24 agents × 4 calls)",
        &["fault rate", "no-retry", "retry4", "retry4+breaker", "retries", "timeouts", "trips/rej"],
    );
    for &rate in &rates {
        eprintln!("E11: fault rate {rate} ...");
        let pts: Vec<Point> = policies
            .iter()
            .map(|p| {
                // The designated telemetry run: retry4+breaker mid-sweep.
                let designated = *p == "retry4+breaker" && rate == designated_rate;
                let (pt, snap) = run_cell(p, rate, &opts, designated);
                if let Some(s) = snap {
                    captured = Some(s);
                }
                pt
            })
            .collect();
        let cell = |p: &Point| {
            if p.ok > 0 {
                format!("{}/{} {:.0}ms", p.ok, p.total, p.mean_ok_latency_ms)
            } else {
                format!("{}/{} —", p.ok, p.total)
            }
        };
        table.row(vec![
            format!("{rate:.2}"),
            cell(&pts[0]),
            cell(&pts[1]),
            cell(&pts[2]),
            pts[2].tool_retries.to_string(),
            pts[2].tool_timeouts.to_string(),
            format!("{}/{}", pts[2].breaker_trips, pts[2].breaker_rejections),
        ]);
        results.extend(pts);
    }
    table.print();
    println!(
        "\nShape check: retry4 holds goodput while no-retry decays ~(1-rate)^{CALLS_PER_AGENT}; \
         the price is latency (backoff + re-attempts). The breaker engages only at extreme rates."
    );
    let metrics = captured.as_ref().filter(|_| opts.metrics);
    write_json_with_metrics("exp_faults", &results, metrics);
}
