//! E15 — per-program observability: causal tracing, critical-path phase
//! attribution, and why per-pred metrics mislead.
//!
//! Every run records causal telemetry (`KernelConfig::causal`): spawn,
//! IPC send→recv, join, tool and scheduler-dispatch edges tie each span to
//! the one that caused it, so the event stream reconstructs into one span
//! DAG per root program. The critical-path walk then attributes each
//! program's end-to-end latency into exclusive phase buckets (queue-wait,
//! prefill, decode, KV swap-in/out, tool, ipc-blocked, recovery-replay,
//! other) that sum exactly to its wall-clock.
//!
//! Two workloads:
//!
//! - `fleet`: a coordinator plus worker agents. Workers prefill a plan,
//!   fetch evidence on a helper thread (spawn/join edges), decode, and
//!   report to the coordinator over IPC (send→recv edges across
//!   processes). The coordinator folds each report in and decodes a
//!   summary — its critical path runs *through* the workers.
//! - `rag`: long retrieval prefill, KV swapped out across a rerank tool
//!   call and swapped back in for the answer decode.
//!
//! The headline: under contended admission, per-pred p99 and per-program
//! p99 can crown *different* scheduler configs — request-level metrics
//! optimise the syscall, program-level metrics optimise what the client
//! actually waits for. The experiment prints both rankings side by side.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_profile`
//! (`--smoke` for the CI variant; `--trace <path>` writes a Perfetto
//! trace *with flow arrows* of the designated run; `--metrics` folds the
//! metrics snapshot into the JSON report. The collapsed-stack flamegraph
//! input for the designated run is always written to
//! `results/exp_profile.folded`.)

use serde::Serialize;
use symphony::{
    analyze, build_forest, collapsed_stacks, render_report, ContinuousConfig, Ctx, ExecMode,
    Kernel, KernelConfig, MetricsSnapshot, MlfqConfig, QueueDiscipline, SimDuration, SimTime,
    SysError, ToolOutcome, ToolSpec, PHASES,
};
use symphony_bench::{write_json_with_metrics, ExpArgs, Table, TelemetryOpts};
use symphony_sim::{PoissonProcess, Rng, Series};

#[derive(Debug, Clone, Copy)]
struct Scale {
    smoke: bool,
    chunk: usize,
    batch_cap: usize,
    workers: usize,
    worker_prompt: usize,
    worker_decode: usize,
    coord_prompt: usize,
    coord_decode: usize,
    obs_tokens: usize,
    fleet_rate_rps: f64,
    rag_requests: usize,
    rag_prompt: usize,
    rag_decode: usize,
    rag_rate_rps: f64,
    tool_latency: SimDuration,
}

impl Scale {
    fn full() -> Self {
        Scale {
            smoke: false,
            chunk: 256,
            batch_cap: 8,
            workers: 24,
            worker_prompt: 512,
            worker_decode: 24,
            coord_prompt: 256,
            coord_decode: 32,
            obs_tokens: 16,
            fleet_rate_rps: 12.0,
            rag_requests: 16,
            rag_prompt: 1536,
            rag_decode: 32,
            rag_rate_rps: 6.0,
            tool_latency: SimDuration::from_millis(120),
        }
    }

    fn smoke() -> Self {
        Scale {
            smoke: true,
            chunk: 8,
            batch_cap: 2,
            workers: 4,
            worker_prompt: 32,
            worker_decode: 4,
            coord_prompt: 16,
            coord_decode: 6,
            obs_tokens: 4,
            fleet_rate_rps: 200.0,
            rag_requests: 3,
            rag_prompt: 48,
            rag_decode: 4,
            rag_rate_rps: 100.0,
            tool_latency: SimDuration::from_millis(5),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Fleet,
    Rag,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Fleet => "fleet",
            Workload::Rag => "rag",
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct Point {
    workload: String,
    mode: String,
    programs: usize,
    /// Per-program end-to-end latency quantiles (spawn → exit).
    prog_p50_ms: f64,
    prog_p99_ms: f64,
    /// Per-`pred`-syscall latency quantiles (enter → exit, queue included).
    pred_p50_ms: f64,
    pred_p99_ms: f64,
    /// Total ns per phase bucket summed across programs, `PHASES` order.
    phase_ns: Vec<(String, u64)>,
    /// Minimum attributed fraction across programs (1.0 by construction;
    /// CI gates on >= 0.95).
    min_coverage: f64,
    spans: usize,
    events_dropped: u64,
}

/// Deterministic synthetic token stream (stands in for tokenised text).
fn tokens(seed: usize, n: usize, start_pos: u32) -> Vec<(u32, u32)> {
    (0..n)
        .map(|j| (1 + ((seed * 31 + j * 7) % 800) as u32, start_pos + j as u32))
        .collect()
}

/// One fleet worker: prefill a plan, fetch evidence on a helper thread
/// (spawn/join causal edges), decode, and report to the coordinator over
/// IPC (a cross-process send→recv edge).
fn worker_lip(ctx: &mut Ctx, seed: usize, s: Scale) -> Result<(), SysError> {
    let kv = ctx.kv_create()?;
    let prompt = tokens(seed, s.worker_prompt, 0);
    let mut dist = ctx.pred(kv, &prompt)?.pop().ok_or(SysError::BadArgument)?;
    let mut pos = s.worker_prompt as u32;
    let helper = ctx.spawn(move |hctx| {
        hctx.call_tool("search", &format!("evidence {seed}"))?;
        Ok(())
    })?;
    for _ in 0..s.worker_decode {
        let tok = dist.argmax();
        dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
        pos += 1;
    }
    ctx.join(helper)?;
    let coord = ctx.lookup_process("coordinator")?.ok_or(SysError::NotFound)?;
    ctx.send_msg(coord, &format!("report {seed}: {pos} tokens"))?;
    ctx.kv_remove(kv)?;
    Ok(())
}

/// The coordinator: recv one report per worker, fold it into its context,
/// then decode a summary. Its e2e latency is dominated by waiting on the
/// slowest worker — which only a critical path that crosses the IPC edge
/// can attribute.
fn coordinator_lip(ctx: &mut Ctx, s: Scale) -> Result<(), SysError> {
    let workers: usize = ctx.args().parse().map_err(|_| SysError::BadArgument)?;
    let kv = ctx.kv_create()?;
    let prompt = tokens(9_999, s.coord_prompt, 0);
    let mut dist = ctx.pred(kv, &prompt)?.pop().ok_or(SysError::BadArgument)?;
    let mut pos = s.coord_prompt as u32;
    for _ in 0..workers {
        let msg = ctx.recv_msg()?;
        let obs = tokens(msg.data.len(), s.obs_tokens, pos);
        dist = ctx.pred(kv, &obs)?.pop().ok_or(SysError::BadArgument)?;
        pos += s.obs_tokens as u32;
    }
    for _ in 0..s.coord_decode {
        let tok = dist.argmax();
        dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
        pos += 1;
    }
    ctx.emit(&format!("summary over {workers} reports"))?;
    ctx.kv_remove(kv)?;
    Ok(())
}

/// The RAG LIP: long retrieval prefill, KV swapped out across the rerank
/// tool call (freeing HBM), swapped back in for the answer decode.
fn rag_lip(ctx: &mut Ctx, seed: usize, s: Scale) -> Result<(), SysError> {
    let kv = ctx.kv_create()?;
    let prompt = tokens(seed, s.rag_prompt, 0);
    let mut dist = ctx.pred(kv, &prompt)?.pop().ok_or(SysError::BadArgument)?;
    let mut pos = s.rag_prompt as u32;
    ctx.kv_swap_out(kv)?;
    ctx.call_tool("rerank", &format!("query {seed}"))?;
    ctx.kv_swap_in(kv)?;
    for _ in 0..s.rag_decode {
        let tok = dist.argmax();
        dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
        pos += 1;
    }
    ctx.kv_remove(kv)?;
    Ok(())
}

struct RunOutput {
    point: Point,
    /// Per-program breakdowns (critical-path report / flamegraph input).
    breakdowns: Vec<symphony::LatencyBreakdown>,
    flow_trace: Option<String>,
    metrics: MetricsSnapshot,
}

fn run_point(
    mode_name: &str,
    exec: ExecMode,
    batch_cap: Option<usize>,
    workload: Workload,
    s: Scale,
    want_flow_trace: bool,
) -> RunOutput {
    let mut cfg = if s.smoke {
        KernelConfig::for_tests()
    } else {
        KernelConfig::paper_setup()
    };
    cfg.exec = exec;
    if let Some(cap) = batch_cap {
        cfg.max_batch = cap;
    }
    cfg.trace = false;
    // Observability is the experiment: every run records causal telemetry.
    // Recording never changes results — the bus only observes.
    cfg.telemetry = true;
    cfg.causal = true;
    let mut kernel = Kernel::new(cfg);
    kernel.register_tool(
        "search",
        ToolSpec::fixed(s.tool_latency, |args| ToolOutcome::Ok(format!("hits for {args}"))),
    );
    kernel.register_tool(
        "rerank",
        ToolSpec::fixed(s.tool_latency, |args| ToolOutcome::Ok(format!("ranked {args}"))),
    );

    let mut rng = Rng::new(0xE15);
    let mut at = SimTime::ZERO;
    match workload {
        Workload::Fleet => {
            // The coordinator arrives first so workers can look it up.
            kernel.spawn_process("coordinator", &s.workers.to_string(), move |ctx| {
                coordinator_lip(ctx, s)
            });
            let arrivals = PoissonProcess::new(s.fleet_rate_rps);
            for i in 0..s.workers {
                at += arrivals.next_gap(&mut rng);
                kernel.schedule_process(at, &format!("worker{i}"), "", move |ctx| {
                    worker_lip(ctx, i, s)
                });
            }
        }
        Workload::Rag => {
            let arrivals = PoissonProcess::new(s.rag_rate_rps);
            for i in 0..s.rag_requests {
                at += arrivals.next_gap(&mut rng);
                kernel.schedule_process(at, &format!("rag{i}"), "", move |ctx| {
                    rag_lip(ctx, i, s)
                });
            }
        }
    }
    kernel.run();
    for rec in kernel.records() {
        assert!(rec.status.is_ok(), "{mode_name}/{}: {:?}", rec.name, rec.status);
    }
    assert_eq!(kernel.events_dropped(), 0, "unbounded bus must not drop");

    // Reconstruct the span DAG and attribute every program's wall-clock.
    let forest = build_forest(kernel.telemetry_events());
    let breakdowns = analyze(&forest);
    assert_eq!(breakdowns.len(), forest.programs.len());
    let mut prog = Series::new();
    let mut phase_totals = [0u64; PHASES.len()];
    let mut min_coverage = f64::INFINITY;
    for b in &breakdowns {
        prog.add(b.total_ns as f64 / 1e6);
        for (i, phase) in PHASES.iter().enumerate() {
            phase_totals[i] += b.get(*phase);
        }
        min_coverage = min_coverage.min(b.coverage());
        // Acceptance: buckets partition e2e latency (within 1%; exact by
        // construction here).
        let diff = b.attributed_ns().abs_diff(b.total_ns);
        assert!(
            diff * 100 <= b.total_ns.max(1),
            "{mode_name}/{}: phases sum {} vs e2e {}",
            b.name,
            b.attributed_ns(),
            b.total_ns
        );
    }
    let mut pred = Series::new();
    for p in &forest.programs {
        for t in &p.threads {
            for sp in &t.spans {
                if sp.name == "pred" {
                    pred.add((sp.end.as_nanos() - sp.start.as_nanos()) as f64 / 1e6);
                }
            }
        }
    }
    let prog_q = prog.percentiles(&[0.50, 0.99]);
    let pred_q = pred.percentiles(&[0.50, 0.99]);
    let point = Point {
        workload: workload.name().to_string(),
        mode: mode_name.to_string(),
        programs: forest.programs.len(),
        prog_p50_ms: prog_q[0].unwrap_or(0.0),
        prog_p99_ms: prog_q[1].unwrap_or(0.0),
        pred_p50_ms: pred_q[0].unwrap_or(0.0),
        pred_p99_ms: pred_q[1].unwrap_or(0.0),
        phase_ns: PHASES
            .iter()
            .enumerate()
            .map(|(i, p)| (p.label().to_string(), phase_totals[i]))
            .collect(),
        min_coverage,
        spans: forest.span_count(),
        events_dropped: kernel.events_dropped(),
    };
    RunOutput {
        point,
        breakdowns,
        flow_trace: want_flow_trace.then(|| kernel.export_chrome_trace_with_flows()),
        metrics: kernel.metrics_snapshot(),
    }
}

fn main() {
    let args = ExpArgs::from_args();
    let smoke = args.smoke;
    let opts: TelemetryOpts = args.telemetry;
    let s = if smoke { Scale::smoke() } else { Scale::full() };

    let chunked_fifo = ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: Some(s.chunk),
        discipline: QueueDiscipline::Fifo,
    });
    let chunked_mlfq = ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: Some(s.chunk),
        discipline: QueueDiscipline::Mlfq(MlfqConfig::default()),
    });
    // Capped admission slots so the queue discipline has a queue to order.
    let modes: Vec<(&str, ExecMode, Option<usize>)> = vec![
        ("continuous", ExecMode::Continuous(ContinuousConfig {
            chunk_tokens: None,
            discipline: QueueDiscipline::Fifo,
        }), Some(s.batch_cap)),
        ("cont+chunked", chunked_fifo, Some(s.batch_cap)),
        ("program-aware", chunked_mlfq, Some(s.batch_cap)),
    ];

    let mut results: Vec<Point> = Vec::new();
    let mut captured: Option<MetricsSnapshot> = None;
    let mut table = Table::new(
        "E15 — per-program observability: critical-path phase attribution",
        &[
            "workload",
            "mode",
            "progs",
            "prog p50",
            "prog p99",
            "pred p50",
            "pred p99",
            "top phase",
            "coverage",
        ],
    );
    for workload in [Workload::Fleet, Workload::Rag] {
        for &(name, exec, cap) in &modes {
            eprintln!("E15: {} / {name} ...", workload.name());
            // The designated run: program-aware on the fleet — the shape
            // the causal layer exists for (IPC + spawn edges).
            let designated = name == "program-aware" && workload == Workload::Fleet;
            let out = run_point(name, exec, cap, workload, s, designated);
            if designated {
                if opts.wants_trace() {
                    opts.write_trace(out.flow_trace.as_deref().unwrap_or_default());
                }
                std::fs::create_dir_all("results").ok();
                let folded = collapsed_stacks(&out.breakdowns);
                if let Err(e) = std::fs::write("results/exp_profile.folded", &folded) {
                    eprintln!("warn: write results/exp_profile.folded: {e}");
                } else {
                    eprintln!("wrote results/exp_profile.folded");
                }
                if smoke {
                    // The byte-stable report for tiny runs (golden-sized).
                    eprintln!("{}", render_report(&out.breakdowns));
                }
                captured = Some(out.metrics);
            }
            let p = out.point;
            let top = p
                .phase_ns
                .iter()
                .max_by_key(|(_, ns)| *ns)
                .map(|(l, _)| l.clone())
                .unwrap_or_default();
            table.row(vec![
                p.workload.clone(),
                p.mode.clone(),
                p.programs.to_string(),
                format!("{:.1}ms", p.prog_p50_ms),
                format!("{:.1}ms", p.prog_p99_ms),
                format!("{:.2}ms", p.pred_p50_ms),
                format!("{:.2}ms", p.pred_p99_ms),
                top,
                format!("{:.0}%", p.min_coverage * 100.0),
            ]);
            results.push(p);
        }
    }
    table.print();

    // Aggregate phase mix for the fleet workload, per mode: where the
    // programs' wall-clock actually went.
    println!("\nPhase mix (fleet, % of attributed ns):");
    for p in results.iter().filter(|p| p.workload == "fleet") {
        let total: u64 = p.phase_ns.iter().map(|(_, ns)| ns).sum();
        let mix: Vec<String> = p
            .phase_ns
            .iter()
            .filter(|(_, ns)| *ns > 0)
            .map(|(l, ns)| format!("{l} {}%", (ns * 100) / total.max(1)))
            .collect();
        println!("  {:<14} {}", p.mode, mix.join("  "));
    }

    // The headline: which config is "best" depends on the metric's unit
    // of account. Rank by per-pred p99 (request-level view) and by
    // per-program p99 (what the client waits for) side by side.
    for workload in ["fleet", "rag"] {
        let mut by_pred: Vec<&Point> =
            results.iter().filter(|p| p.workload == workload).collect();
        let mut by_prog = by_pred.clone();
        by_pred.sort_by(|a, b| a.pred_p99_ms.total_cmp(&b.pred_p99_ms));
        by_prog.sort_by(|a, b| a.prog_p99_ms.total_cmp(&b.prog_p99_ms));
        println!(
            "\nRanking ({workload}): per-pred p99 says {:?}; per-program p99 says {:?}",
            by_pred.iter().map(|p| p.mode.as_str()).collect::<Vec<_>>(),
            by_prog.iter().map(|p| p.mode.as_str()).collect::<Vec<_>>(),
        );
        if by_pred[0].mode != by_prog[0].mode {
            println!(
                "  -> they disagree: {} optimises the syscall, {} optimises the program.",
                by_pred[0].mode, by_prog[0].mode
            );
        }
    }

    // Every program's critical path must cover (at least) 95% of its
    // wall-clock; the walk partitions exactly, so this is a regression
    // tripwire rather than a tolerance.
    for p in &results {
        assert!(
            p.min_coverage >= 0.95,
            "{}/{}: critical path covers only {:.1}% of wall-clock",
            p.workload,
            p.mode,
            p.min_coverage * 100.0
        );
        assert_eq!(p.events_dropped, 0);
    }
    println!(
        "\nShape check: every program's phase buckets partition its e2e latency\n\
         (coverage 100%), and the two tails rank scheduler configs by different\n\
         units of account — the program-level view is the one a client feels."
    );
    let metrics = captured.as_ref().filter(|_| opts.metrics);
    write_json_with_metrics("exp_profile", &results, metrics);
}
