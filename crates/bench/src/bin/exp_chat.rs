//! E9 — §2.1 multi-round chat: retained KV vs per-turn recomputation.
//!
//! "In scenarios involving multi-round prompting, maintaining the KV cache
//! from prior interactions can significantly decrease latency. However,
//! users lack the ability to manage the KV cache retention." A Symphony
//! chat LIP simply keeps its KV file alive across user think time; the
//! prompt-serving model re-prefills the growing transcript every turn.
//!
//! Expected shape: retained per-turn latency stays flat as the
//! conversation grows; recompute latency grows with transcript length.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_chat`

use serde::Serialize;
use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig, SysError};
use symphony_bench::{write_json, Table};
use symphony_sim::SimDuration;
use symphony_workloads::ChatWorkload;

const SESSIONS: usize = 10;
const ANSWER_TOKENS: usize = 32;

#[derive(Debug, Clone, Serialize)]
struct Point {
    mode: String,
    round: usize,
    mean_turn_latency_ms: f64,
    samples: usize,
}

fn sessions() -> Vec<symphony_workloads::ChatSession> {
    let mut wl = ChatWorkload::new(8.0, SimDuration::from_secs(8), 150, 0xC4A7);
    (0..SESSIONS).map(|_| wl.next_session()).collect()
}

/// Runs all sessions in one kernel; returns per-round turn latencies in ms.
fn run(retain: bool) -> Vec<Vec<f64>> {
    let mut cfg = KernelConfig::paper_setup();
    cfg.model = cfg.model.with_mean_output_tokens(ANSWER_TOKENS as u32);
    cfg.trace = false;
    let mut kernel = Kernel::new(cfg);
    let mut pids = Vec::new();
    for (i, session) in sessions().into_iter().enumerate() {
        pids.push(kernel.spawn_process(&format!("chat{i}"), "", move |ctx| {
            let opts = GenOpts {
                max_tokens: 96,
                temperature: 0.0,
                emit: false,
                ..Default::default()
            };
            let mut latencies = Vec::new();
            if retain {
                // One KV file for the whole conversation.
                let kv = ctx.kv_create()?;
                for (turn, gap) in session.turns.iter().zip(&session.gaps) {
                    ctx.sleep(*gap)?;
                    let t0 = ctx.now()?;
                    let user = ctx.tokenize(&format!("\nuser: {turn}\nassistant:"))?;
                    generate(ctx, kv, &user, &opts)?;
                    latencies.push(ctx.now()?.duration_since(t0).as_millis_f64());
                }
                ctx.kv_remove(kv)?;
            } else {
                // Stateless: re-prefill the whole transcript each turn.
                let mut transcript: Vec<u32> = Vec::new();
                for (turn, gap) in session.turns.iter().zip(&session.gaps) {
                    ctx.sleep(*gap)?;
                    let t0 = ctx.now()?;
                    transcript.extend(ctx.tokenize(&format!("\nuser: {turn}\nassistant:"))?);
                    let kv = ctx.kv_create()?;
                    let out = generate(ctx, kv, &transcript, &opts)?;
                    transcript.extend(&out.tokens);
                    ctx.kv_remove(kv)?;
                    latencies.push(ctx.now()?.duration_since(t0).as_millis_f64());
                }
            }
            let line: Vec<String> = latencies.iter().map(|l| format!("{l:.3}")).collect();
            ctx.emit(&line.join(","))?;
            Ok(())
        }));
    }
    kernel.run();

    let mut per_round: Vec<Vec<f64>> = Vec::new();
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        assert!(rec.status.is_ok(), "{:?}", rec.status);
        for (round, lat) in rec.output.split(',').enumerate() {
            let lat: f64 = lat.parse().map_err(|_| SysError::BadArgument).unwrap();
            if per_round.len() <= round {
                per_round.push(Vec::new());
            }
            per_round[round].push(lat);
        }
    }
    per_round
}

fn main() {
    eprintln!("E9: retained ...");
    let retained = run(true);
    eprintln!("E9: recompute ...");
    let recompute = run(false);

    let mut table = Table::new(
        "E9 — multi-round chat: per-turn latency by round (10 sessions)",
        &["round", "retained", "recompute", "sessions alive"],
    );
    let mut results = Vec::new();
    let rounds = retained.len().min(recompute.len()).min(8);
    for r in 0..rounds {
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let (a, b) = (mean(&retained[r]), mean(&recompute[r]));
        table.row(vec![
            (r + 1).to_string(),
            format!("{a:.0}ms"),
            format!("{b:.0}ms"),
            retained[r].len().to_string(),
        ]);
        results.push(Point {
            mode: "retained".into(),
            round: r + 1,
            mean_turn_latency_ms: a,
            samples: retained[r].len(),
        });
        results.push(Point {
            mode: "recompute".into(),
            round: r + 1,
            mean_turn_latency_ms: b,
            samples: recompute[r].len(),
        });
    }
    table.print();
    println!("\nShape check: retained latency is ~flat across rounds; recompute grows with");
    println!("the transcript (each turn re-prefills everything said so far).");
    write_json("exp_chat", &results);
}
