//! E16 — serving over the wire: sessions × RTT × admission.
//!
//! The paper's serving claim, measured where it matters — at the client.
//! A deterministic loopback replay drives the SYMR front door
//! (`symphony-serve`) with agent and RAG programs, simulating the
//! client↔server round-trip through the protocol's `not_before_ns`/`at_ns`
//! fields, and reports *client-observed* TTFT and per-program latency:
//! every number includes the half-RTT each way that a server-side metric
//! never sees.
//!
//! Three axes:
//!
//! - **sessions** — offered concurrency, spread round-robin over 4
//!   connections and 2 tenants;
//! - **RTT** — simulated network round-trip, showing how the wire's
//!   streaming design keeps TTFT ≈ queue + prefill + RTT rather than
//!   end-to-end + RTT;
//! - **admission** — per-tenant session quota at the door: `open` admits
//!   everything (latency grows with the backlog), `quota=8` sheds excess
//!   with typed `QuotaExceeded` errors and keeps the admitted tail flat.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_serve`
//! (`--smoke` for the CI variant; `--trace <path>` exports a Perfetto
//! trace of the designated run with the serve track's connection/session
//! spans; `--metrics` folds the unified snapshot — including the
//! `serve.*` counters — into the JSON report.)

use serde::Serialize;
use symphony::{KernelConfig, SimDuration};
use symphony_bench::{write_json_with_metrics, ExpArgs, Table};
use symphony_serve::replay::{run_replay_on, standard_kernel};
use symphony_serve::{ReplaySpec, ServeConfig, ServerCore, WorkloadKind};

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    sessions: usize,
    rtt_ms: u64,
    admission: String,
    completed: usize,
    shed: usize,
    ttft_p50_ms: f64,
    ttft_p99_ms: f64,
    latency_p50_ms: f64,
    latency_p99_ms: f64,
    streamed_tokens: u64,
}

fn ms(ns: Option<u64>) -> f64 {
    ns.map(|n| n as f64 / 1e6).unwrap_or(f64::NAN)
}

fn run_cell(
    workload: WorkloadKind,
    sessions: usize,
    rtt_ms: u64,
    quota: Option<usize>,
    telemetry: bool,
) -> (Row, ServerCore) {
    let spec = ReplaySpec {
        workload,
        sessions,
        conns: 4,
        tenants: 2,
        rtt: SimDuration::from_millis(rtt_ms),
        mean_gap: SimDuration::from_millis(2),
        seed: 0xe16,
        drop_conns: 0,
        slow_conns: 0,
        hostile_every: 0,
    };
    let mut serve_cfg = ServeConfig::default();
    serve_cfg.tenant_session_quota = quota.unwrap_or(usize::MAX);
    let mut kcfg = KernelConfig::for_tests();
    kcfg.telemetry = telemetry;
    let core = ServerCore::new(standard_kernel(kcfg), serve_cfg);
    let (report, core) = run_replay_on(&spec, core);
    let shed: usize = report.sheds().values().sum();
    let row = Row {
        workload: match workload {
            WorkloadKind::Agent => "agent".into(),
            WorkloadKind::Rag => "rag".into(),
            WorkloadKind::MixedCost => "mixed-cost".into(),
        },
        sessions,
        rtt_ms,
        admission: quota.map(|q| format!("quota={q}")).unwrap_or("open".into()),
        completed: report.completed(),
        shed,
        ttft_p50_ms: ms(report.ttft_p(50.0)),
        ttft_p99_ms: ms(report.ttft_p(99.0)),
        latency_p50_ms: ms(report.latency_p(50.0)),
        latency_p99_ms: ms(report.latency_p(99.0)),
        streamed_tokens: report.streamed_tokens(),
    };
    (row, core)
}

fn main() {
    let args = ExpArgs::from_args();
    let (session_axis, rtt_axis): (Vec<usize>, Vec<u64>) = if args.smoke {
        (vec![12], vec![20])
    } else {
        (vec![16, 48, 96], vec![2, 20, 80])
    };
    let quotas: Vec<Option<usize>> = vec![None, Some(8)];

    let mut table = Table::new(
        "E16 — client-observed serving latency (agent workload)",
        &[
            "sessions",
            "rtt",
            "admission",
            "done",
            "shed",
            "ttft p50",
            "ttft p99",
            "lat p50",
            "lat p99",
        ],
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut designated = None;
    let last = (
        *session_axis.last().unwrap_or(&0),
        *rtt_axis.last().unwrap_or(&0),
    );
    for &sessions in &session_axis {
        for &rtt_ms in &rtt_axis {
            for quota in &quotas {
                // The designated run (trace/metrics export) is the most
                // loaded quota cell of the sweep.
                let is_designated = sessions == last.0 && rtt_ms == last.1 && quota.is_some();
                let (row, core) = run_cell(
                    WorkloadKind::Agent,
                    sessions,
                    rtt_ms,
                    *quota,
                    args.telemetry.record(is_designated),
                );
                table.row(vec![
                    row.sessions.to_string(),
                    format!("{} ms", row.rtt_ms),
                    row.admission.clone(),
                    row.completed.to_string(),
                    row.shed.to_string(),
                    format!("{:.2} ms", row.ttft_p50_ms),
                    format!("{:.2} ms", row.ttft_p99_ms),
                    format!("{:.2} ms", row.latency_p50_ms),
                    format!("{:.2} ms", row.latency_p99_ms),
                ]);
                rows.push(row);
                if is_designated {
                    designated = args.telemetry.export_designated(core.kernel(), true);
                }
            }
        }
    }
    table.print();

    let mut rag_table = Table::new(
        "E16 — RAG over shared prefixes, same sweep midpoint",
        &[
            "sessions",
            "rtt",
            "admission",
            "done",
            "shed",
            "ttft p99",
            "lat p99",
        ],
    );
    let rag_sessions = if args.smoke { 12 } else { 48 };
    for quota in &quotas {
        let (row, _) = run_cell(WorkloadKind::Rag, rag_sessions, 20, *quota, false);
        rag_table.row(vec![
            row.sessions.to_string(),
            format!("{} ms", row.rtt_ms),
            row.admission.clone(),
            row.completed.to_string(),
            row.shed.to_string(),
            format!("{:.2} ms", row.ttft_p99_ms),
            format!("{:.2} ms", row.latency_p99_ms),
        ]);
        rows.push(row);
    }
    rag_table.print();

    println!(
        "\nReading: TTFT tracks RTT + queue + prefill, not program length — streaming \
         starts while the program runs. Under load, `open` admission stretches the \
         latency tail; `quota=8` sheds the excess at the door with typed errors and \
         keeps the admitted p99 flat. All numbers are client-observed."
    );
    write_json_with_metrics("exp_serve", &rows, designated.as_ref());
}
