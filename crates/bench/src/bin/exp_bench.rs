//! BENCH — the raw-speed trajectory harness (ROADMAP item 4).
//!
//! Micro benchmarks time the individual hot structures (event queue, KVFS
//! operations, MLFQ dispatch, journal encode/replay) and macro benchmarks
//! time whole serving runs (a shared-prompt agent fleet on the continuous
//! executor, the Fig-3-shaped RAG program on the batch executor), reporting
//! real ops/sec, `sim.events_per_sec` and p99 wall-clock per scenario.
//!
//! Results land in `results/BENCH_tier1.json`, keyed by mode (`full` or
//! `--smoke`), so successive PRs accumulate a perf trajectory in-repo. The
//! `--check <baseline>` gate re-reads a checked-in baseline and fails the
//! run when any scenario regresses by more than 20% — normalized against a
//! fixed arithmetic calibration loop measured in the same process, so the
//! gate tracks *relative* speed and survives moving between machines. Every
//! scenario reports its best-of-N repetition: the work is deterministic, so
//! the minimum wall time is the signal and the spread is host noise.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_bench [-- --smoke]`
//! Gate: `... --bin exp_bench -- --smoke --check results/BENCH_tier1.json`

use std::time::Instant;

use serde::Serialize;
use symphony::sampling::{self, GenOpts};
use symphony::{
    BatchPolicy, ContinuousConfig, Ctx, ExecMode, Kernel, KernelConfig, MlfqConfig, Mode,
    ProgramQueue, QueueDiscipline, SimDuration, SimTime, SysError, ToolOutcome, ToolSpec,
};
use symphony_bench::Table;
use symphony_kvfs::{KvEntry, KvStore, KvStoreConfig, OwnerId};
use symphony_sim::{EventQueue, Rng};

/// Regression tolerance of the `--check` gate: a scenario may lose at most
/// this fraction of its baseline (calibration-normalized) throughput.
const GATE_TOLERANCE: f64 = 0.20;

#[derive(Debug, Clone, Serialize)]
struct MicroResult {
    name: String,
    /// Operations performed (the unit is scenario-specific and stable).
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct MacroResult {
    name: String,
    runs: usize,
    completed: usize,
    /// Kernel events processed per run (identical across runs — the
    /// simulation is deterministic; only the wall clock varies).
    events: u64,
    /// Generated tokens per run.
    tokens: u64,
    p50_wall_ms: f64,
    p99_wall_ms: f64,
    events_per_sec: f64,
    tokens_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ModeResults {
    /// Ops/sec of the fixed arithmetic calibration loop: the
    /// machine-speed denominator the regression gate divides by.
    calibration_ops_per_sec: f64,
    micro: Vec<MicroResult>,
    r#macro: Vec<MacroResult>,
}

// ---- timing helpers -------------------------------------------------------

fn secs(start: Instant) -> f64 {
    start.elapsed().as_secs_f64().max(1e-9)
}

/// How many times each micro scenario repeats; the fastest repetition is
/// reported. Host noise (a busy neighbour, a scheduler hiccup) only ever
/// slows a run down, so the minimum wall time is the signal and everything
/// above it is interference — best-of-N keeps the `--check` gate from
/// tripping on a loaded machine.
const MICRO_REPS: usize = 3;

/// Times `f` (which reports how many operations it performed), keeping the
/// fastest of [`MICRO_REPS`] repetitions.
fn time_micro(name: &str, f: impl Fn() -> u64) -> MicroResult {
    let mut best: Option<MicroResult> = None;
    for _ in 0..MICRO_REPS {
        let start = Instant::now();
        let ops = f();
        let wall = secs(start);
        let r = MicroResult {
            name: name.to_string(),
            ops,
            wall_ms: wall * 1e3,
            ops_per_sec: ops as f64 / wall,
        };
        if best.as_ref().is_none_or(|b| r.ops_per_sec > b.ops_per_sec) {
            best = Some(r);
        }
    }
    best.expect("MICRO_REPS > 0")
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

// ---- calibration ----------------------------------------------------------

/// A fixed integer workload (FNV-1a over a counter stream). Pure ALU work
/// with no allocation: its ops/sec measures the machine, not the codebase,
/// so `bench / calibration` is a machine-independent speed ratio.
fn calibration() -> MicroResult {
    time_micro("calibration", || {
        let n: u64 = 40_000_000;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..n {
            h ^= i;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        std::hint::black_box(h);
        n
    })
}

// ---- micro: event queue ---------------------------------------------------

/// Schedule/pop cycles through the DES heap with a live horizon of `live`
/// events, mimicking a kernel run (every pop schedules a successor).
fn micro_event_queue(rounds: u64, live: u64) -> MicroResult {
    time_micro("event_queue", || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = Rng::new(0xE7E7);
        for i in 0..live {
            q.schedule(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
        }
        let mut ops = live;
        for _ in 0..rounds {
            let Some((t, v)) = q.pop() else { break };
            let dt = 1 + rng.next_u64() % 10_000;
            q.schedule(t + SimDuration::from_nanos(dt), v);
            ops += 2;
        }
        std::hint::black_box(q.now());
        ops
    })
}

// ---- micro: KVFS operations -----------------------------------------------

/// The KVFS hot loop: create → append pages → fork (CoW) → append to the
/// fork (CoW copy) → swap out/in → remove, across a live file population.
fn micro_kvfs_ops(rounds: u64) -> MicroResult {
    time_micro("kvfs_ops", || {
        let cfg = KvStoreConfig {
            page_tokens: 16,
            bytes_per_token: 1024,
            gpu_pages: 4096,
            cpu_pages: 8192,
            disk_pages: 0,
        };
        let mut store = KvStore::new(cfg);
        let owner = OwnerId(1);
        let entries: Vec<KvEntry> = (0..64u32)
            .map(|i| KvEntry::new(i, i, symphony_model::CtxFingerprint(u64::from(i).wrapping_mul(0x9E37_79B9))))
            .collect();
        let mut ops = 0u64;
        let mut live: Vec<symphony_kvfs::FileId> = Vec::new();
        for r in 0..rounds {
            let f = store.create(owner).expect("create");
            store.append(f, owner, &entries).expect("append");
            let g = store.fork(f, owner).expect("fork");
            // Divergent append to the fork: exercises the CoW copy path on
            // the shared tail page.
            store.append(g, owner, &entries[..8]).expect("cow append");
            store.swap_out(f, owner).expect("swap_out");
            store.swap_in(f, owner).expect("swap_in");
            ops += 6;
            live.push(f);
            live.push(g);
            // Keep ~64 files live so lookups see a realistic table.
            while live.len() > 64 {
                let dead = live.remove((r % 64) as usize);
                store.remove(dead, owner).expect("remove");
                ops += 1;
            }
        }
        for f in live {
            store.remove(f, owner).expect("drain");
        }
        debug_assert!(store.verify().is_ok());
        ops
    })
}

// ---- micro: scheduler dispatch --------------------------------------------

/// MLFQ push/pop/charge cycles over a large program population — the
/// continuous executor's per-iteration admission path.
fn micro_sched_dispatch(rounds: u64, programs: u64) -> MicroResult {
    time_micro("sched_dispatch", || {
        let mut q: ProgramQueue<u64> = ProgramQueue::new(QueueDiscipline::Mlfq(MlfqConfig {
            levels: 4,
            quantum_tokens: 512,
        }));
        let mut rng = Rng::new(0x5C4E);
        let mut ops = 0u64;
        for r in 0..rounds {
            // A burst of arrivals across the program population...
            for _ in 0..8 {
                let pid = 1 + rng.next_u64() % programs;
                q.push(pid, true, r);
                ops += 1;
            }
            // ...then dispatch and charge them, like one GPU iteration.
            for _ in 0..8 {
                if q.pop().is_some() {
                    let pid = 1 + rng.next_u64() % programs;
                    q.charge(pid, true, 16);
                    ops += 2;
                }
            }
        }
        std::hint::black_box(q.len());
        ops
    })
}

// ---- micro: journal encode + replay ---------------------------------------

/// Snapshot-journal encode and restore round trips over a populated store;
/// ops counts bytes moved (encode + decode), so `ops_per_sec` is B/s.
fn micro_journal(rounds: u64) -> MicroResult {
    time_micro("journal_roundtrip", || {
        let cfg = KvStoreConfig {
            page_tokens: 16,
            bytes_per_token: 1024,
            gpu_pages: 4096,
            cpu_pages: 4096,
            disk_pages: 0,
        };
        let mut store = KvStore::new(cfg);
        let owner = OwnerId(1);
        for fidx in 0..48u32 {
            let f = store.create(owner).expect("create");
            let entries: Vec<KvEntry> = (0..96u32)
                .map(|i| KvEntry::new(i, i, symphony_model::CtxFingerprint(u64::from(fidx * 96 + i))))
                .collect();
            store.append(f, owner, &entries).expect("append");
            if fidx % 3 == 0 {
                store.link(f, &format!("bench/doc{fidx}.kv"), owner).expect("link");
            }
        }
        let registry = symphony::MetricsRegistry::new();
        let mut bytes_moved = 0u64;
        for _ in 0..rounds {
            let bytes = store.journal_bytes();
            bytes_moved += bytes.len() as u64;
            let (r, _report) = KvStore::restore_from_journal_bytes(cfg, &registry, &bytes)
                .expect("restore");
            bytes_moved += bytes.len() as u64;
            std::hint::black_box(r.gpu_pages_used());
        }
        bytes_moved
    })
}

// ---- macro scenarios ------------------------------------------------------

struct MacroRun {
    completed: usize,
    failed: usize,
    events: u64,
    tokens: u64,
}

/// One agent session: fork the published system prompt if present,
/// otherwise fetch + prefill + publish it (pinned), then answer in a
/// handful of decode steps — `exp_persist`'s fleet shape.
fn agent_lip(ctx: &mut Ctx) -> Result<(), SysError> {
    let kv = match ctx.kv_open("agent/system.kv") {
        Ok(sys) => ctx.kv_fork(sys)?,
        Err(_) => {
            let text = ctx.call_tool("fetch-system", "")?;
            let toks = ctx.tokenize(&text)?;
            let f = ctx.kv_create()?;
            ctx.pred_positions(f, &toks, 0)?;
            if ctx.kv_link(f, "agent/system.kv").is_ok() {
                ctx.kv_chmod(f, Mode::SHARED_READ)?;
                ctx.kv_pin(f)?;
                ctx.kv_fork(f)?
            } else {
                f
            }
        }
    };
    let task = ctx.tokenize(&ctx.args())?;
    sampling::generate(
        ctx,
        kv,
        &task,
        &GenOpts {
            max_tokens: 24,
            emit: false,
            ..Default::default()
        },
    )?;
    ctx.kv_remove(kv)?;
    Ok(())
}

/// Agent fleet on the continuous executor with MLFQ and a KV pool tight
/// enough to force preemption — the kernel-bound serving shape.
fn run_agent_fleet(agents: usize) -> MacroRun {
    let mut cfg = KernelConfig::for_tests();
    cfg.trace = false;
    cfg.exec = ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: Some(32),
        discipline: QueueDiscipline::Mlfq(MlfqConfig {
            levels: 4,
            quantum_tokens: 256,
        }),
    });
    cfg.max_batch = 16;
    cfg.syscall_cost = SimDuration::from_micros(2);
    let mut kernel = Kernel::new(cfg);
    let sys_text = std::sync::Arc::new("You are a careful planning agent. ".repeat(24));
    {
        let sys = sys_text.clone();
        kernel.register_tool(
            "fetch-system",
            ToolSpec::fixed(SimDuration::from_millis(40), move |_| {
                ToolOutcome::Ok(sys.as_ref().clone())
            }),
        );
    }
    let mut pids = Vec::with_capacity(agents);
    for i in 0..agents {
        let at = SimTime::ZERO + SimDuration::from_millis(5 * i as u64);
        let args = format!("plan step {i} for the deployment rollout");
        pids.push(kernel.schedule_process(at, &format!("agent{i}"), &args, agent_lip));
    }
    kernel.run();
    summarize(&kernel, &pids)
}

/// RAG over a topic corpus on the batch executor: fork a published
/// document prefix on hit, retrieve + prefill + publish on miss — the
/// Fig-3 program shape at bench scale.
fn rag_lip(ctx: &mut Ctx) -> Result<(), SysError> {
    let args = ctx.args();
    let mut parts = args.splitn(2, '|');
    let topic: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(SysError::BadArgument)?;
    let query = parts.next().ok_or(SysError::BadArgument)?.to_string();
    let path = format!("rag/doc{topic}.kv");
    let kv = match ctx.kv_open(&path) {
        Ok(doc) => ctx.kv_fork(doc)?,
        Err(_) => {
            let text = ctx.call_tool("retrieve", &topic.to_string())?;
            let doc_tokens = ctx.tokenize(&text)?;
            let f = ctx.kv_create()?;
            ctx.pred_positions(f, &doc_tokens, 0)?;
            if ctx.kv_link(f, &path).is_ok() {
                ctx.kv_chmod(f, Mode::SHARED_READ)?;
                ctx.kv_fork(f)?
            } else {
                f
            }
        }
    };
    let q = ctx.tokenize(&format!("\n{query}"))?;
    let out = sampling::generate(
        ctx,
        kv,
        &q,
        &GenOpts {
            max_tokens: 16,
            temperature: 0.0,
            emit: false,
            ..Default::default()
        },
    )?;
    ctx.emit_tokens(&out.tokens)?;
    ctx.kv_remove(kv)?;
    Ok(())
}

fn run_rag(requests: usize, topics: usize) -> MacroRun {
    let mut cfg = KernelConfig::for_tests();
    cfg.trace = false;
    cfg.batch_policy = BatchPolicy::Immediate;
    cfg.max_batch = 32;
    cfg.cpu_swap_bytes = 64_000_000;
    cfg.syscall_cost = SimDuration::from_micros(2);
    let mut kernel = Kernel::new(cfg);
    let doc_text = |t: usize| format!("document about topic {t}. ").repeat(20);
    kernel.register_tool(
        "retrieve",
        ToolSpec::fixed(SimDuration::from_millis(20), move |args| {
            match args.parse::<usize>() {
                Ok(t) => ToolOutcome::Ok(doc_text(t)),
                Err(_) => ToolOutcome::Failed(format!("bad topic: {args}")),
            }
        }),
    );
    let mut rng = Rng::new(0xBA6);
    let mut pids = Vec::with_capacity(requests);
    for i in 0..requests {
        // Zipf-ish skew: low topics are hot, mirroring the Fig-3 regime
        // where retained document KV pays off.
        let draw = rng.next_u64() as usize;
        let topic = (draw % topics).min(draw % 7);
        let at = SimTime::ZERO + SimDuration::from_millis(2 * i as u64);
        let args = format!("{topic}|what changed in revision {i}?");
        pids.push(kernel.schedule_process(at, &format!("rag{i}"), &args, rag_lip));
    }
    kernel.run();
    summarize(&kernel, &pids)
}

fn summarize(kernel: &Kernel, pids: &[symphony::Pid]) -> MacroRun {
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut tokens = 0u64;
    for &pid in pids {
        let rec = kernel.record(pid).expect("record");
        if rec.exited_at.is_some() && rec.status.is_ok() {
            completed += 1;
            tokens += rec.usage.pred_tokens;
        } else {
            failed += 1;
        }
    }
    MacroRun {
        completed,
        failed,
        events: kernel.events_processed(),
        tokens,
    }
}

/// Runs a macro scenario `runs` times. Throughput comes from the *fastest*
/// run (the simulation is deterministic, so every run does identical work
/// and anything above the minimum wall time is host interference — same
/// rationale as [`MICRO_REPS`]); p50/p99 still summarise the whole spread.
fn time_macro(name: &str, runs: usize, f: impl Fn() -> MacroRun) -> MacroResult {
    let mut walls_ms: Vec<f64> = Vec::with_capacity(runs);
    let mut last: Option<MacroRun> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let run = f();
        let wall = secs(start);
        assert_eq!(run.failed, 0, "{name}: macro run had failures");
        if let Some(prev) = &last {
            assert_eq!(
                prev.events, run.events,
                "{name}: non-deterministic event count across runs"
            );
        }
        walls_ms.push(wall * 1e3);
        last = Some(run);
    }
    let run = last.expect("at least one run");
    walls_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let best_secs = walls_ms[0] / 1e3;
    MacroResult {
        name: name.to_string(),
        runs,
        completed: run.completed,
        events: run.events,
        tokens: run.tokens,
        p50_wall_ms: percentile(&walls_ms, 0.50),
        p99_wall_ms: percentile(&walls_ms, 0.99),
        events_per_sec: run.events as f64 / best_secs,
        tokens_per_sec: run.tokens as f64 / best_secs,
    }
}

// ---- report + gate --------------------------------------------------------

/// `BENCH_tier1.json` layout: `{"schema", "modes": {"full": ..., "smoke":
/// ...}}` — one section per mode, merged on write so a full run and a smoke
/// run can coexist in the checked-in baseline.
const SCHEMA: &str = "symphony-bench-tier1/v1";

fn merge_and_write(path: &std::path::Path, mode: &str, results: &ModeResults) {
    // Preserve the other mode's section if the file already holds one.
    // (Hand-rolled extraction: the vendored serde has no Deserialize.)
    let existing = std::fs::read_to_string(path).ok();
    let other_mode = if mode == "full" { "smoke" } else { "full" };
    let other_section = existing.as_deref().and_then(|s| extract_mode_section(s, other_mode));
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"");
    out.push_str(SCHEMA);
    out.push_str("\",\n  \"modes\": {\n");
    out.push_str(&format!("    \"{mode}\": "));
    out.push_str(&indent_json(&serde_json::to_string_pretty(results).expect("serialisable"), 4));
    if let Some(other) = other_section {
        out.push_str(",\n");
        out.push_str(&format!("    \"{other_mode}\": "));
        out.push_str(&other);
    }
    out.push_str("\n  }\n}\n");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    match std::fs::write(path, &out) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warn: write {}: {e}", path.display()),
    }
}

fn indent_json(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines()
        .enumerate()
        .map(|(i, l)| if i == 0 { l.to_string() } else { format!("{pad}{l}") })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Pulls the raw JSON text of `modes.<mode>` out of a report, by brace
/// matching from the key (good enough for our own serializer's output).
fn extract_mode_section(s: &str, mode: &str) -> Option<String> {
    let key = format!("\"{mode}\":");
    let start = s.find(&key)? + key.len();
    let open = s[start..].find('{')? + start;
    let mut depth = 0usize;
    for (i, c) in s[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(s[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads `name: value` pairs out of a baseline section with a tolerant
/// hand-rolled scan (vendored serde is serialize-only). Returns
/// `(scenario name, ops_per_sec or events_per_sec, calibration)`.
fn parse_baseline(path: &std::path::Path, mode: &str) -> Option<(Vec<(String, f64)>, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let section = extract_mode_section(&text, mode)?;
    let calibration = find_number(&section, "\"calibration_ops_per_sec\":")?;
    // Scenario entries are the flat depth-2 objects of the section (the
    // section itself is depth 1; `micro`/`macro` array elements sit at 2).
    // Bounding both the name and the rate search to one entry's braces
    // keeps the pairing correct whatever order the serializer emits keys
    // or sections in.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, b) in section.bytes().enumerate() {
        match b {
            b'{' => {
                depth += 1;
                if depth == 2 {
                    start = Some(i);
                }
            }
            b'}' => {
                if depth == 2 {
                    if let Some(s0) = start.take() {
                        let span = &section[s0..=i];
                        if let Some(name) = find_string(span, "\"name\":") {
                            let rate = find_number(span, "\"ops_per_sec\":")
                                .or_else(|| find_number(span, "\"events_per_sec\":"))?;
                            out.push((name, rate));
                        }
                    }
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
    }
    Some((out, calibration))
}

fn find_string(s: &str, key: &str) -> Option<String> {
    let idx = s.find(key)? + key.len();
    let tail = &s[idx..];
    let q1 = tail.find('"')?;
    let q2 = tail[q1 + 1..].find('"')? + q1 + 1;
    Some(tail[q1 + 1..q2].to_string())
}

fn find_number(s: &str, key: &str) -> Option<f64> {
    let idx = s.find(key)? + key.len();
    let tail = s[idx..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The regression gate: compares fresh calibration-normalized throughput
/// against the baseline's, failing on a drop beyond [`GATE_TOLERANCE`].
fn check_against(baseline: &std::path::Path, mode: &str, fresh: &ModeResults) -> Result<(), String> {
    let (base, base_cal) = parse_baseline(baseline, mode)
        .ok_or_else(|| format!("no '{mode}' section in {}", baseline.display()))?;
    let fresh_cal = fresh.calibration_ops_per_sec;
    let mut fresh_rates: Vec<(String, f64)> = fresh
        .micro
        .iter()
        .map(|m| (m.name.clone(), m.ops_per_sec))
        .collect();
    fresh_rates.extend(fresh.r#macro.iter().map(|m| (m.name.clone(), m.events_per_sec)));
    let mut failures = Vec::new();
    let mut compared = 0;
    for (name, base_rate) in &base {
        if name == "calibration" {
            continue;
        }
        let Some((_, fresh_rate)) = fresh_rates.iter().find(|(n, _)| n == name) else {
            failures.push(format!("scenario '{name}' missing from this run"));
            continue;
        };
        let base_norm = base_rate / base_cal;
        let fresh_norm = fresh_rate / fresh_cal;
        let ratio = fresh_norm / base_norm;
        compared += 1;
        eprintln!("gate: {name}: {:.2}x of baseline (normalized)", ratio);
        if ratio < 1.0 - GATE_TOLERANCE {
            failures.push(format!(
                "{name} regressed to {:.0}% of baseline (normalized {:.3} vs {:.3})",
                ratio * 100.0,
                fresh_norm,
                base_norm
            ));
        }
    }
    if compared == 0 {
        return Err("baseline held no comparable scenarios".into());
    }
    if failures.is_empty() {
        eprintln!("gate: OK ({compared} scenarios within {:.0}%)", GATE_TOLERANCE * 100.0);
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let check: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let out: std::path::PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/BENCH_tier1.json"));

    // Scale factors: smoke keeps CI latency low, full is the trajectory run.
    let (eq_rounds, kv_rounds, sd_rounds, j_rounds) = if smoke {
        (400_000, 6_000, 120_000, 40)
    } else {
        (4_000_000, 40_000, 1_000_000, 250)
    };
    let (agents, rag_reqs, macro_runs) = if smoke { (48, 96, 3) } else { (192, 384, 5) };

    eprintln!("BENCH ({mode}): calibration ...");
    let cal = calibration();
    eprintln!("BENCH: micro ...");
    let micro = vec![
        cal.clone(),
        micro_event_queue(eq_rounds, 4_096),
        micro_kvfs_ops(kv_rounds),
        micro_sched_dispatch(sd_rounds, 512),
        micro_journal(j_rounds),
    ];
    eprintln!("BENCH: macro agent_fleet ...");
    let fleet = time_macro("agent_fleet", macro_runs, || run_agent_fleet(agents));
    eprintln!("BENCH: macro rag ...");
    let rag = time_macro("rag", macro_runs, || run_rag(rag_reqs, 24));
    let macros = vec![fleet, rag];

    let mut t1 = Table::new(
        &format!("BENCH micro ({mode})"),
        &["scenario", "ops", "wall ms", "ops/sec"],
    );
    for m in &micro {
        t1.row(vec![
            m.name.clone(),
            m.ops.to_string(),
            format!("{:.1}", m.wall_ms),
            format!("{:.3e}", m.ops_per_sec),
        ]);
    }
    t1.print();
    let mut t2 = Table::new(
        &format!("BENCH macro ({mode})"),
        &["scenario", "done", "events", "p50 ms", "p99 ms", "events/sec", "tok/sec"],
    );
    for m in &macros {
        t2.row(vec![
            m.name.clone(),
            m.completed.to_string(),
            m.events.to_string(),
            format!("{:.1}", m.p50_wall_ms),
            format!("{:.1}", m.p99_wall_ms),
            format!("{:.3e}", m.events_per_sec),
            format!("{:.3e}", m.tokens_per_sec),
        ]);
    }
    t2.print();

    let results = ModeResults {
        calibration_ops_per_sec: cal.ops_per_sec,
        micro,
        r#macro: macros,
    };

    let gate = check.map(|baseline| check_against(&baseline, mode, &results));
    merge_and_write(&out, mode, &results);
    if let Some(res) = gate {
        if let Err(msg) = res {
            eprintln!("BENCH gate FAILED: {msg}");
            std::process::exit(1);
        }
    }
}
