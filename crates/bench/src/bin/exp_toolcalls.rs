//! E2 — §2.2 communication overhead: server-side vs client-side function
//! calling.
//!
//! One agent task interleaves generation with `n` tool calls. Three
//! execution models, all on the same substrate:
//!
//! - `server-lip`: the LIP calls tools inside the server (no round trips).
//! - `client-stateful`: the client executes each tool; every call costs one
//!   network round trip, but server-side state (KV) survives.
//! - `client-prompt`: a stateless prompt API — each round trip also
//!   re-prefills the whole accumulated context (no cache).
//!
//! Expected shape: the gap grows linearly in the number of calls; the
//! stateless variant adds recompute on top of the round trips.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_toolcalls`

use serde::Serialize;
use symphony::sampling::{generate, GenOpts};
use symphony::{
    Ctx, Kernel, KernelConfig, MetricsSnapshot, SimDuration, SysError, ToolOutcome, ToolSpec,
};
use symphony_bench::{write_json_with_metrics, Table, TelemetryOpts};

const RTT: SimDuration = SimDuration::from_millis(40);
const TOOL_LATENCY: SimDuration = SimDuration::from_millis(25);
const SEGMENT_TOKENS: usize = 16;
const PROMPT: &str = "an agent plan with several external lookups and calculations";

#[derive(Debug, Clone, Serialize)]
struct Point {
    mode: String,
    calls: usize,
    latency_ms: f64,
    pred_tokens: u64,
}

fn gen_opts() -> GenOpts {
    GenOpts {
        max_tokens: SEGMENT_TOKENS,
        temperature: 0.0,
        emit: false,
        ..Default::default()
    }
}

/// Server-side: tools run inside the serving system, KV persists.
fn server_lip(ctx: &mut Ctx, calls: usize) -> Result<(), SysError> {
    let kv = ctx.kv_create()?;
    let mut next = ctx.tokenize(PROMPT)?;
    for i in 0..calls {
        generate(ctx, kv, &next, &gen_opts())?;
        let result = ctx.call_tool("api", &format!("call {i}"))?;
        next = ctx.tokenize(&result)?;
    }
    generate(ctx, kv, &next, &gen_opts())?;
    Ok(())
}

/// Client-executed tools with a stateful server: one RTT per call, KV kept.
fn client_stateful(ctx: &mut Ctx, calls: usize) -> Result<(), SysError> {
    let kv = ctx.kv_create()?;
    let mut next = ctx.tokenize(PROMPT)?;
    for i in 0..calls {
        generate(ctx, kv, &next, &gen_opts())?;
        // Round trip to the client, which runs the tool, and back.
        ctx.sleep(RTT)?;
        let result = ctx.call_tool("api", &format!("call {i}"))?;
        ctx.sleep(RTT)?;
        next = ctx.tokenize(&result)?;
    }
    generate(ctx, kv, &next, &gen_opts())?;
    Ok(())
}

/// Stateless prompt API: each round recreates the whole context.
fn client_prompt(ctx: &mut Ctx, calls: usize) -> Result<(), SysError> {
    let mut transcript = ctx.tokenize(PROMPT)?;
    for i in 0..calls {
        // Fresh request: re-prefill everything accumulated so far.
        let kv = ctx.kv_create()?;
        let out = generate(ctx, kv, &transcript, &gen_opts())?;
        transcript.extend(&out.tokens);
        ctx.kv_remove(kv)?;
        ctx.sleep(RTT)?;
        let result = ctx.call_tool("api", &format!("call {i}"))?;
        ctx.sleep(RTT)?;
        transcript.extend(ctx.tokenize(&result)?);
    }
    let kv = ctx.kv_create()?;
    generate(ctx, kv, &transcript, &gen_opts())?;
    Ok(())
}

/// Runs one `(mode, calls)` point. The designated run may record events
/// for the Perfetto export; recording never changes results — the bus
/// only observes.
fn run_mode(
    mode: &str,
    calls: usize,
    telemetry: &TelemetryOpts,
    designated: bool,
) -> (Point, Option<MetricsSnapshot>) {
    let mut cfg = KernelConfig::paper_setup();
    cfg.model = cfg.model.with_mean_output_tokens(1_000); // segments end by cap
    cfg.trace = false;
    cfg.telemetry = telemetry.record(designated);
    let mut kernel = Kernel::new(cfg);
    kernel.register_tool(
        "api",
        ToolSpec::fixed(TOOL_LATENCY, |args| ToolOutcome::Ok(format!("api result for {args}"))),
    );
    let mode_owned = mode.to_string();
    let pid = kernel.spawn_process(mode, &calls.to_string(), move |ctx| {
        let calls: usize = ctx.args().parse().map_err(|_| SysError::BadArgument)?;
        match mode_owned.as_str() {
            "server-lip" => server_lip(ctx, calls),
            "client-stateful" => client_stateful(ctx, calls),
            "client-prompt" => client_prompt(ctx, calls),
            _ => Err(SysError::BadArgument),
        }
    });
    kernel.run();
    let rec = kernel.record(pid).expect("record");
    assert!(rec.status.is_ok(), "{mode}: {:?}", rec.status);
    let point = Point {
        mode: mode.to_string(),
        calls,
        latency_ms: rec.latency().expect("exited").as_millis_f64(),
        pred_tokens: rec.usage.pred_tokens,
    };
    let snap = telemetry.export_designated(&kernel, designated);
    (point, snap)
}

fn main() {
    let opts = TelemetryOpts::from_args();
    let modes = ["server-lip", "client-stateful", "client-prompt"];
    let call_counts = [1usize, 2, 4, 8, 16];
    let designated_calls = *call_counts.last().expect("non-empty");
    let mut results = Vec::new();
    let mut captured: Option<MetricsSnapshot> = None;
    let mut table = Table::new(
        "E2 — function calling: server-side vs client round trips (RTT 40ms)",
        &["calls", "server-lip", "client-stateful", "client-prompt", "prompt pred-tokens"],
    );
    for &calls in &call_counts {
        eprintln!("E2: {calls} calls ...");
        let pts: Vec<Point> = modes
            .iter()
            .map(|m| {
                // The designated telemetry run: server-lip at max calls.
                let designated = *m == "server-lip" && calls == designated_calls;
                let (pt, snap) = run_mode(m, calls, &opts, designated);
                if designated {
                    captured = snap;
                }
                pt
            })
            .collect();
        table.row(vec![
            calls.to_string(),
            format!("{:.0}ms", pts[0].latency_ms),
            format!("{:.0}ms (+{:.0})", pts[1].latency_ms, pts[1].latency_ms - pts[0].latency_ms),
            format!("{:.0}ms (+{:.0})", pts[2].latency_ms, pts[2].latency_ms - pts[0].latency_ms),
            format!("{} vs {} (lip)", pts[2].pred_tokens, pts[0].pred_tokens),
        ]);
        results.extend(pts);
    }
    table.print();
    println!("\nShape check: client-stateful − server-lip ≈ 2·RTT·calls = round-trip overhead.");
    let metrics = captured.as_ref().filter(|_| opts.metrics);
    write_json_with_metrics("exp_toolcalls", &results, metrics);
}
