//! E12 — §4.4 iteration-level scheduling: static vs continuous batching,
//! chunked prefill, and program-aware MLFQ.
//!
//! Four executor configurations on the same substrate:
//!
//! - `static`: run-to-completion batches (the pre-iteration kernel). A
//!   768-token prefill admitted next to a decoder stalls that decoder for
//!   the whole batch — inter-token latency inherits prefill duration.
//! - `continuous`: iteration-level admission and retirement, prefills
//!   still monolithic. Decoders rejoin every iteration, but one long
//!   prefill still pins the iteration length.
//! - `cont+chunked`: prefills split into fixed-size chunks interleaved
//!   with decode steps — the iteration length (and therefore p99 ITL) is
//!   bounded by the chunk, at the cost of re-streaming weights once per
//!   extra chunk.
//! - `program-aware`: chunked, plus a non-clairvoyant MLFQ over *programs*:
//!   queue order favours programs with the least critical-path service, so
//!   fresh arrivals are not stuck behind long-running agents.
//!
//! Two workloads: `agent` (long prompt, several decode+tool rounds — the
//! paper's LIP shape) and `rag` (very long prefill, short answer).
//! Inter-token latency is measured inside the LIP with `ctx.now()` around
//! each decode `pred`, i.e. exactly what a streaming client observes.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_sched`
//! (`--smoke` runs a tiny-scale variant for CI; `--trace <path>` and
//! `--metrics` export telemetry of the designated run.)

use serde::Serialize;
use symphony::{
    ContinuousConfig, Ctx, ExecMode, Kernel, KernelConfig, MlfqConfig, QueueDiscipline,
    SimDuration, SimTime, SysError, ToolOutcome, ToolSpec,
};
use symphony_bench::{write_json_with_metrics, ExpArgs, Table, TelemetryOpts};
use symphony_sim::{PoissonProcess, Rng, Series};

#[derive(Debug, Clone, Copy)]
struct Scale {
    smoke: bool,
    chunk: usize,
    agents: usize,
    agent_prompt: usize,
    segments: usize,
    segment_decode: usize,
    obs_tokens: usize,
    agent_rate_rps: f64,
    rag_requests: usize,
    rag_prompt: usize,
    rag_decode: usize,
    rag_rate_rps: f64,
    tool_latency: SimDuration,
}

impl Scale {
    fn full() -> Self {
        Scale {
            smoke: false,
            chunk: 256,
            agents: 40,
            agent_prompt: 768,
            segments: 3,
            segment_decode: 24,
            obs_tokens: 16,
            agent_rate_rps: 10.0,
            rag_requests: 24,
            rag_prompt: 1536,
            rag_decode: 48,
            rag_rate_rps: 6.0,
            tool_latency: SimDuration::from_millis(150),
        }
    }

    fn smoke() -> Self {
        Scale {
            smoke: true,
            chunk: 8,
            agents: 5,
            agent_prompt: 48,
            segments: 2,
            segment_decode: 6,
            obs_tokens: 8,
            agent_rate_rps: 200.0,
            rag_requests: 4,
            rag_prompt: 64,
            rag_decode: 6,
            rag_rate_rps: 100.0,
            tool_latency: SimDuration::from_millis(5),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Agent,
    Rag,
}

#[derive(Debug, Clone, Serialize)]
struct Point {
    mode: String,
    workload: String,
    p50_itl_ms: f64,
    p99_itl_ms: f64,
    mean_ttft_ms: f64,
    throughput_tok_s: f64,
    preemptions: u64,
    prefill_chunks: u64,
    batches: u64,
}

/// Deterministic synthetic token stream (stands in for tokenised text).
fn tokens(seed: usize, n: usize, start_pos: u32) -> Vec<(u32, u32)> {
    (0..n)
        .map(|j| (1 + ((seed * 31 + j * 7) % 800) as u32, start_pos + j as u32))
        .collect()
}

fn join_ns(v: &[u64]) -> String {
    v.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

/// The agent LIP: one long prompt prefill, then `segments` rounds of
/// decode followed by a server-side tool call whose observation is
/// prefilled into the context. Emits its own latency marks.
fn agent_lip(ctx: &mut Ctx, seed: usize, s: Scale) -> Result<(), SysError> {
    let t_start = ctx.now()?;
    let kv = ctx.kv_create()?;
    let prompt = tokens(seed, s.agent_prompt, 0);
    let mut dist = ctx.pred(kv, &prompt)?.pop().ok_or(SysError::BadArgument)?;
    let ttft = ctx.now()?.duration_since(t_start);
    let mut pos = s.agent_prompt as u32;
    let mut itl: Vec<u64> = Vec::new();
    for seg in 0..s.segments {
        let mut last = ctx.now()?;
        for _ in 0..s.segment_decode {
            let tok = dist.argmax();
            dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
            pos += 1;
            let t = ctx.now()?;
            itl.push(t.duration_since(last).as_nanos());
            last = t;
        }
        if seg + 1 < s.segments {
            ctx.call_tool("api", "lookup")?;
            let obs = tokens(seed + seg + 1, s.obs_tokens, pos);
            dist = ctx.pred(kv, &obs)?.pop().ok_or(SysError::BadArgument)?;
            pos += s.obs_tokens as u32;
        }
    }
    ctx.emit(&format!(
        "ttft_ns={};itl_ns={}",
        ttft.as_nanos(),
        join_ns(&itl)
    ))?;
    Ok(())
}

/// The RAG LIP: one very long prefill (retrieved documents), one short
/// streamed answer.
fn rag_lip(ctx: &mut Ctx, seed: usize, s: Scale) -> Result<(), SysError> {
    let t_start = ctx.now()?;
    let kv = ctx.kv_create()?;
    let prompt = tokens(seed, s.rag_prompt, 0);
    let mut dist = ctx.pred(kv, &prompt)?.pop().ok_or(SysError::BadArgument)?;
    let ttft = ctx.now()?.duration_since(t_start);
    let mut pos = s.rag_prompt as u32;
    let mut itl: Vec<u64> = Vec::new();
    let mut last = ctx.now()?;
    for _ in 0..s.rag_decode {
        let tok = dist.argmax();
        dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
        pos += 1;
        let t = ctx.now()?;
        itl.push(t.duration_since(last).as_nanos());
        last = t;
    }
    ctx.emit(&format!(
        "ttft_ns={};itl_ns={}",
        ttft.as_nanos(),
        join_ns(&itl)
    ))?;
    Ok(())
}

/// Parses the `ttft_ns=..;itl_ns=..` marks a LIP emitted.
fn parse_marks(out: &str) -> (u64, Vec<u64>) {
    let rest = out.strip_prefix("ttft_ns=").expect("marks prefix");
    let (ttft, itl) = rest.split_once(";itl_ns=").expect("marks separator");
    let itl = itl
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse().expect("itl mark"))
        .collect();
    (ttft.parse().expect("ttft mark"), itl)
}

fn run_point(
    mode_name: &str,
    exec: ExecMode,
    batch_cap: Option<usize>,
    workload: Workload,
    s: Scale,
    telemetry: &TelemetryOpts,
    designated: bool,
) -> (Point, Option<symphony::MetricsSnapshot>) {
    let mut cfg = if s.smoke {
        KernelConfig::for_tests()
    } else {
        KernelConfig::paper_setup()
    };
    cfg.exec = exec;
    if let Some(cap) = batch_cap {
        cfg.max_batch = cap;
    }
    cfg.trace = false;
    cfg.telemetry = telemetry.record(designated);
    let mut kernel = Kernel::new(cfg);
    kernel.register_tool(
        "api",
        ToolSpec::fixed(s.tool_latency, |_| ToolOutcome::Ok("observation".into())),
    );

    let (n, rate) = match workload {
        Workload::Agent => (s.agents, s.agent_rate_rps),
        Workload::Rag => (s.rag_requests, s.rag_rate_rps),
    };
    let mut rng = Rng::new(0xE12);
    let arrivals = PoissonProcess::new(rate);
    let mut at = SimTime::ZERO;
    let mut pids = Vec::new();
    for i in 0..n {
        at += arrivals.next_gap(&mut rng);
        let name = format!("{mode_name}-{i}");
        pids.push(match workload {
            Workload::Agent => {
                kernel.schedule_process(at, &name, "", move |ctx| agent_lip(ctx, i, s))
            }
            Workload::Rag => {
                kernel.schedule_process(at, &name, "", move |ctx| rag_lip(ctx, i, s))
            }
        });
    }
    kernel.run();

    let mut itl = Series::new();
    let mut ttft = Series::new();
    let mut makespan = SimTime::ZERO;
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        assert!(rec.status.is_ok(), "{mode_name}: {:?}", rec.status);
        makespan = makespan.max(rec.exited_at.expect("completed"));
        let (t, marks) = parse_marks(&rec.output);
        ttft.add(t as f64 / 1e6);
        for m in marks {
            itl.add(m as f64 / 1e6);
        }
    }
    let gm = kernel.gpu_metrics();
    let span = makespan.as_secs_f64().max(1e-9);
    let snap = telemetry.export_designated(&kernel, designated);
    // One sort for both ITL quantiles.
    let itl_q = itl.percentiles(&[0.50, 0.99]);
    let point = Point {
        mode: mode_name.to_string(),
        workload: match workload {
            Workload::Agent => "agent".to_string(),
            Workload::Rag => "rag".to_string(),
        },
        p50_itl_ms: itl_q[0].unwrap_or(0.0),
        p99_itl_ms: itl_q[1].unwrap_or(0.0),
        mean_ttft_ms: ttft.mean(),
        throughput_tok_s: gm.tokens as f64 / span,
        preemptions: kernel.preemptions(),
        prefill_chunks: kernel.prefill_chunks(),
        batches: gm.batches,
    };
    (point, snap)
}

fn main() {
    let args = ExpArgs::from_args();
    let smoke = args.smoke;
    let s = if smoke { Scale::smoke() } else { Scale::full() };
    let opts = args.telemetry;

    let chunked_fifo = ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: Some(s.chunk),
        discipline: QueueDiscipline::Fifo,
    });
    let chunked_mlfq = ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: Some(s.chunk),
        discipline: QueueDiscipline::Mlfq(MlfqConfig::default()),
    });
    // With enough admission slots for everyone the wait queue never forms
    // and the queue discipline is moot; the `-b8` points cap the slots so
    // FIFO and the program-aware MLFQ actually order a contended queue.
    let cap = if s.smoke { 2 } else { 8 };
    let modes: Vec<(&str, ExecMode, Option<usize>)> = vec![
        ("static", ExecMode::Static, None),
        (
            "continuous",
            ExecMode::Continuous(ContinuousConfig {
                chunk_tokens: None,
                discipline: QueueDiscipline::Fifo,
            }),
            None,
        ),
        ("cont+chunked", chunked_fifo, None),
        ("program-aware", chunked_mlfq, None),
        ("cont+chunked-b8", chunked_fifo, Some(cap)),
        ("program-aware-b8", chunked_mlfq, Some(cap)),
    ];

    let mut results = Vec::new();
    let mut captured: Option<symphony::MetricsSnapshot> = None;
    let mut table = Table::new(
        "E12 — iteration-level scheduling: executor ablation under load",
        &[
            "workload",
            "mode",
            "p50 itl",
            "p99 itl",
            "ttft",
            "tok/s",
            "chunks",
            "preempt",
        ],
    );
    for workload in [Workload::Agent, Workload::Rag] {
        for &(name, exec, cap) in &modes {
            let wname = if workload == Workload::Agent { "agent" } else { "rag" };
            eprintln!("E12: {wname} / {name} ...");
            // The designated telemetry run: program-aware on the agent
            // workload (the configuration the tentpole exists for).
            let designated = name == "program-aware" && workload == Workload::Agent;
            let (p, snap) = run_point(name, exec, cap, workload, s, &opts, designated);
            if let Some(sn) = snap {
                captured = Some(sn);
            }
            table.row(vec![
                p.workload.clone(),
                p.mode.clone(),
                format!("{:.1}ms", p.p50_itl_ms),
                format!("{:.1}ms", p.p99_itl_ms),
                format!("{:.0}ms", p.mean_ttft_ms),
                format!("{:.0}", p.throughput_tok_s),
                format!("{}", p.prefill_chunks),
                format!("{}", p.preemptions),
            ]);
            results.push(p);
        }
    }
    table.print();

    // Acceptance shape (§4.4): chunked continuous batching strictly
    // improves tail inter-token latency on the agent workload without
    // giving up more than 5% throughput.
    let find = |mode: &str, wl: &str| {
        results
            .iter()
            .find(|p| p.mode == mode && p.workload == wl)
            .expect("point")
    };
    let st = find("static", "agent");
    let ck = find("cont+chunked", "agent");
    let fifo8 = find("cont+chunked-b8", "agent");
    let mlfq8 = find("program-aware-b8", "agent");
    println!(
        "\nShape check (agent): p99 ITL static {:.1} ms vs chunked {:.1} ms; \
         tok/s static {:.0} vs chunked {:.0}",
        st.p99_itl_ms, ck.p99_itl_ms, st.throughput_tok_s, ck.throughput_tok_s
    );
    println!(
        "Queue contention (agent, capped slots): FIFO ttft {:.0} ms / p99 itl {:.1} ms \
         vs MLFQ ttft {:.0} ms / p99 itl {:.1} ms",
        fifo8.mean_ttft_ms, fifo8.p99_itl_ms, mlfq8.mean_ttft_ms, mlfq8.p99_itl_ms
    );
    if !smoke {
        assert!(
            ck.p99_itl_ms < st.p99_itl_ms,
            "chunked prefill must improve p99 inter-token latency"
        );
        assert!(
            ck.throughput_tok_s >= 0.95 * st.throughput_tok_s,
            "chunking tax must stay under 5% of static throughput"
        );
    }
    println!(
        "Chunked iterations bound the time a decoder waits behind a prefill to one\n\
         chunk; the tax is one weight re-stream per extra chunk, hidden while the\n\
         chunk itself is compute-bound. MLFQ additionally orders the wait queue by\n\
         accumulated critical-path service, favouring fresh programs."
    );
    let metrics = captured.as_ref().filter(|_| opts.metrics);
    write_json_with_metrics("exp_sched", &results, metrics);
}
