//! E4 — §4.1 speculative decoding via multi-token `pred`.
//!
//! The LIP drafts `k` tokens, verifies the whole draft with ONE `pred`, and
//! truncates the KV file back to the accepted prefix. The draft model is
//! simulated by an *agreement parameter* `alpha`: each draft token matches
//! the target's choice with probability `alpha` (the harness precomputes the
//! target's greedy continuation with its own copy of the surrogate — it is
//! deterministic — and flips tokens with probability `1 − alpha`). This is
//! the standard way to study speculation independent of a concrete drafter.
//!
//! Expected shape: expected accepted-per-pred rises then flattens as
//! `alpha^k` decays, so time/token improves steeply for small `k` and
//! saturates (or degrades) at large `k` — the classic speculation curve.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_speculative`

use serde::Serialize;
use symphony::sampling::verify_greedy;
use symphony::{Kernel, KernelConfig, SysError};
use symphony_bench::{write_json, Table};
use symphony_model::surrogate::VocabInfo;
use symphony_model::Surrogate;
use symphony_tokenizer::Bpe;

const TARGET_TOKENS: usize = 96;
const RUNS: usize = 12;
const ALPHA: f64 = 0.8;

#[derive(Debug, Clone, Serialize)]
struct Point {
    draft_len: usize,
    alpha: f64,
    time_per_token_ms: f64,
    acceptance: f64,
    pred_calls_per_token: f64,
    speedup_vs_autoregressive: f64,
}

/// Precomputes the target's greedy continuation (the surrogate is
/// deterministic, so the harness can know the "truth" a draft model would
/// approximate).
fn greedy_truth(cfg: &KernelConfig, prompt_text: &str, n: usize) -> Vec<u32> {
    let bpe = Bpe::default_tokenizer();
    let model = Surrogate::new(cfg.model, cfg.model_seed)
        .with_vocab(VocabInfo::from_tokenizer(bpe));
    let fpr = model.fingerprinter();
    let prompt = bpe.encode(prompt_text);
    let mut fp = fpr.origin();
    for (i, &t) in prompt.iter().enumerate() {
        fp = fpr.advance(fp, t, i as u32);
    }
    let mut pos = prompt.len() as u32;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let t = model.next_dist(fp).argmax();
        if t == model.vocab().eos {
            break;
        }
        out.push(t);
        fp = fpr.advance(fp, t, pos);
        pos += 1;
    }
    out
}

fn run_point(draft_len: usize) -> (f64, f64, f64) {
    let mut cfg = KernelConfig::paper_setup();
    cfg.model = cfg.model.with_mean_output_tokens(100_000); // no early EOS
    cfg.trace = false;
    let kernel_cfg = cfg.clone();
    let mut kernel = Kernel::new(cfg);
    let mut pids = Vec::new();
    for i in 0..RUNS {
        let prompt_text = format!("a drafting context number {i}");
        let truth = greedy_truth(&kernel_cfg, &prompt_text, TARGET_TOKENS + 16);
        let truth_str: Vec<String> = truth.iter().map(|t| t.to_string()).collect();
        let args = format!("{draft_len}|{prompt_text}|{}", truth_str.join(","));
        pids.push(kernel.spawn_process(&format!("spec{i}"), &args, |ctx| {
            let args = ctx.args();
            let mut parts = args.splitn(3, '|');
            let k: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(SysError::BadArgument)?;
            let text = parts.next().ok_or(SysError::BadArgument)?.to_string();
            let truth: Vec<u32> = parts
                .next()
                .ok_or(SysError::BadArgument)?
                .split(',')
                .filter_map(|s| s.parse().ok())
                .collect();
            let target = truth.len().min(TARGET_TOKENS);

            let prompt = ctx.tokenize(&text)?;
            let kv = ctx.kv_create()?;
            let mut dist = ctx
                .pred_positions(kv, &prompt, 0)?
                .pop()
                .ok_or(SysError::BadArgument)?;
            let mut pos = prompt.len() as u32;
            let mut produced = 0usize;
            let mut drafted = 0usize;
            let mut accepted_total = 0usize;
            while produced < target {
                if k == 0 {
                    // Plain autoregressive baseline.
                    let t = dist.argmax();
                    ctx.emit_tokens(&[t])?;
                    dist = ctx.pred(kv, &[(t, pos)])?.remove(0);
                    pos += 1;
                    produced += 1;
                    continue;
                }
                // Draft k tokens with agreement probability ALPHA.
                let draft: Vec<u32> = (0..k.min(target - produced))
                    .map(|j| {
                        let truth_tok = truth[produced + j];
                        if ctx.rng_f64() < ALPHA {
                            truth_tok
                        } else {
                            truth_tok.wrapping_add(1) % 1500
                        }
                    })
                    .collect();
                drafted += draft.len();
                let pairs: Vec<(u32, u32)> = draft
                    .iter()
                    .enumerate()
                    .map(|(j, &t)| (t, pos + j as u32))
                    .collect();
                let dists = ctx.pred(kv, &pairs)?;
                let (accepted, next) = verify_greedy(&draft, &dist, &dists);
                accepted_total += accepted;
                if accepted < draft.len() {
                    let keep = ctx.kv_len(kv)? - (draft.len() - accepted);
                    ctx.kv_truncate(kv, keep)?;
                }
                ctx.emit_tokens(&draft[..accepted])?;
                produced += accepted;
                pos += accepted as u32;
                // Commit the correction/bonus token from the target.
                ctx.emit_tokens(&[next])?;
                dist = ctx.pred(kv, &[(next, pos)])?.remove(0);
                pos += 1;
                produced += 1;
            }
            ctx.emit(&format!("|{accepted_total}|{drafted}"))?;
            Ok(())
        }));
    }
    kernel.run();

    let mut time_per_tok = symphony_sim::Series::new();
    let mut acc = 0usize;
    let mut dr = 0usize;
    let mut pred_calls = 0u64;
    let mut tokens = 0u64;
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        assert!(rec.status.is_ok(), "{:?}", rec.status);
        let parts: Vec<&str> = rec.output.rsplit('|').collect();
        dr += parts[0].parse::<usize>().unwrap_or(0);
        acc += parts[1].parse::<usize>().unwrap_or(0);
        tokens += rec.usage.emitted_tokens;
        pred_calls += rec.usage.pred_calls;
        time_per_tok.add(
            rec.latency().expect("exited").as_millis_f64() / rec.usage.emitted_tokens as f64,
        );
    }
    let acceptance = if dr == 0 { 1.0 } else { acc as f64 / dr as f64 };
    (
        time_per_tok.mean(),
        acceptance,
        pred_calls as f64 / tokens as f64,
    )
}

fn main() {
    eprintln!("E4: k=0 (baseline) ...");
    let (baseline_tpt, _, baseline_calls) = run_point(0);
    let mut results = vec![Point {
        draft_len: 0,
        alpha: ALPHA,
        time_per_token_ms: baseline_tpt,
        acceptance: 1.0,
        pred_calls_per_token: baseline_calls,
        speedup_vs_autoregressive: 1.0,
    }];
    let mut table = Table::new(
        "E4 — speculative decoding vs draft length (draft agreement alpha = 0.8)",
        &["draft k", "time/token", "acceptance", "pred calls/token", "speedup"],
    );
    table.row(vec![
        "0".into(),
        format!("{baseline_tpt:.1}ms"),
        "-".into(),
        format!("{baseline_calls:.2}"),
        "1.00x".into(),
    ]);
    for k in [1usize, 2, 3, 4, 6, 8] {
        eprintln!("E4: k={k} ...");
        let (tpt, acceptance, calls) = run_point(k);
        table.row(vec![
            k.to_string(),
            format!("{tpt:.1}ms"),
            format!("{:.0}%", acceptance * 100.0),
            format!("{calls:.2}"),
            format!("{:.2}x", baseline_tpt / tpt),
        ]);
        results.push(Point {
            draft_len: k,
            alpha: ALPHA,
            time_per_token_ms: tpt,
            acceptance,
            pred_calls_per_token: calls,
            speedup_vs_autoregressive: baseline_tpt / tpt,
        });
    }
    table.print();
    println!("\nShape check: speedup rises with k then saturates as alpha^k acceptance decays.");
    write_json("exp_speculative", &results);
}
