//! E3 — §2.3/§4.1 constrained decoding through LIPs.
//!
//! Generation with a JSON grammar mask and with a token-trie mask, compared
//! to unconstrained generation. Because the mask runs *inside* the LIP on
//! the full distribution, the only added cost is LIP compute — GPU work per
//! token is identical — and every constrained output is valid by
//! construction.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_constrained`

use serde::Serialize;
use symphony::sampling::{
    generate, generate_constrained, GenOpts, JsonConstraint, TrieConstraint,
};
use symphony::{Kernel, KernelConfig, SysError};
use symphony_bench::{write_json, Table};
use symphony_tokenizer::Bpe;

const RUNS: usize = 24;

#[derive(Debug, Clone, Serialize)]
struct Point {
    mode: String,
    runs: usize,
    mean_latency_per_token_ms: f64,
    mean_tokens: f64,
    valid_outputs: usize,
    wall_us_per_token: f64,
}

fn run_mode(mode: &'static str) -> Point {
    let mut cfg = KernelConfig::paper_setup();
    cfg.model = cfg.model.with_mean_output_tokens(48);
    cfg.trace = false;
    let mut kernel = Kernel::new(cfg);
    let mut pids = Vec::new();
    for i in 0..RUNS {
        let args = format!("produce structured output for case {i}");
        pids.push(kernel.spawn_process(&format!("{mode}{i}"), &args, move |ctx| {
            let prompt = ctx.tokenize(&ctx.args())?;
            let kv = ctx.kv_create()?;
            let opts = GenOpts {
                max_tokens: 48,
                temperature: 0.8,
                emit: true,
                ..Default::default()
            };
            match mode {
                "unconstrained" => {
                    generate(ctx, kv, &prompt, &opts)?;
                }
                "json" => {
                    let mut c = JsonConstraint::new(Bpe::default_tokenizer().vocab());
                    generate_constrained(ctx, kv, &prompt, &mut c, &opts)?;
                }
                "trie" => {
                    let options = vec![
                        ctx.tokenize("accepted")?,
                        ctx.tokenize("rejected")?,
                        ctx.tokenize("needs review")?,
                    ];
                    let mut c = TrieConstraint::new(options);
                    generate_constrained(ctx, kv, &prompt, &mut c, &opts)?;
                }
                _ => return Err(SysError::BadArgument),
            }
            Ok(())
        }));
    }
    let wall = std::time::Instant::now();
    kernel.run();
    let wall = wall.elapsed();

    let mut per_tok = symphony_sim::Series::new();
    let mut tokens = 0u64;
    let mut valid = 0usize;
    for &pid in &pids {
        let rec = kernel.record(pid).expect("record");
        assert!(rec.status.is_ok(), "{mode}: {:?}", rec.status);
        tokens += rec.usage.emitted_tokens;
        if rec.usage.emitted_tokens > 0 {
            per_tok.add(
                rec.latency().expect("exited").as_millis_f64()
                    / rec.usage.emitted_tokens as f64,
            );
        }
        let ok = match mode {
            "json" => json_valid(&rec.output),
            "trie" => ["accepted", "rejected", "needs review"].contains(&rec.output.as_str()),
            _ => true,
        };
        valid += usize::from(ok);
    }
    Point {
        mode: mode.to_string(),
        runs: RUNS,
        mean_latency_per_token_ms: per_tok.mean(),
        mean_tokens: tokens as f64 / RUNS as f64,
        valid_outputs: valid,
        wall_us_per_token: wall.as_micros() as f64 / tokens.max(1) as f64,
    }
}

/// Validates the JSON subset the grammar enforces (no floats/escapes/ws).
fn json_valid(s: &str) -> bool {
    // Re-run the emitted bytes through an equivalent check: balanced via
    // serde_json for the subset (it is strictly contained in real JSON).
    serde_json::from_str::<serde_json::Value>(s).is_ok()
}

fn main() {
    let mut results = Vec::new();
    let mut table = Table::new(
        "E3 — constrained decoding overhead and validity",
        &["mode", "lat/token", "mean tokens", "valid", "wall us/token (LIP compute)"],
    );
    for mode in ["unconstrained", "json", "trie"] {
        eprintln!("E3: {mode} ...");
        let p = run_mode(mode);
        table.row(vec![
            p.mode.clone(),
            format!("{:.1}ms", p.mean_latency_per_token_ms),
            format!("{:.1}", p.mean_tokens),
            format!("{}/{}", p.valid_outputs, p.runs),
            format!("{:.0}", p.wall_us_per_token),
        ]);
        results.push(p);
    }
    table.print();
    println!("\nShape check: grammar masking adds LIP-side compute but identical GPU cost");
    println!("per token; constrained outputs are valid by construction (valid = runs).");
    write_json("exp_constrained", &results);
}
