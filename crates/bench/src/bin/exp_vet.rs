//! E17 — admission-time verification: shed bad programs, hint the scheduler.
//!
//! Two claims, both measured at the client through the SYMR front door:
//!
//! - **Flood**: a workload where every second SUBMIT is a
//!   parseable-but-invalid program (rotating through the verifier's error
//!   classes). With the verifier on, 100% of the bad programs are shed at
//!   the door with `VerifyRejected` and *zero* interpreter fuel — they
//!   never reach the kernel (`serve.sessions.accepted` counts only the
//!   clean half) — and the admitted programs' p99 stays at the clean
//!   baseline. With the verifier off, the same programs are admitted,
//!   scheduled and fault at runtime.
//!
//! - **Hints**: a mixed-cost workload (three statically-bounded short
//!   programs per unbounded agent program) on a contended continuous
//!   executor with a program-aware MLFQ. The verifier's pred bound seeds
//!   each program's ladder position at admission: statically unbounded
//!   programs start at the bottom instead of riding level 0, so short
//!   programs' p99 improves over the hint-free MLFQ.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_vet`
//! (`--smoke` for the CI variant; `--metrics` folds the metrics snapshot
//! into `results/exp_vet.json`.)

use serde::Serialize;
use symphony::{
    ContinuousConfig, ExecMode, KernelConfig, MlfqConfig, QueueDiscipline, SimDuration,
};
use symphony_bench::{write_json_with_metrics, ExpArgs, Table};
use symphony_serve::replay::{run_replay_on, standard_kernel};
use symphony_serve::{ReplaySpec, ServeConfig, ServerCore, WorkloadKind};

#[derive(Debug, Serialize)]
struct Row {
    experiment: String,
    cell: String,
    sessions: usize,
    hostile: usize,
    accepted: u64,
    verify_rejected: u64,
    completed: usize,
    latency_p99_ms: f64,
    short_p99_ms: f64,
    long_p99_ms: f64,
    cost_hints: u64,
}

fn ms(ns: Option<u64>) -> f64 {
    ns.map(|n| n as f64 / 1e6).unwrap_or(f64::NAN)
}

fn counter(core: &ServerCore, name: &str) -> u64 {
    core.kernel()
        .metrics_registry()
        .counter_value(name)
        .unwrap_or(0)
}

/// Flood cell: agent workload, optionally poisoned with hostile programs,
/// against the default (static-executor) serving kernel.
fn run_flood(
    cell: &str,
    sessions: usize,
    hostile_every: usize,
    verify: bool,
    telemetry: bool,
) -> (Row, ServerCore) {
    let spec = ReplaySpec {
        workload: WorkloadKind::Agent,
        sessions,
        conns: 4,
        tenants: 2,
        rtt: SimDuration::from_millis(20),
        mean_gap: SimDuration::from_millis(2),
        seed: 0xe17,
        drop_conns: 0,
        slow_conns: 0,
        hostile_every,
    };
    // Open admission quotas: the verifier must be the only shedder in
    // this experiment.
    let serve_cfg = ServeConfig {
        verify,
        tenant_session_quota: usize::MAX,
        max_live_sessions: usize::MAX,
        ..ServeConfig::default()
    };
    let mut kcfg = KernelConfig::for_tests();
    kcfg.telemetry = telemetry;
    let core = ServerCore::new(standard_kernel(kcfg), serve_cfg);
    let (report, core) = run_replay_on(&spec, core);
    let hostile = report
        .programs
        .iter()
        .filter(|s| s.name.starts_with("hostile-"))
        .count();
    let row = Row {
        experiment: "flood".into(),
        cell: cell.into(),
        sessions,
        hostile,
        accepted: counter(&core, "serve.sessions.accepted"),
        verify_rejected: counter(&core, "serve.sessions.verify_rejected"),
        completed: report.completed(),
        latency_p99_ms: ms(report.latency_p(99.0)),
        short_p99_ms: f64::NAN,
        long_p99_ms: f64::NAN,
        cost_hints: core.kernel().cost_hints(),
    };
    (row, core)
}

/// Hint cell: mixed-cost workload on a contended continuous executor with
/// a program-aware MLFQ; `cost_hints` toggles the verifier's static
/// service estimate.
fn run_hints(cell: &str, sessions: usize, cost_hints: bool) -> (Row, ServerCore) {
    let spec = ReplaySpec {
        workload: WorkloadKind::MixedCost,
        sessions,
        conns: 4,
        tenants: 2,
        rtt: SimDuration::from_millis(10),
        mean_gap: SimDuration::from_millis(1),
        seed: 0xe17,
        drop_conns: 0,
        slow_conns: 0,
        hostile_every: 0,
    };
    let serve_cfg = ServeConfig {
        cost_hints,
        tenant_session_quota: usize::MAX,
        max_live_sessions: usize::MAX,
        ..ServeConfig::default()
    };
    let mut kcfg = KernelConfig::for_tests();
    kcfg.exec = ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: Some(32),
        discipline: QueueDiscipline::Mlfq(MlfqConfig {
            levels: 4,
            quantum_tokens: 16,
        }),
    });
    kcfg.max_batch = 2;
    let core = ServerCore::new(standard_kernel(kcfg), serve_cfg);
    let (report, core) = run_replay_on(&spec, core);
    let row = Row {
        experiment: "hints".into(),
        cell: cell.into(),
        sessions,
        hostile: 0,
        accepted: counter(&core, "serve.sessions.accepted"),
        verify_rejected: counter(&core, "serve.sessions.verify_rejected"),
        completed: report.completed(),
        latency_p99_ms: ms(report.latency_p(99.0)),
        short_p99_ms: ms(report.latency_p_named("short-", 99.0)),
        long_p99_ms: ms(report.latency_p_named("long-", 99.0)),
        cost_hints: core.kernel().cost_hints(),
    };
    (row, core)
}

fn main() {
    let args = ExpArgs::from_args();
    let sessions = if args.smoke { 16 } else { 64 };

    // -- Flood: bad programs die at the door, admitted tail stays clean --
    let mut flood_table = Table::new(
        "E17 — malformed flood at the door (agent workload)",
        &[
            "cell",
            "sessions",
            "hostile",
            "accepted",
            "verify-shed",
            "done",
            "admitted p99",
        ],
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut designated = None;
    let clean_sessions = sessions / 2;
    let cells = [
        ("clean-baseline", clean_sessions, 0usize, true),
        ("flood-verify-on", sessions, 2usize, true),
        ("flood-verify-off", sessions, 2usize, false),
    ];
    for (i, &(cell, n, every, verify)) in cells.iter().enumerate() {
        let is_designated = i == 1;
        let (row, core) = run_flood(cell, n, every, verify, args.telemetry.record(is_designated));
        flood_table.row(vec![
            row.cell.clone(),
            row.sessions.to_string(),
            row.hostile.to_string(),
            row.accepted.to_string(),
            row.verify_rejected.to_string(),
            row.completed.to_string(),
            format!("{:.2} ms", row.latency_p99_ms),
        ]);
        if is_designated {
            designated = args.telemetry.export_designated(core.kernel(), true);
        }
        rows.push(row);
    }
    flood_table.print();

    // -- Hints: static pred bounds seed the MLFQ ladder --
    let mut hint_table = Table::new(
        "E17 — static cost hints on a contended MLFQ (mixed-cost workload)",
        &[
            "cell",
            "sessions",
            "done",
            "hints",
            "short p99",
            "long p99",
            "all p99",
        ],
    );
    for (cell, hints) in [("mlfq-no-hints", false), ("mlfq-hints", true)] {
        let (row, _) = run_hints(cell, sessions, hints);
        hint_table.row(vec![
            row.cell.clone(),
            row.sessions.to_string(),
            row.completed.to_string(),
            row.cost_hints.to_string(),
            format!("{:.2} ms", row.short_p99_ms),
            format!("{:.2} ms", row.long_p99_ms),
            format!("{:.2} ms", row.latency_p99_ms),
        ]);
        rows.push(row);
    }
    hint_table.print();

    println!(
        "\nReading: with the verifier on, every hostile program is shed at the door \
         with VerifyRejected and zero interpreter fuel — `accepted` counts only the \
         clean half, and the admitted p99 matches the clean baseline. On the \
         contended MLFQ, the verifier's static pred bound seeds each program's \
         ladder position: unbounded programs start at the bottom, so the \
         statically-cheap short programs' p99 improves without touching their own \
         schedule."
    );
    write_json_with_metrics("exp_vet", &rows, designated.as_ref());
}
