//! E7 — the §2 code-editor motivation, quantified.
//!
//! Per-keystroke autocompletion over a growing buffer, three ways:
//!
//! - `symphony-incremental`: one LIP keeps the buffer's KV file for the
//!   whole session and appends only newly typed tokens.
//! - `prompt-apc`: a prompt server with automatic prefix caching — each
//!   keystroke resubmits the buffer; the cache absorbs most of it.
//! - `prompt-nocache`: a stateless prompt server re-prefills everything.
//!
//! Expected: incremental per-keystroke latency is near-constant in buffer
//! size; no-cache grows linearly; APC sits close to incremental but pays
//! block-granular re-prefill and request overhead.
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_editor`

use serde::Serialize;
use symphony::{Kernel, KernelConfig, SysError};
use symphony_baseline::{Engine, EngineConfig, PromptRequest};
use symphony_bench::{write_json, Table};
use symphony_sim::{SimDuration, SimTime};
use symphony_tokenizer::Bpe;
use symphony_workloads::EditorWorkload;

const KEYSTROKES: usize = 24;
const SUGGESTION_TOKENS: usize = 4;

#[derive(Debug, Clone, Serialize)]
struct Point {
    mode: String,
    buffer_words: usize,
    mean_keystroke_latency_ms: f64,
    total_pred_tokens: u64,
}

fn trace(buffer_words: usize) -> symphony_workloads::EditorTrace {
    EditorWorkload::new(buffer_words, KEYSTROKES, SimDuration::from_millis(250), 11)
        .next_trace()
}

fn run_symphony(buffer_words: usize) -> Point {
    let mut cfg = KernelConfig::paper_setup();
    cfg.model = cfg.model.with_mean_output_tokens(100_000);
    cfg.trace = false;
    let mut kernel = Kernel::new(cfg);
    let tr = trace(buffer_words);
    let tr2 = tr.clone();
    let pid = kernel.spawn_process("editor", "", move |ctx| {
        let kv = ctx.kv_create()?;
        let initial = ctx.tokenize(&tr2.initial_buffer)?;
        let mut dist = ctx
            .pred_positions(kv, &initial, 0)?
            .pop()
            .ok_or(SysError::BadArgument)?;
        let mut pos = initial.len() as u32;
        let mut latencies_ns: Vec<u64> = Vec::new();
        for (chunk, gap) in tr2.appends.iter().zip(&tr2.gaps) {
            ctx.sleep(*gap)?;
            let t0 = ctx.now()?;
            let typed = ctx.tokenize(chunk)?;
            if !typed.is_empty() {
                dist = ctx
                    .pred_positions(kv, &typed, pos)?
                    .pop()
                    .ok_or(SysError::BadArgument)?;
                pos += typed.len() as u32;
            }
            // Probe a short suggestion on a fork, keeping the buffer exact.
            let probe = ctx.kv_fork(kv)?;
            let mut d = dist.clone();
            let mut p = pos;
            for _ in 0..SUGGESTION_TOKENS {
                let t = d.argmax();
                if t == ctx.eos() {
                    break;
                }
                d = ctx.pred(probe, &[(t, p)])?.remove(0);
                p += 1;
            }
            ctx.kv_remove(probe)?;
            let t1 = ctx.now()?;
            latencies_ns.push(t1.duration_since(t0).as_nanos());
        }
        let mean =
            latencies_ns.iter().sum::<u64>() as f64 / latencies_ns.len().max(1) as f64 / 1e6;
        ctx.emit(&format!("{mean}"))?;
        ctx.kv_remove(kv)?;
        Ok(())
    });
    kernel.run();
    let rec = kernel.record(pid).expect("record");
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    Point {
        mode: "symphony-incremental".into(),
        buffer_words,
        mean_keystroke_latency_ms: rec.output.parse().expect("mean latency"),
        total_pred_tokens: rec.usage.pred_tokens,
    }
}

fn run_prompt(buffer_words: usize, apc: bool) -> Point {
    let bpe = Bpe::default_tokenizer();
    let tr = trace(buffer_words);
    let mut ecfg = if apc {
        EngineConfig::vllm_like()
    } else {
        EngineConfig::vllm_noapc()
    };
    ecfg.model = ecfg.model.with_mean_output_tokens(100_000);
    let mut engine = Engine::new(ecfg);

    // Each keystroke submits the whole buffer as a fresh prompt.
    let mut buffer = tr.initial_buffer.clone();
    let mut at = SimTime::ZERO;
    let mut requests = Vec::new();
    for (i, (chunk, gap)) in tr.appends.iter().zip(&tr.gaps).enumerate() {
        at += *gap;
        buffer.push_str(chunk);
        requests.push(PromptRequest {
            id: i as u64,
            arrival: at,
            prompt: bpe.encode(&buffer),
            max_tokens: SUGGESTION_TOKENS,
            temperature: 0.0,
        });
    }
    let (completions, stats) = engine.run(requests);
    let mut lat = symphony_sim::Series::new();
    for c in &completions {
        lat.add(c.latency().as_millis_f64());
    }
    Point {
        mode: if apc { "prompt-apc" } else { "prompt-nocache" }.into(),
        buffer_words,
        mean_keystroke_latency_ms: lat.mean(),
        total_pred_tokens: stats.prompt_tokens - stats.cached_prompt_tokens
            + stats.generated_tokens,
    }
}

fn main() {
    let mut results = Vec::new();
    let mut table = Table::new(
        "E7 — editor autocompletion: per-keystroke latency vs buffer size",
        &["buffer words", "incremental", "prompt+apc", "prompt-nocache", "pred tokens i/a/n"],
    );
    for buffer_words in [200usize, 800, 2000] {
        eprintln!("E7: buffer={buffer_words} words ...");
        let s = run_symphony(buffer_words);
        let a = run_prompt(buffer_words, true);
        let n = run_prompt(buffer_words, false);
        table.row(vec![
            buffer_words.to_string(),
            format!("{:.1}ms", s.mean_keystroke_latency_ms),
            format!("{:.1}ms", a.mean_keystroke_latency_ms),
            format!("{:.1}ms", n.mean_keystroke_latency_ms),
            format!(
                "{}/{}/{}",
                s.total_pred_tokens, a.total_pred_tokens, n.total_pred_tokens
            ),
        ]);
        results.extend([s, a, n]);
    }
    table.print();
    println!("\nShape check: incremental latency is ~flat in buffer size; no-cache grows");
    println!("with the buffer; APC tracks incremental at block granularity.");
    write_json("exp_editor", &results);
}
