//! E5 — §4.3 parallel generation with shared prefixes (Tree-of-Thought).
//!
//! The same branching workload runs two ways: branches `kv_fork` the
//! problem context (copy-on-write pages) versus each branch re-prefilling
//! the full context independently. Fork saves both memory (one prefix +
//! per-branch tails) and GPU time (no duplicate prefill).
//!
//! Run: `cargo run -p symphony-bench --release --bin exp_tot`

use serde::Serialize;
use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig, Mode, SysError};
use symphony_bench::{write_json, Table};

const PREFIX_TOKENS: usize = 600;
const TOKENS_PER_BRANCH: usize = 24;

#[derive(Debug, Clone, Serialize)]
struct Point {
    mode: String,
    branching: usize,
    latency_ms: f64,
    peak_pages: usize,
    gpu_tokens: u64,
}

fn run_point(fork: bool, branching: usize) -> Point {
    let mut cfg = KernelConfig::paper_setup();
    cfg.model = cfg.model.with_mean_output_tokens(100_000);
    cfg.trace = false;
    let mut kernel = Kernel::new(cfg);
    let prefix_text = symphony_tokenizer::CorpusGen::new(5).paragraph(PREFIX_TOKENS);
    let prefix_tokens = kernel.tokenizer().encode(&prefix_text);
    let n_prefix = prefix_tokens.len();
    kernel
        .preload_kv("problem.kv", &prefix_tokens, Mode::SHARED_READ, true)
        .expect("preload");
    let prefix_text = std::sync::Arc::new(prefix_text);

    let text = prefix_text.clone();
    let pid = kernel.spawn_process("tot", &branching.to_string(), move |ctx| {
        let branching: usize = ctx.args().parse().map_err(|_| SysError::BadArgument)?;
        let mut tids = Vec::new();
        for b in 0..branching {
            let text = text.clone();
            let prefix = if fork {
                Some(ctx.kv_open("problem.kv")?)
            } else {
                None
            };
            tids.push(ctx.spawn(move |tctx| {
                let kv = match prefix {
                    Some(p) => tctx.kv_fork(p)?,
                    None => {
                        // Independent context: re-prefill everything.
                        let f = tctx.kv_create()?;
                        let toks = tctx.tokenize(&text)?;
                        tctx.pred_positions(f, &toks, 0)?;
                        f
                    }
                };
                debug_assert_eq!(tctx.kv_len(kv)?, n_prefix);
                let seed = tctx.tokenize(&format!("hypothesis {b}:"))?;
                generate(
                    tctx,
                    kv,
                    &seed,
                    &GenOpts {
                        max_tokens: TOKENS_PER_BRANCH,
                        temperature: 0.8,
                        emit: false,
                        ..Default::default()
                    },
                )?;
                tctx.kv_remove(kv)?;
                Ok(())
            })?);
        }
        for t in tids {
            if !ctx.join(t)?.is_ok() {
                return Err(SysError::ThreadFailed);
            }
        }
        Ok(())
    });

    // Peak page usage is observable after the run via high-water marks we
    // sample here by polling is unavailable; instead measure allocated pages
    // mid-run via the kv accounting at completion plus fork stats. We use
    // total GPU tokens processed and the store's swap/cow counters as the
    // memory-pressure proxies, and compute peak analytically.
    kernel.run();
    let rec = kernel.record(pid).expect("record").clone();
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    let gm = kernel.gpu_metrics();
    // Analytic peak: prefix pages shared once (fork) or per branch (no fork)
    // plus per-branch tails.
    let pt = kernel.store().page_tokens();
    let prefix_pages = n_prefix.div_ceil(pt);
    let tail_pages = (TOKENS_PER_BRANCH + 8).div_ceil(pt) + 1;
    let peak_pages = if fork {
        prefix_pages + branching * tail_pages
    } else {
        branching * (prefix_pages + tail_pages)
    };
    Point {
        mode: if fork { "fork" } else { "independent" }.to_string(),
        branching,
        latency_ms: rec.latency().expect("exited").as_millis_f64(),
        peak_pages,
        gpu_tokens: gm.tokens,
    }
}

fn main() {
    let mut results = Vec::new();
    let mut table = Table::new(
        "E5 — ToT branches: kv_fork (COW) vs independent prefill (600-token prefix)",
        &["branches", "fork lat", "indep lat", "fork pages", "indep pages", "fork gpu-tok", "indep gpu-tok"],
    );
    for branching in [2usize, 4, 8, 16] {
        eprintln!("E5: branching={branching} ...");
        let f = run_point(true, branching);
        let i = run_point(false, branching);
        table.row(vec![
            branching.to_string(),
            format!("{:.0}ms", f.latency_ms),
            format!("{:.0}ms", i.latency_ms),
            f.peak_pages.to_string(),
            i.peak_pages.to_string(),
            f.gpu_tokens.to_string(),
            i.gpu_tokens.to_string(),
        ]);
        results.push(f);
        results.push(i);
    }
    table.print();
    println!("\nShape check: fork memory ≈ one prefix + branch tails; independent memory and");
    println!("GPU tokens scale the full prefix by the branch count.");
    write_json("exp_tot", &results);
}
