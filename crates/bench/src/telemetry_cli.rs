//! Shared CLI plumbing for the experiment binaries: `--smoke`,
//! `--trace <path>`, `--metrics`, and the designated-run telemetry export.
//!
//! Telemetry is opt-in per invocation and never changes experiment
//! results: the flags only decide whether the kernel's event bus records
//! (for a Perfetto export) and whether the unified metrics snapshot is
//! folded into the JSON report. A run with and without the flags produces
//! the same tables and the same `results` payload. Every binary parses the
//! same way via [`ExpArgs::from_args`], and the one-designated-run export
//! dance lives in [`TelemetryOpts::export_designated`] instead of being
//! copy-pasted per experiment.

use std::io::Write as _;
use std::path::Path;

use symphony::{Kernel, MetricsSnapshot};

/// Common experiment arguments: the CI smoke switch plus telemetry flags.
#[derive(Debug, Clone, Default)]
pub struct ExpArgs {
    /// `--smoke`: run the tiny-scale CI variant.
    pub smoke: bool,
    /// `--trace` / `--metrics` options.
    pub telemetry: TelemetryOpts,
}

impl ExpArgs {
    /// Parses from `std::env::args()`, ignoring unrelated arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ExpArgs::from_slice(&args)
    }

    /// Parses from an explicit argument slice (testable form).
    pub fn from_slice(args: &[String]) -> Self {
        ExpArgs {
            smoke: args.iter().any(|a| a == "--smoke"),
            telemetry: TelemetryOpts::from_slice(args),
        }
    }
}

/// Telemetry options parsed from the process arguments.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOpts {
    /// `--trace <path>`: write a Chrome trace-event JSON file of the
    /// designated run to `path`.
    pub trace_path: Option<String>,
    /// `--metrics`: fold a metrics snapshot of the designated run into the
    /// JSON report.
    pub metrics: bool,
}

impl TelemetryOpts {
    /// Parses `--trace <path>` (or `--trace=<path>`) and `--metrics` from
    /// `std::env::args()`, ignoring unrelated arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        TelemetryOpts::from_slice(&args)
    }

    /// Parses from an explicit argument slice (testable form of
    /// [`TelemetryOpts::from_args`]).
    pub fn from_slice(args: &[String]) -> Self {
        let mut opts = TelemetryOpts::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trace" => {
                    if let Some(path) = args.get(i + 1) {
                        opts.trace_path = Some(path.clone());
                        i += 1;
                    } else {
                        eprintln!("warn: --trace needs a path argument; ignoring");
                    }
                }
                "--metrics" => opts.metrics = true,
                a => {
                    if let Some(path) = a.strip_prefix("--trace=") {
                        opts.trace_path = Some(path.to_string());
                    }
                }
            }
            i += 1;
        }
        opts
    }

    /// Whether the kernel of the designated run should record events.
    pub fn wants_trace(&self) -> bool {
        self.trace_path.is_some()
    }

    /// Whether any telemetry output was requested.
    pub fn enabled(&self) -> bool {
        self.trace_path.is_some() || self.metrics
    }

    /// Writes `trace_json` to the `--trace` path, if one was given.
    pub fn write_trace(&self, trace_json: &str) {
        let Some(path) = &self.trace_path else {
            return;
        };
        let path = Path::new(path);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("warn: cannot create {}: {e}", dir.display());
                    return;
                }
            }
        }
        match std::fs::File::create(path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(trace_json.as_bytes()) {
                    eprintln!("warn: write {}: {e}", path.display());
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("warn: create {}: {e}", path.display()),
        }
    }

    /// The metrics snapshot to fold into the report: `snap` when
    /// `--metrics` was given, `None` otherwise (legacy byte-identical
    /// report).
    pub fn report_metrics<'a>(&self, snap: &'a MetricsSnapshot) -> Option<&'a MetricsSnapshot> {
        if self.metrics {
            Some(snap)
        } else {
            None
        }
    }

    /// Whether a run's kernel should record telemetry events: only the
    /// designated run, and only when `--trace` asked for an export.
    pub fn record(&self, designated: bool) -> bool {
        designated && self.wants_trace()
    }

    /// The per-experiment designated-run export: writes the Chrome trace
    /// when `--trace` was given and hands back the metrics snapshot for
    /// report folding. Non-designated runs export nothing.
    pub fn export_designated(&self, kernel: &Kernel, designated: bool) -> Option<MetricsSnapshot> {
        if !designated {
            return None;
        }
        if self.wants_trace() {
            self.write_trace(&kernel.export_chrome_trace());
        }
        Some(kernel.metrics_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_trace_and_metrics() {
        let o = TelemetryOpts::from_slice(&strs(&["--trace", "out.json", "--metrics"]));
        assert_eq!(o.trace_path.as_deref(), Some("out.json"));
        assert!(o.metrics);
        assert!(o.enabled());
        assert!(o.wants_trace());
    }

    #[test]
    fn parses_equals_form_and_ignores_unknown() {
        let o = TelemetryOpts::from_slice(&strs(&["--fast", "--trace=t.json", "x"]));
        assert_eq!(o.trace_path.as_deref(), Some("t.json"));
        assert!(!o.metrics);
    }

    #[test]
    fn default_is_disabled() {
        let o = TelemetryOpts::from_slice(&[]);
        assert!(!o.enabled());
        assert!(o.trace_path.is_none());
        assert!(!o.record(true));
    }

    #[test]
    fn exp_args_parse_smoke_alongside_telemetry() {
        let a = ExpArgs::from_slice(&strs(&["--smoke", "--trace", "t.json"]));
        assert!(a.smoke);
        assert!(a.telemetry.record(true));
        assert!(!a.telemetry.record(false));
        let b = ExpArgs::from_slice(&strs(&["--metrics"]));
        assert!(!b.smoke);
        assert!(b.telemetry.metrics);
    }
}
