//! Trace regression tests for the continuous (iteration-level) executor:
//! same seed ⇒ byte-identical Chrome trace, and a checked-in golden
//! fixture so the `chunk`/`preempt` instrumentation cannot drift silently.

use symphony::{
    ContinuousConfig, Ctx, ExecMode, Kernel, KernelConfig, MlfqConfig, QueueDiscipline,
    SysError,
};

/// A miniature exp_sched point: three programs racing chunked prefills and
/// decode on a GPU pool too small for all of them, under MLFQ — the run
/// exercises admission, chunking, and preemption in one trace.
fn sched_kernel(seed: u64) -> (Kernel, Vec<symphony::Pid>) {
    let mut cfg = KernelConfig::for_tests();
    cfg.seed = seed;
    cfg.telemetry = true;
    cfg.exec = ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: Some(8),
        discipline: QueueDiscipline::Mlfq(MlfqConfig {
            levels: 3,
            quantum_tokens: 16,
        }),
    });
    // 14 pages of 4 tokens: the three programs cannot all stay resident.
    cfg.gpu_kv_bytes_override = Some(14 * 4 * 512);
    let mut k = Kernel::new(cfg);
    let mut pids = Vec::new();
    for p in 0..3usize {
        pids.push(k.spawn_process(&format!("prog{p}"), "", move |ctx: &mut Ctx| {
            let kv = ctx.kv_create()?;
            let prompt: Vec<(u32, u32)> =
                (0..24).map(|j| (1 + ((p * 31 + j * 7) % 300) as u32, j as u32)).collect();
            let mut dist = ctx.pred(kv, &prompt)?.pop().ok_or(SysError::BadArgument)?;
            for i in 0..6u32 {
                dist = ctx.pred(kv, &[(dist.argmax(), 24 + i)])?.remove(0);
            }
            ctx.kv_remove(kv)?;
            Ok(())
        }));
    }
    (k, pids)
}

fn run_traced(seed: u64) -> (Kernel, Vec<symphony::Pid>, String) {
    let (mut k, pids) = sched_kernel(seed);
    k.run();
    let trace = k.export_chrome_trace();
    (k, pids, trace)
}

#[test]
fn same_seed_continuous_run_exports_byte_identical_trace() {
    let (ka, pids, a) = run_traced(42);
    let (_, _, b) = run_traced(42);
    assert_eq!(a, b, "same seed must export byte-identical traces");
    for &pid in &pids {
        let rec = ka.record(pid).unwrap();
        assert!(rec.status.is_ok(), "{:?}", rec.status);
    }
    // The continuous executor's instrumentation is present: chunked
    // prefill instants on the GPU track, preemptions on the scheduler
    // track, and swaps from the recovery path.
    assert!(ka.prefill_chunks() > 0, "run should chunk prefills");
    assert!(ka.preemptions() > 0, "pool is too small; run should preempt");
    for needle in ["\"chunk\"", "\"preempt\"", "kv_swap", "gpu_batch"] {
        assert!(a.contains(needle), "trace missing {needle}");
    }
}

/// A tiny fixed-seed continuous-mode run whose exported trace is checked
/// into the repo. Regenerate after intentional format/instrumentation
/// changes with:
/// `UPDATE_GOLDEN=1 cargo test -p symphony-bench --test sched_tests golden`
#[test]
fn golden_sched_trace_matches() {
    let (k, _, trace) = run_traced(0x5C_4E_D0);
    assert_eq!(k.events_dropped(), 0, "golden run must not drop events");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/tiny_sched_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden/");
        std::fs::write(&path, &trace).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden trace {}: {e}", path.display()));
    assert_eq!(
        trace,
        golden,
        "continuous-mode trace drifted from the golden fixture; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}
