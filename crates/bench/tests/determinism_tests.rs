//! Determinism regression tests over the experiment setups.
//!
//! Every experiment binary leans on the same guarantee: a `(seed, config,
//! workload)` triple replays bit-identically. These tests rebuild the
//! `exp_toolcalls` and `exp_chat` setups in miniature, run each twice with
//! the same seed, and require identical per-process outputs and aggregate
//! stats — the regression net under the fault-injection subsystem, whose
//! RNG streams must not perturb fault-free runs.

use symphony::sampling::{generate, GenOpts};
use symphony::{Kernel, KernelConfig, SimDuration, ToolOutcome, ToolSpec};
use symphony_workloads::ChatWorkload;

/// Everything observable about a finished run, comparable with `==`.
#[derive(Debug, PartialEq)]
struct RunDigest {
    trace_fingerprint: u64,
    // (name, status_ok, output, syscalls, pred_tokens, tool_calls, latency_ns)
    procs: Vec<(String, bool, String, u64, u64, u64, Option<u64>)>,
    gpu_ok: u64,
    gpu_new_tokens: u64,
    kv_cow_copies: u64,
}

fn digest(k: &Kernel) -> RunDigest {
    RunDigest {
        trace_fingerprint: k.trace().fingerprint(),
        procs: k
            .records()
            .map(|r| {
                (
                    r.name.clone(),
                    r.status.is_ok(),
                    r.output.clone(),
                    r.usage.syscalls,
                    r.usage.pred_tokens,
                    r.usage.tool_calls,
                    r.latency().map(|d| d.as_nanos()),
                )
            })
            .collect(),
        gpu_ok: k.gpu_metrics().requests_ok,
        gpu_new_tokens: k.gpu_metrics().tokens,
        kv_cow_copies: k.kv_stats().cow_copies,
    }
}

/// The `exp_toolcalls` setup: an agent interleaving generation segments
/// with server-side tool calls (E2's `server-lip` mode, scaled down).
fn toolcalls_run(seed: u64) -> RunDigest {
    let mut cfg = KernelConfig::for_tests();
    cfg.seed = seed;
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "api",
        ToolSpec::new(SimDuration::from_millis(25), |args| {
            ToolOutcome::Ok(format!("api result for {args}"))
        }),
    );
    for p in 0..3u64 {
        k.spawn_process(&format!("agent{p}"), "", move |ctx| {
            let opts = GenOpts {
                max_tokens: 8,
                temperature: 0.0,
                emit: false,
                ..Default::default()
            };
            let kv = ctx.kv_create()?;
            let mut next = ctx.tokenize("an agent plan with several lookups")?;
            for i in 0..4 {
                generate(ctx, kv, &next, &opts)?;
                let result = ctx.call_tool("api", &format!("call {i}"))?;
                next = ctx.tokenize(&result)?;
            }
            let out = generate(ctx, kv, &next, &opts)?;
            ctx.emit_tokens(&out.tokens)?;
            Ok(())
        });
    }
    k.run();
    digest(&k)
}

/// The `exp_chat` setup: multi-round sessions with retained KV (E9's
/// `retained` mode, scaled down), driven by the ChatWorkload generator.
fn chat_run(seed: u64) -> RunDigest {
    let mut cfg = KernelConfig::for_tests();
    cfg.seed = seed;
    let mut k = Kernel::new(cfg);
    let mut wl = ChatWorkload::new(4.0, SimDuration::from_millis(500), 40, 0xC4A7);
    for i in 0..4 {
        let session = wl.next_session();
        k.spawn_process(&format!("chat{i}"), "", move |ctx| {
            let opts = GenOpts {
                max_tokens: 16,
                temperature: 0.0,
                emit: false,
                ..Default::default()
            };
            let kv = ctx.kv_create()?;
            let mut lat = Vec::new();
            for (turn, gap) in session.turns.iter().zip(&session.gaps) {
                ctx.sleep(*gap)?;
                let t0 = ctx.now()?;
                let user = ctx.tokenize(&format!("\nuser: {turn}\nassistant:"))?;
                generate(ctx, kv, &user, &opts)?;
                lat.push(format!("{:.3}", ctx.now()?.duration_since(t0).as_millis_f64()));
            }
            ctx.kv_remove(kv)?;
            ctx.emit(&lat.join(","))?;
            Ok(())
        });
    }
    k.run();
    digest(&k)
}

#[test]
fn exp_toolcalls_setup_is_deterministic() {
    let a = toolcalls_run(42);
    let b = toolcalls_run(42);
    assert!(a.procs.iter().all(|p| p.1), "all agents finish: {a:?}");
    assert!(a.procs.iter().all(|p| p.5 == 4), "4 tool calls each");
    assert_eq!(a, b, "same seed must replay bit-identically");
}

#[test]
fn exp_chat_setup_is_deterministic() {
    let a = chat_run(42);
    let b = chat_run(42);
    assert!(a.procs.iter().all(|p| p.1), "all sessions finish: {a:?}");
    assert!(a.gpu_new_tokens > 0, "work actually happened");
    assert_eq!(a, b, "same seed must replay bit-identically");
}

#[test]
fn seed_changes_the_run() {
    // The guarantee is meaningful only if the seed actually steers the run:
    // tool latencies and LIP RNG streams derive from it.
    assert_ne!(
        toolcalls_run(1).trace_fingerprint,
        toolcalls_run(2).trace_fingerprint
    );
}

#[test]
fn error_paths_are_deterministic_too() {
    // Determinism must hold for failing runs as well: a process that
    // exhausts a limit exits with the same typed error at the same virtual
    // time in both runs.
    fn run() -> RunDigest {
        let mut k = Kernel::new(KernelConfig::for_tests());
        let limits = symphony::Limits {
            max_pred_tokens: Some(10),
            ..Default::default()
        };
        k.spawn_process_with_limits("capped", "", limits, |ctx| {
            let kv = ctx.kv_create()?;
            for pos in 0..32u32 {
                ctx.pred(kv, &[(1 + pos, pos)])?;
            }
            Ok(())
        });
        k.run();
        digest(&k)
    }
    let (a, b) = (run(), run());
    assert!(!a.procs[0].1, "the capped process must fail");
    assert_eq!(a, b);
}

#[test]
fn workload_generator_is_deterministic() {
    let mut a = ChatWorkload::new(4.0, SimDuration::from_millis(500), 40, 9);
    let mut b = ChatWorkload::new(4.0, SimDuration::from_millis(500), 40, 9);
    for _ in 0..5 {
        let (sa, sb) = (a.next_session(), b.next_session());
        assert_eq!(sa.turns, sb.turns);
        assert_eq!(sa.gaps, sb.gaps);
    }
}
