//! Causal-tracing invariants behind `exp_profile` (E15).
//!
//! Two guarantees the critical-path layer leans on:
//!
//! 1. **Single-rootedness** — every syscall span the kernel emits lands in
//!    exactly one thread of exactly one root program when the event stream
//!    is reconstructed into a forest: no span is dropped, duplicated, or
//!    shared between programs. Checked property-style over randomised
//!    fleet shapes.
//! 2. **Byte-stable reports** — the same seed produces the same span
//!    forest and therefore the same critical-path report, byte for byte.
//!    A checked-in golden fixture catches attribution drift the way the
//!    golden Chrome traces catch event drift.
//!
//! Bless the fixture after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p symphony-bench --test profile_tests`.

use proptest::prelude::*;
use symphony::{
    analyze, build_forest, render_report, Ctx, EventKind, Kernel, KernelConfig, SimDuration,
    SimTime, SysError, ToolOutcome, ToolSpec,
};

/// A miniature of the E15 fleet: a coordinator that collects one IPC
/// report per worker, workers that prefill/decode, fetch evidence on a
/// helper thread, swap their KV across the tool call, and report back.
fn fleet_kernel(workers: usize, decode: usize, tool_ms: u64, seed: u64) -> Kernel {
    let mut cfg = KernelConfig::for_tests();
    cfg.seed = seed;
    cfg.telemetry = true;
    cfg.causal = true;
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "search",
        ToolSpec::fixed(SimDuration::from_millis(tool_ms), |args| {
            ToolOutcome::Ok(format!("hits for {args}"))
        }),
    );
    k.spawn_process("coordinator", &workers.to_string(), move |ctx| {
        let n: usize = ctx.args().parse().map_err(|_| SysError::BadArgument)?;
        let kv = ctx.kv_create()?;
        let prompt = ctx.tokenize("collect the fleet's findings")?;
        let toks: Vec<(u32, u32)> =
            prompt.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        let mut dist = ctx.pred(kv, &toks)?.pop().ok_or(SysError::BadArgument)?;
        let mut pos = toks.len() as u32;
        for _ in 0..n {
            ctx.recv_msg()?;
            let tok = dist.argmax();
            dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
            pos += 1;
        }
        ctx.kv_remove(kv)?;
        Ok(())
    });
    for i in 0..workers {
        let at = SimTime::ZERO + SimDuration::from_millis(2 * i as u64 + 1);
        k.schedule_process(at, &format!("worker{i}"), "", move |ctx| {
            worker(ctx, i, decode)
        });
    }
    k
}

fn worker(ctx: &mut Ctx, seed: usize, decode: usize) -> Result<(), SysError> {
    let kv = ctx.kv_create()?;
    let prompt = ctx.tokenize(&format!("investigate lead {seed}"))?;
    let toks: Vec<(u32, u32)> =
        prompt.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
    let mut dist = ctx.pred(kv, &toks)?.pop().ok_or(SysError::BadArgument)?;
    let mut pos = toks.len() as u32;
    let helper = ctx.spawn(move |hctx| {
        hctx.call_tool("search", &format!("evidence {seed}"))?;
        Ok(())
    })?;
    for _ in 0..decode {
        let tok = dist.argmax();
        dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
        pos += 1;
    }
    ctx.kv_swap_out(kv)?;
    ctx.join(helper)?;
    ctx.kv_swap_in(kv)?;
    let tok = dist.argmax();
    ctx.pred(kv, &[(tok, pos)])?;
    let coord = ctx.lookup_process("coordinator")?.ok_or(SysError::NotFound)?;
    ctx.send_msg(coord, &format!("report {seed}"))?;
    ctx.kv_remove(kv)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every emitted syscall span reaches exactly one root program: the
    /// forest's span count equals the stream's `SyscallEnter` count (none
    /// lost, none duplicated), program pids are unique (none shared), and
    /// the phase buckets of every program partition its e2e latency.
    #[test]
    fn every_span_reaches_exactly_one_root_program(
        workers in 1usize..4,
        decode in 1usize..5,
        tool_ms in 1u64..20,
        seed in 0u64..1_000,
    ) {
        let mut k = fleet_kernel(workers, decode, tool_ms, seed);
        k.run();
        prop_assert_eq!(k.events_dropped(), 0);
        for rec in k.records() {
            prop_assert!(rec.status.is_ok(), "{}: {:?}", rec.name, rec.status);
        }
        let enters = k
            .telemetry_events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SyscallEnter { .. }))
            .count();
        let forest = build_forest(k.telemetry_events());
        prop_assert_eq!(forest.span_count(), enters, "spans lost or duplicated");
        let mut pids: Vec<u64> = forest.programs.iter().map(|p| p.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        prop_assert_eq!(pids.len(), forest.programs.len(), "pid owned by two programs");
        prop_assert_eq!(forest.programs.len(), workers + 1);
        for b in analyze(&forest) {
            prop_assert_eq!(
                b.attributed_ns(),
                b.total_ns,
                "{}: buckets must partition e2e latency",
                b.name
            );
        }
    }
}

/// Same seed ⇒ same forest ⇒ same critical-path report bytes, pinned by
/// a checked-in fixture.
#[test]
fn golden_critical_path_report_matches() {
    let run = || {
        let mut k = fleet_kernel(2, 3, 7, 0xE15);
        k.run();
        let forest = build_forest(k.telemetry_events());
        render_report(&analyze(&forest))
    };
    let report = run();
    assert_eq!(report, run(), "same seed must render identical reports");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/profile_report.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden/");
        std::fs::write(&path, &report).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden report {}: {e}", path.display()));
    assert_eq!(
        report, golden,
        "critical-path report drifted from the golden fixture; if intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}
