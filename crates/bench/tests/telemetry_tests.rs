//! Telemetry regression tests over the `exp_toolcalls` setup.
//!
//! Three guarantees, each load-bearing for the observability layer:
//!
//! 1. **Determinism** — same seed ⇒ byte-identical Chrome trace export,
//!    so a trace file is itself a regression artifact (the CI golden
//!    trace depends on this).
//! 2. **Well-formedness** — syscall and batch spans nest properly and the
//!    stream is monotone on the virtual clock, so Perfetto renders real
//!    intervals rather than garbage.
//! 3. **Zero cost when disabled** — a telemetry-off run constructs zero
//!    events and produces bit-identical kernel results, so the default
//!    path pays only a branch.

use symphony::sampling::{generate, GenOpts};
use symphony::{
    Collector, EventKind, Kernel, KernelConfig, SimDuration, ToolOutcome, ToolSpec,
};

/// Everything observable about a finished run, comparable with `==`.
#[derive(Debug, PartialEq)]
struct RunDigest {
    trace_fingerprint: u64,
    procs: Vec<(String, bool, String, u64, u64, Option<u64>)>,
    gpu_ok: u64,
    gpu_new_tokens: u64,
    kv_cow_copies: u64,
}

fn digest(k: &Kernel) -> RunDigest {
    RunDigest {
        trace_fingerprint: k.trace().fingerprint(),
        procs: k
            .records()
            .map(|r| {
                (
                    r.name.clone(),
                    r.status.is_ok(),
                    r.output.clone(),
                    r.usage.syscalls,
                    r.usage.pred_tokens,
                    r.latency().map(|d| d.as_nanos()),
                )
            })
            .collect(),
        gpu_ok: k.gpu_metrics().requests_ok,
        gpu_new_tokens: k.gpu_metrics().tokens,
        kv_cow_copies: k.kv_stats().cow_copies,
    }
}

/// The `exp_toolcalls` setup in miniature (E2's `server-lip` mode):
/// agents interleaving generation segments with server-side tool calls.
fn toolcalls_kernel(seed: u64, telemetry: bool) -> Kernel {
    let mut cfg = KernelConfig::for_tests();
    cfg.seed = seed;
    cfg.telemetry = telemetry;
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "api",
        ToolSpec::new(SimDuration::from_millis(25), |args| {
            ToolOutcome::Ok(format!("api result for {args}"))
        }),
    );
    for p in 0..3u64 {
        k.spawn_process(&format!("agent{p}"), "", move |ctx| {
            let opts = GenOpts {
                max_tokens: 8,
                temperature: 0.0,
                emit: false,
                ..Default::default()
            };
            let kv = ctx.kv_create()?;
            let mut next = ctx.tokenize("an agent plan with several lookups")?;
            for i in 0..4 {
                generate(ctx, kv, &next, &opts)?;
                let result = ctx.call_tool("api", &format!("call {i}"))?;
                next = ctx.tokenize(&result)?;
            }
            let out = generate(ctx, kv, &next, &opts)?;
            ctx.emit_tokens(&out.tokens)?;
            Ok(())
        });
    }
    k
}

fn run_traced(seed: u64) -> (Kernel, String) {
    let mut k = toolcalls_kernel(seed, true);
    k.run();
    let trace = k.export_chrome_trace();
    (k, trace)
}

#[test]
fn same_seed_exports_byte_identical_trace() {
    let (ka, a) = run_traced(42);
    let (_, b) = run_traced(42);
    assert!(ka.telemetry_constructed() > 0, "events were recorded");
    assert_eq!(a, b, "same seed must export byte-identical traces");
    // And the trace actually carries the expected tracks.
    for needle in [
        "\"name\":\"kernel\"",
        "\"name\":\"scheduler\"",
        "\"name\":\"gpu\"",
        "\"name\":\"batches\"",
        "\"name\":\"agent0 (pid 1)\"",
        "\"name\":\"main\"",
        "sys:pred",
        "gpu_batch",
        "tool:api",
    ] {
        assert!(a.contains(needle), "trace missing {needle}");
    }
}

#[test]
fn trace_export_parses_as_json() {
    let (_, trace) = run_traced(7);
    let v = serde_json::from_str::<serde_json::Value>(&trace).expect("Perfetto-loadable JSON");
    let serde_json::Value::Object(o) = v else {
        panic!("expected top-level object");
    };
    let Some(serde_json::Value::Array(events)) = o.get("traceEvents") else {
        panic!("missing traceEvents array");
    };
    assert!(events.len() > 100, "substantial event stream");
}

#[test]
fn spans_nest_well_formed() {
    let mut k = toolcalls_kernel(13, true);
    k.run();
    let events = k.telemetry_events();
    assert!(!events.is_empty());
    // Global monotonicity on the virtual clock.
    for pair in events.windows(2) {
        assert!(pair[0].at <= pair[1].at, "timestamps must be non-decreasing");
    }
    // Per-thread syscall spans balance and match by name; batch spans
    // balance by id on the GPU track.
    use std::collections::BTreeMap;
    let mut sys_stacks: BTreeMap<u64, Vec<&'static str>> = BTreeMap::new();
    let mut batch_stack: Vec<u64> = Vec::new();
    let mut sys_spans = 0u64;
    let mut batch_spans = 0u64;
    for ev in events {
        match &ev.kind {
            EventKind::SyscallEnter { tid, name, .. } => {
                sys_stacks.entry(*tid).or_default().push(name);
            }
            EventKind::SyscallExit { tid, name, .. } => {
                let open = sys_stacks
                    .get_mut(tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("exit without enter on tid {tid}"));
                assert_eq!(open, *name, "mismatched syscall span on tid {tid}");
                sys_spans += 1;
            }
            EventKind::BatchBegin { id, .. } => batch_stack.push(*id),
            EventKind::BatchEnd { id } => {
                assert_eq!(batch_stack.pop(), Some(*id), "mismatched batch span");
                batch_spans += 1;
            }
            _ => {}
        }
    }
    for (tid, stack) in &sys_stacks {
        assert!(stack.is_empty(), "unclosed syscall span on tid {tid}: {stack:?}");
    }
    assert!(batch_stack.is_empty(), "unclosed batch span: {batch_stack:?}");
    assert!(sys_spans > 10, "syscall spans recorded: {sys_spans}");
    assert!(batch_spans > 5, "batch spans recorded: {batch_spans}");
}

#[test]
fn disabled_telemetry_is_zero_cost_and_changes_nothing() {
    let mut off = toolcalls_kernel(42, false);
    off.run();
    let mut on = toolcalls_kernel(42, true);
    on.run();
    // The disabled bus did no event work at all: not one closure ran.
    assert_eq!(off.telemetry_constructed(), 0, "disabled bus constructed events");
    assert!(off.telemetry_events().is_empty());
    assert!(on.telemetry_constructed() > 0);
    // And observing changed nothing the kernel computes.
    assert_eq!(digest(&off), digest(&on), "telemetry must be observation-only");
    // `sim.events_per_sec` is a wall-clock throughput gauge, deliberately
    // outside the determinism contract — drop it before comparing.
    let strip_wall = |json: String| -> String {
        let key = "\"sim.events_per_sec\":";
        let Some(start) = json.find(key) else { return json };
        let end = json[start..].find('}').map(|i| start + i + 1).unwrap_or(json.len());
        let end = if json[end..].starts_with(',') { end + 1 } else { end };
        format!("{}{}", &json[..start], &json[end..])
    };
    assert_eq!(
        strip_wall(off.metrics_snapshot().to_json()),
        strip_wall(on.metrics_snapshot().to_json()),
        "metrics must not depend on event recording"
    );
}

#[test]
fn counting_collector_counts_without_storing() {
    let mut k = toolcalls_kernel(42, false);
    k.set_event_collector(Collector::Counting(0));
    k.run();
    let constructed = k.telemetry_constructed();
    assert!(constructed > 0, "counting collector constructs events");
    assert!(k.telemetry_events().is_empty(), "but stores none");
    match k.set_event_collector(Collector::Null) {
        Collector::Counting(n) => assert_eq!(n, constructed),
        other => panic!("expected counting collector back, got {other:?}"),
    }
    // Counting observes the same run the disabled kernel computes.
    let mut off = toolcalls_kernel(42, false);
    off.run();
    assert_eq!(digest(&off), digest(&k));
}

/// A tiny fixed-seed run whose exported trace is checked into the repo.
/// Regenerate after intentional format/instrumentation changes with:
/// `UPDATE_GOLDEN=1 cargo test -p symphony-bench --test telemetry_tests golden`
#[test]
fn golden_trace_matches() {
    let mut cfg = KernelConfig::for_tests();
    cfg.seed = 0x90_1D;
    cfg.telemetry = true;
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "api",
        ToolSpec::fixed(SimDuration::from_millis(10), |args| {
            ToolOutcome::Ok(format!("ok: {args}"))
        }),
    );
    k.spawn_process("tiny", "", |ctx| {
        let kv = ctx.kv_create()?;
        let prompt = ctx.tokenize("golden trace fixture")?;
        let out = generate(
            ctx,
            kv,
            &prompt,
            &GenOpts {
                max_tokens: 4,
                temperature: 0.0,
                emit: false,
                ..Default::default()
            },
        )?;
        ctx.call_tool("api", "q")?;
        ctx.emit_tokens(&out.tokens)?;
        ctx.kv_remove(kv)?;
        Ok(())
    });
    k.run();
    assert_eq!(k.events_dropped(), 0, "golden run must not drop events");
    let trace = k.export_chrome_trace();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/tiny_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden/");
        std::fs::write(&path, &trace).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden trace {}: {e}", path.display()));
    assert_eq!(
        trace,
        golden,
        "trace drifted from the golden fixture; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
