//! Criterion micro-benchmarks for the substrate hot paths.
//!
//! These measure the *simulator's* wall-clock costs (not virtual time):
//! KVFS structural operations, tokenizer throughput, surrogate distribution
//! computation, GPU batch execution, and LipScript interpretation.
//!
//! Run: `cargo bench -p symphony-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use symphony_gpu::{DeviceSpec, GpuExecutor, PredRequest};
use symphony_kvfs::{KvEntry, KvStore, KvStoreConfig, OwnerId};
use symphony_model::surrogate::VocabInfo;
use symphony_model::{CtxFingerprint, ModelConfig, Surrogate};
use symphony_tokenizer::{Bpe, CorpusGen};

const OWNER: OwnerId = OwnerId(1);

fn store() -> KvStore {
    KvStore::new(KvStoreConfig {
        page_tokens: 16,
        gpu_pages: 65_536,
        cpu_pages: 65_536,
        disk_pages: 0,
        bytes_per_token: 819_200,
    })
}

fn entries(n: usize) -> Vec<KvEntry> {
    (0..n as u32)
        .map(|i| KvEntry::new(i, i, CtxFingerprint(i as u64)))
        .collect()
}

fn bench_kvfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvfs");

    g.throughput(Throughput::Elements(3000));
    g.bench_function("append_3000_tokens", |b| {
        let ents = entries(3000);
        b.iter_batched(
            store,
            |mut s| {
                let f = s.create(OWNER).unwrap();
                s.append(f, OWNER, &ents).unwrap();
                s
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("fork_3000_token_file", |b| {
        let ents = entries(3000);
        let mut s = store();
        let f = s.create(OWNER).unwrap();
        s.append(f, OWNER, &ents).unwrap();
        b.iter(|| {
            let g = s.fork(f, OWNER).unwrap();
            s.remove(g, OWNER).unwrap();
        })
    });

    g.bench_function("extract_middle_range", |b| {
        let ents = entries(3000);
        let mut s = store();
        let f = s.create(OWNER).unwrap();
        s.append(f, OWNER, &ents).unwrap();
        b.iter(|| {
            let e = s.extract(f, OWNER, &[1000..2000]).unwrap();
            s.remove(e, OWNER).unwrap();
        })
    });

    g.bench_function("swap_out_in_roundtrip", |b| {
        let ents = entries(3000);
        let mut s = store();
        let f = s.create(OWNER).unwrap();
        s.append(f, OWNER, &ents).unwrap();
        b.iter(|| {
            s.swap_out(f, OWNER).unwrap();
            s.swap_in(f, OWNER).unwrap();
        })
    });
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let bpe = Bpe::default_tokenizer();
    let text = CorpusGen::new(1).paragraph(800);
    let tokens = bpe.encode(&text);
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("encode_paragraph", |b| b.iter(|| bpe.encode(&text)));
    g.throughput(Throughput::Elements(tokens.len() as u64));
    g.bench_function("decode_paragraph", |b| b.iter(|| bpe.decode(&tokens)));
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let model = Surrogate::new(ModelConfig::llama_13b(), 13)
        .with_vocab(VocabInfo::from_tokenizer(Bpe::default_tokenizer()));
    let fpr = model.fingerprinter();
    let mut g = c.benchmark_group("model");
    g.throughput(Throughput::Elements(1));
    g.bench_function("next_dist", |b| {
        let mut fp = fpr.origin();
        let mut i = 0u32;
        b.iter(|| {
            fp = fpr.advance(fp, i % 1000, i);
            i += 1;
            model.next_dist(fp)
        })
    });
    g.bench_function("dist_ops", |b| {
        let d = model.next_dist(fpr.advance(fpr.origin(), 1, 0));
        b.iter(|| {
            let t = d.with_temperature(0.8);
            let k = t.top_k(8);
            k.sample_with(0.5, 1700)
        })
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_executor");
    g.throughput(Throughput::Elements(3000));
    g.bench_function("prefill_3000", |b| {
        b.iter_batched(
            || {
                let model = Surrogate::new(ModelConfig::llama_13b(), 13)
                    .with_vocab(VocabInfo::from_tokenizer(Bpe::default_tokenizer()));
                let gpu = GpuExecutor::new(DeviceSpec::a100_80g(), model);
                let mut s = store();
                let f = s.create(OWNER).unwrap();
                let tokens: Vec<(u32, u32)> = (0..3000).map(|i| (i % 1000, i)).collect();
                (gpu, s, f, tokens)
            },
            |(mut gpu, mut s, f, tokens)| {
                let (r, _) = gpu.execute_batch(
                    &mut s,
                    &[PredRequest {
                        file: f,
                        owner: OWNER,
                        tokens,
                    }],
                );
                assert!(r[0].is_ok());
                (gpu, s)
            },
            BatchSize::SmallInput,
        )
    });
    g.throughput(Throughput::Elements(16));
    g.bench_function("decode_step_batch16", |b| {
        let model = Surrogate::new(ModelConfig::llama_13b(), 13)
            .with_vocab(VocabInfo::from_tokenizer(Bpe::default_tokenizer()));
        let mut gpu = GpuExecutor::new(DeviceSpec::a100_80g(), model);
        let mut s = store();
        let base = s.create(OWNER).unwrap();
        s.append(base, OWNER, &entries(512)).unwrap();
        let files: Vec<_> = (0..16).map(|_| s.fork(base, OWNER).unwrap()).collect();
        let mut pos = 512u32;
        b.iter(|| {
            let reqs: Vec<PredRequest> = files
                .iter()
                .map(|&file| PredRequest {
                    file,
                    owner: OWNER,
                    tokens: vec![(7, pos)],
                })
                .collect();
            pos += 1;
            let (r, _) = gpu.execute_batch(&mut s, &reqs);
            assert!(r.iter().all(|x| x.is_ok()));
        })
    });
    g.finish();
}

fn bench_lipscript(c: &mut Criterion) {
    use symphony_lipscript::host::MockHost;
    use symphony_lipscript::{run_with_host, InterpLimits};
    let mut g = c.benchmark_group("lipscript");
    let fib = "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } return fib(15);";
    g.bench_function("parse_and_fib15", |b| {
        b.iter(|| {
            let mut host = MockHost::new("");
            run_with_host(fib, &mut host, InterpLimits::default()).unwrap()
        })
    });
    let loop_src = "let s = 0; let i = 0; while (i < 1000) { s = s + i; i = i + 1; } return s;";
    g.throughput(Throughput::Elements(1000));
    g.bench_function("tight_loop_1000", |b| {
        b.iter(|| {
            let mut host = MockHost::new("");
            run_with_host(loop_src, &mut host, InterpLimits::default()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kvfs,
    bench_tokenizer,
    bench_model,
    bench_executor,
    bench_lipscript
);
criterion_main!(benches);
