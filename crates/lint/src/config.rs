//! `lint.toml` parsing — a deliberately tiny TOML subset, hand-rolled
//! because the workspace vendors no TOML parser. Supported grammar:
//!
//! ```toml
//! # comment
//! [skip]
//! paths = ["third_party/", "target/"]
//!
//! [allow.d1]
//! paths = ["crates/bench/src/bin/"]
//! ```
//!
//! Sections are `[skip]` or `[allow.<rule-id>]`; the only key is `paths`,
//! a single-line array of double-quoted workspace-relative path *prefixes*.
//! Anything else is a hard configuration error — a linter that silently
//! ignores its own config is worse than none.

use crate::rules::Rule;

/// Parsed lint configuration: path-prefix skip list and per-rule allows.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes never linted at all.
    pub skip: Vec<String>,
    /// Per-rule allowed path prefixes.
    pub allow: Vec<(Rule, String)>,
}

impl Config {
    /// Parses `lint.toml` content. Returns a message pinpointing the first
    /// malformed line on error.
    pub fn parse(src: &str) -> Result<Config, String> {
        enum Section {
            None,
            Skip,
            Allow(Rule),
        }
        let mut cfg = Config::default();
        let mut section = Section::None;
        for (i, raw) in src.lines().enumerate() {
            let line = raw.trim();
            let lineno = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = if name == "skip" {
                    Section::Skip
                } else if let Some(id) = name.strip_prefix("allow.") {
                    match Rule::parse(id) {
                        Some(r) => Section::Allow(r),
                        None => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown rule `{id}` in [allow.*] \
                                 (known: d1 d2 d3 k1 o1 o2)"
                            ))
                        }
                    }
                } else {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown section `[{name}]` \
                         (expected [skip] or [allow.<rule>])"
                    ));
                };
                continue;
            }
            let Some(rhs) = line.strip_prefix("paths").map(str::trim_start) else {
                return Err(format!(
                    "lint.toml:{lineno}: unknown key (only `paths = [\"…\"]` is supported)"
                ));
            };
            let Some(arr) = rhs.strip_prefix('=').map(str::trim) else {
                return Err(format!("lint.toml:{lineno}: expected `paths = [\"…\"]`"));
            };
            let inner = arr
                .strip_prefix('[')
                .and_then(|a| a.strip_suffix(']'))
                .ok_or_else(|| {
                    format!("lint.toml:{lineno}: `paths` must be a single-line array")
                })?;
            for item in split_quoted(inner, lineno)? {
                match section {
                    Section::None => {
                        return Err(format!(
                            "lint.toml:{lineno}: `paths` outside a section"
                        ))
                    }
                    Section::Skip => cfg.skip.push(item),
                    Section::Allow(rule) => cfg.allow.push((rule, item)),
                }
            }
        }
        Ok(cfg)
    }

    /// Loads `lint.toml` from the workspace root; a missing file is an
    /// empty config (inline suppressions still work).
    pub fn load(root: &std::path::Path) -> Result<Config, String> {
        match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(src) => Config::parse(&src),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("lint.toml: {e}")),
        }
    }

    /// Whether the path is excluded from linting entirely.
    pub fn is_skipped(&self, path: &str) -> bool {
        self.skip.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `rule` is allowlisted for this path.
    pub fn is_allowed(&self, rule: Rule, path: &str) -> bool {
        self.allow
            .iter()
            .any(|(r, p)| *r == rule && path.starts_with(p.as_str()))
    }
}

/// Splits `"a", "b"` into its quoted items.
fn split_quoted(inner: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let unquoted = item
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| {
                format!("lint.toml:{lineno}: array items must be double-quoted strings")
            })?;
        out.push(unquoted.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_skip_and_allow() {
        let cfg = Config::parse(
            "# c\n[skip]\npaths = [\"third_party/\"]\n\n[allow.d1]\npaths = [\"crates/bench/src/bin/\", \"x/\"]\n",
        )
        .unwrap();
        assert!(cfg.is_skipped("third_party/serde/src/lib.rs"));
        assert!(cfg.is_allowed(Rule::D1, "crates/bench/src/bin/exp_sched.rs"));
        assert!(!cfg.is_allowed(Rule::D2, "crates/bench/src/bin/exp_sched.rs"));
        assert!(!cfg.is_allowed(Rule::D1, "crates/core/src/kernel.rs"));
    }

    #[test]
    fn rejects_unknown_rule_and_section() {
        assert!(Config::parse("[allow.zz]\npaths=[\"a\"]").is_err());
        assert!(Config::parse("[wat]\n").is_err());
        assert!(Config::parse("paths = [\"a\"]\n").is_err());
    }
}
