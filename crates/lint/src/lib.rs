//! `symphony-lint`: determinism & kernel-safety static analysis for the
//! Symphony workspace.
//!
//! The whole evidence chain of this repository — byte-identical golden
//! traces, same-seed chaos determinism, every number in EXPERIMENTS.md —
//! rests on two invariants that ordinary tests cannot economically cover:
//! the simulation must be *strictly deterministic*, and the kernel must
//! *never panic on a syscall path*. This crate makes both machine-checked
//! properties. It walks every workspace `.rs` file with a lightweight,
//! string/char/comment-aware tokenizer (see [`sanitize`]) — no `syn`, per
//! the vendored-only `third_party/` policy — and enforces six rules:
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `d1` | no wall-clock time (`Instant::now`, `SystemTime`) outside an allowlist |
//! | `d2` | no ambient RNG (`thread_rng`, `rand::random`, `RandomState`) |
//! | `d3` | no `HashMap`/`HashSet` in deterministic crates (iteration order!) |
//! | `k1` | no `unwrap`/`expect`/`panic!` on kernel paths — typed `SysError`s |
//! | `o1` | no `println!`/`eprintln!` in library crates |
//! | `o2` | every telemetry span `*Enter`/`*Begin` has a `*Exit`/`*End` twin |
//!
//! Violations can be suppressed inline with
//! `// lint:allow(rule-id): reason` (the reason is mandatory) or by path
//! prefix in `lint.toml`. See `docs/LINTS.md` for the full catalogue.

mod config;
mod rules;
mod sanitize;

pub use config::Config;
pub use rules::{explain, Rule, ALL_RULES};
pub use sanitize::{classify, sanitize};

use std::path::Path;

/// One finding, anchored to a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Violation {
    /// Renders the human-readable one-line-plus-snippet form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message,
            self.snippet
        )
    }
}

/// Renders violations as a JSON document: an object with a `violations`
/// array and a `count`, stable field order, parseable by `serde_json`.
pub fn render_json(violations: &[Violation]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            v.rule.id(),
            esc(&v.path),
            v.line,
            esc(&v.message),
            esc(&v.snippet)
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", violations.len()));
    out
}

/// Lints one file's source text. `path` must be workspace-relative and
/// `/`-separated — rule applicability (deterministic crates, kernel paths,
/// binaries vs. libraries, test directories) is derived from it.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    if cfg.is_skipped(path) {
        return Vec::new();
    }
    let sanitized = sanitize(src);
    let lines = classify(&sanitized);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for rule in ALL_RULES {
        if !rule.applies_to(path) || cfg.is_allowed(*rule, path) {
            continue;
        }
        for mut v in rules::check(*rule, path, &lines) {
            // Rules match on sanitized text; report the raw source line.
            if let Some(raw) = raw_lines.get(v.line.saturating_sub(1)) {
                v.snippet = raw.trim().to_string();
            }
            match suppression_for(&raw_lines, v.line, *rule) {
                Suppression::None => out.push(v),
                Suppression::Allowed => {}
                Suppression::MissingReason(at) => {
                    v.message = format!(
                        "suppression for `{}` on line {at} is missing its reason \
                         (write `lint:allow({}): <why this is safe>`); the \
                         violation stands: {}",
                        rule.id(),
                        rule.id(),
                        v.message
                    );
                    out.push(v);
                }
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.rule.id()).cmp(&(b.line, b.rule.id())));
    out
}

/// Outcome of looking for an inline `lint:allow` covering a violation.
enum Suppression {
    None,
    Allowed,
    /// A matching `lint:allow` exists on this line but has no reason.
    MissingReason(usize),
}

/// Looks for `// lint:allow(rule[, rule…]): reason` on the violation line
/// or the line directly above it.
fn suppression_for(raw_lines: &[&str], line: usize, rule: Rule) -> Suppression {
    for candidate in [line, line.saturating_sub(1)] {
        if candidate == 0 || candidate > raw_lines.len() {
            continue;
        }
        let text = raw_lines[candidate - 1];
        let Some(idx) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[idx + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let ids = &rest[..close];
        let matches = ids
            .split(',')
            .map(str::trim)
            .any(|id| id.eq_ignore_ascii_case(rule.id()) || id == "all");
        if !matches {
            continue;
        }
        let after = &rest[close + 1..];
        let reason_ok = after
            .strip_prefix(':')
            .map(str::trim)
            .is_some_and(|r| !r.is_empty());
        return if reason_ok {
            Suppression::Allowed
        } else {
            Suppression::MissingReason(candidate)
        };
    }
    Suppression::None
}

/// Walks the workspace at `root` and lints every `.rs` file outside the
/// configured skip list. Results are sorted by `(path, line, rule)` so two
/// runs over the same tree render byte-identical reports.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_source(&rel, &src, cfg));
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.id()).cmp(&(b.path.as_str(), b.line, b.rule.id()))
    });
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // Hard skips: vendored deps, build output, VCS metadata.
            if matches!(name, "target" | "third_party" | ".git" | ".github") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}
