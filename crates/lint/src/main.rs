//! `symphony-lint` CLI: walk the workspace, enforce the determinism &
//! kernel-safety rules, report violations.
//!
//! ```text
//! cargo run -p symphony-lint                  # human-readable report
//! cargo run -p symphony-lint -- --format json
//! cargo run -p symphony-lint -- --explain k1
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use symphony_lint::{explain, lint_workspace, render_json, Config, Rule, ALL_RULES};

struct Args {
    json: bool,
    root: Option<PathBuf>,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: None,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects json|human, got {other:?}")),
            },
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root expects a directory")?,
                ))
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain expects a rule id")?)
            }
            "--help" | "-h" => {
                println!(
                    "symphony-lint: determinism & kernel-safety checks\n\
                     \n\
                     USAGE: symphony-lint [--format json|human] [--root DIR] [--explain RULE]\n\
                     \n\
                     Rules: d1 (wall clock) d2 (ambient RNG) d3 (hash iteration)\n\
                     \x20      k1 (kernel panics) o1 (library printing) o2 (span pairs)\n\
                     \n\
                     Suppress inline with `// lint:allow(rule): reason` (reason\n\
                     mandatory) or by path prefix in lint.toml. `--explain <rule>`\n\
                     prints the rationale. See docs/LINTS.md."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root)"
                .into());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("symphony-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = args.explain {
        return match Rule::parse(&id) {
            Some(rule) => {
                println!("{}", explain(rule));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "symphony-lint: unknown rule `{id}` (known: {})",
                    ALL_RULES
                        .iter()
                        .map(|r| r.id())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                ExitCode::from(2)
            }
        };
    }
    let root = match args.root {
        Some(r) => r,
        None => match find_root() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("symphony-lint: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let cfg = match Config::load(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("symphony-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = match lint_workspace(&root, &cfg) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("symphony-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", render_json(&violations));
    } else {
        for v in &violations {
            println!("{}", v.render());
        }
        if violations.is_empty() {
            println!("symphony-lint: clean ({} rules)", ALL_RULES.len());
        } else {
            println!(
                "symphony-lint: {} violation(s). Fix them, or suppress with \
                 `// lint:allow(rule): reason` / lint.toml. `--explain <rule>` \
                 documents each rule.",
                violations.len()
            );
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
