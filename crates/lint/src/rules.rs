//! The rule catalogue: what each rule matches, where it applies, and its
//! `--explain` documentation. Path classification (deterministic crates,
//! kernel modules, binaries vs. libraries, test trees) lives here too so
//! the whole policy is in one place.

use crate::sanitize::Lines;
use crate::Violation;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No wall-clock time in deterministic code.
    D1,
    /// No ambient (OS-seeded) randomness.
    D2,
    /// No order-unstable hash collections in deterministic crates.
    D3,
    /// No panicking calls on kernel paths.
    K1,
    /// No stdout/stderr printing from library crates.
    O1,
    /// Telemetry span begins must have matching ends.
    O2,
}

/// Every rule, in report order.
pub const ALL_RULES: &[Rule] = &[Rule::D1, Rule::D2, Rule::D3, Rule::K1, Rule::O1, Rule::O2];

/// Crates whose output feeds golden traces / fingerprint comparisons:
/// any order instability or ambient input here silently breaks the
/// byte-identical-trace regression suites.
const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "kvfs",
    "gpu",
    "sim",
    "model",
    "telemetry",
    "rpc",
    "serve",
    // The LipScript front end runs inside the serving door: parse +
    // verify must produce identical diagnostics and effect summaries on
    // every replica, or admission decisions diverge across a fleet.
    "lipscript",
];

/// Kernel-path files for `k1`: every line of these runs under a syscall or
/// the event loop, where a panic kills the whole serving kernel.
const KERNEL_PATHS: &[&str] = &[
    "crates/core/src/kernel.rs",
    "crates/core/src/syscall.rs",
    "crates/core/src/sched.rs",
    "crates/core/src/resilience.rs",
    // The admission verifier runs on every SUBMIT inside the serve event
    // loop; a panic while checking or rendering a hostile program is a
    // remote denial of service.
    "crates/lipscript/src/verify.rs",
];

impl Rule {
    /// Stable lowercase id used in reports, suppressions and `lint.toml`.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::D3 => "d3",
            Rule::K1 => "k1",
            Rule::O1 => "o1",
            Rule::O2 => "o2",
        }
    }

    /// Parses a rule id (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(s.trim()))
    }

    /// Whether this rule is in scope for a workspace-relative path.
    pub fn applies_to(&self, path: &str) -> bool {
        match self {
            // Wall-clock and ambient RNG poison determinism wherever they
            // appear, including test helpers that feed golden fixtures.
            Rule::D1 | Rule::D2 => true,
            Rule::D3 => DETERMINISTIC_CRATES
                .iter()
                .any(|c| path.starts_with(&format!("crates/{c}/src/"))),
            Rule::K1 => {
                KERNEL_PATHS.contains(&path)
                    || path.starts_with("crates/kvfs/src/")
                    || path.starts_with("crates/gpu/src/")
                    // The wire front door serves every connection from one
                    // event loop: a panic in rpc decode or serve dispatch
                    // drops all tenants at once. Bins are exempt via o1's
                    // library scoping; the protocol and server libs are not.
                    || (path.starts_with("crates/rpc/src/") && is_library_file(path))
                    || (path.starts_with("crates/serve/src/") && is_library_file(path))
            }
            Rule::O1 => is_library_file(path),
            Rule::O2 => path.starts_with("crates/telemetry/src/"),
        }
    }
}

/// Library code for `o1`: under a `src/` but not a binary target. Binaries
/// (`src/bin/`, `src/main.rs`, `examples/`) own their stdout; libraries
/// must route output through the telemetry/report layers.
fn is_library_file(path: &str) -> bool {
    let under_src = path.contains("/src/") || path.starts_with("src/");
    under_src
        && !path.contains("/src/bin/")
        && !path.ends_with("/main.rs")
        && !path.contains("examples/")
}

/// Whether the file is wholly test code (integration tests, benches).
fn is_test_tree(path: &str) -> bool {
    path.contains("/tests/") || path.starts_with("tests/") || path.contains("/benches/")
}

/// A simple substring pattern that must start at a word boundary.
fn find_bounded(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(i) = line[from..].find(pat) {
        let at = from + i;
        let boundary = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Runs `rule` over the classified lines of one file.
pub(crate) fn check(rule: Rule, path: &str, lines: &Lines) -> Vec<Violation> {
    let mut out = Vec::new();
    let skip_tests = matches!(rule, Rule::D3 | Rule::K1 | Rule::O1);
    let mut emit = |line: usize, message: String| {
        out.push(Violation {
            rule,
            path: path.to_string(),
            line,
            message,
            snippet: lines.code[line - 1].trim().to_string(),
        });
    };
    match rule {
        Rule::D1 => {
            for (i, code) in lines.code.iter().enumerate() {
                for pat in ["Instant::now", "SystemTime"] {
                    if find_bounded(code, pat) {
                        emit(
                            i + 1,
                            format!(
                                "wall-clock time (`{pat}`) in deterministic code: \
                                 use the virtual clock (`SimTime`/`EventQueue::now`) \
                                 or allowlist this path in lint.toml"
                            ),
                        );
                    }
                }
            }
        }
        Rule::D2 => {
            for (i, code) in lines.code.iter().enumerate() {
                for pat in ["thread_rng", "rand::random", "RandomState"] {
                    if find_bounded(code, pat) {
                        emit(
                            i + 1,
                            format!(
                                "ambient randomness (`{pat}`): every random draw \
                                 must come from a seeded `symphony_sim::Rng` stream"
                            ),
                        );
                    }
                }
            }
        }
        Rule::D3 => {
            for (i, code) in lines.code.iter().enumerate() {
                if skip_tests && (lines.in_test[i] || is_test_tree(path)) {
                    continue;
                }
                for pat in ["HashMap", "HashSet"] {
                    if find_bounded(code, pat) {
                        emit(
                            i + 1,
                            format!(
                                "`{pat}` in a deterministic crate: iteration order \
                                 is seeded per-process, one refactor away from a \
                                 nondeterministic trace — use `BTreeMap`/`BTreeSet` \
                                 or a sorted collect"
                            ),
                        );
                    }
                }
            }
        }
        Rule::K1 => {
            for (i, code) in lines.code.iter().enumerate() {
                if skip_tests && (lines.in_test[i] || is_test_tree(path)) {
                    continue;
                }
                for pat in [
                    ".unwrap()",
                    ".expect(",
                    "panic!",
                    "unreachable!",
                    "todo!",
                    "unimplemented!",
                ] {
                    let hit = if pat.starts_with('.') {
                        code.contains(pat)
                    } else {
                        find_bounded(code, pat)
                    };
                    if hit {
                        emit(
                            i + 1,
                            format!(
                                "`{pat}` on a kernel path: a panic here kills the \
                                 whole serving kernel — return a typed `SysError` \
                                 (or `KvError`/`ExecError`) instead",
                                pat = pat.trim_start_matches('.')
                            ),
                        );
                    }
                }
            }
        }
        Rule::O1 => {
            for (i, code) in lines.code.iter().enumerate() {
                if skip_tests && (lines.in_test[i] || is_test_tree(path)) {
                    continue;
                }
                for pat in ["println!", "eprintln!", "print!", "eprint!", "dbg!"] {
                    if find_bounded(code, pat) {
                        emit(
                            i + 1,
                            format!(
                                "`{pat}` in library code: libraries must stay \
                                 silent — report through telemetry, the metrics \
                                 registry, or return values"
                            ),
                        );
                    }
                }
            }
        }
        Rule::O2 => {
            out.extend(check_span_pairs(path, lines));
        }
    }
    out
}

/// o2: every identifier ending in `Enter`/`Begin` in a telemetry source
/// file must have a sibling ending in `Exit`/`End` with the same stem, in
/// the same file. Catches the "added a span begin, forgot the end" drift
/// that leaves Perfetto tracks permanently open.
fn check_span_pairs(path: &str, lines: &Lines) -> Vec<Violation> {
    use std::collections::BTreeMap;
    let mut idents: BTreeMap<String, usize> = BTreeMap::new();
    for (i, code) in lines.code.iter().enumerate() {
        let mut cur = String::new();
        for c in code.chars().chain(std::iter::once(' ')) {
            if c.is_alphanumeric() || c == '_' {
                cur.push(c);
            } else if !cur.is_empty() {
                let ident = std::mem::take(&mut cur);
                if ident.chars().next().is_some_and(|c| c.is_uppercase()) {
                    idents.entry(ident).or_insert(i + 1);
                }
            }
        }
    }
    let mut out = Vec::new();
    for (ident, &line) in &idents {
        let want = if let Some(stem) = ident.strip_suffix("Enter") {
            Some((format!("{stem}Exit"), "Exit"))
        } else if let Some(stem) = ident.strip_suffix("Begin") {
            Some((format!("{stem}End"), "End"))
        } else {
            None
        };
        if let Some((twin, kind)) = want {
            if !idents.contains_key(&twin) {
                out.push(Violation {
                    rule: Rule::O2,
                    path: path.to_string(),
                    line,
                    message: format!(
                        "span begin `{ident}` has no matching `{twin}`: every \
                         telemetry span must close or trace tracks stay open \
                         forever (add the `*{kind}` constant)"
                    ),
                    snippet: lines.code[line - 1].trim().to_string(),
                });
            }
        }
    }
    out
}

/// `--explain` documentation for one rule.
pub fn explain(rule: Rule) -> &'static str {
    match rule {
        Rule::D1 => {
            "d1: no wall-clock time in deterministic code\n\
             \n\
             Matches `Instant::now` and `SystemTime`.\n\
             \n\
             Every latency, timeout and trace timestamp in Symphony runs on\n\
             the virtual clock (`symphony_sim::SimTime`), which is what makes\n\
             two same-seed runs byte-identical. A single wall-clock read that\n\
             feeds a decision (batch sizing, retry backoff, trace ordering)\n\
             silently re-introduces host-speed dependence, and the golden\n\
             trace suites cannot tell you *where*. Real-time reads are only\n\
             legitimate where the point is to measure the host: bench\n\
             binaries and the baseline engine's env-gated debug timers —\n\
             those paths are allowlisted in lint.toml or carry an inline\n\
             `lint:allow(d1): reason`.\n\
             \n\
             Fix: take a `SimTime` from the event queue, or thread a time\n\
             parameter in from the kernel."
        }
        Rule::D2 => {
            "d2: no ambient randomness\n\
             \n\
             Matches `thread_rng`, `rand::random` and `RandomState`.\n\
             \n\
             Chaos tests replay fault schedules by seed; the experiment\n\
             harness reproduces every number in EXPERIMENTS.md by seed. An\n\
             OS-seeded RNG (or a `HashMap`'s per-process `RandomState`\n\
             hasher) breaks replay invisibly. All randomness must come from\n\
             `symphony_sim::Rng` streams forked from the run seed.\n\
             \n\
             Fix: accept an `&mut Rng` and draw from it."
        }
        Rule::D3 => {
            "d3: no order-unstable hash collections in deterministic crates\n\
             \n\
             Matches `HashMap`/`HashSet` in crates/{core,kvfs,gpu,sim,model,\n\
             telemetry}/src.\n\
             \n\
             `std` hash collections iterate in a per-process random order.\n\
             Even a use that only calls `len`/`contains` today is one\n\
             refactor away from a `for` loop whose order leaks into a trace,\n\
             a fingerprint, or an eviction decision — and the breakage only\n\
             shows up as a golden-trace diff with no pointer to the cause.\n\
             The rule is deliberately an over-approximation: the safe\n\
             construction is `BTreeMap`/`BTreeSet` (or a `Vec` + sort), and\n\
             a justified membership-only use can carry\n\
             `lint:allow(d3): reason`.\n\
             \n\
             Fix: use `BTreeMap`/`BTreeSet`, or collect-and-sort before\n\
             iterating."
        }
        Rule::K1 => {
            "k1: no panicking calls on kernel paths\n\
             \n\
             Matches `.unwrap()`, `.expect(`, `panic!`, `unreachable!`,\n\
             `todo!` and `unimplemented!` in crates/core/src/{kernel,syscall,\n\
             sched,resilience}.rs, crates/kvfs/src and crates/gpu/src.\n\
             \n\
             A LIP is an untrusted program; the kernel is the operating\n\
             system under thousands of them. Any panic reachable from a\n\
             syscall argument or an unexpected interleaving kills every\n\
             in-flight program at once. Kernel paths must degrade to typed\n\
             errors (`SysError`, `KvError`, `ExecError`) that the scheduler\n\
             and the program can handle. Truly unreachable invariants can be\n\
             stated with `debug_assert!` (free in release builds) plus a\n\
             graceful fallback, or carry `lint:allow(k1): reason` naming the\n\
             invariant.\n\
             \n\
             Fix: `ok_or(SysError::…)?`, let-else with a typed error reply,\n\
             or `debug_assert!` + defensive return."
        }
        Rule::O1 => {
            "o1: no printing from library crates\n\
             \n\
             Matches `println!`, `eprintln!`, `print!`, `eprint!` and `dbg!`\n\
             in library source files (under src/, excluding src/bin/ and\n\
             examples).\n\
             \n\
             Library output corrupts the experiment reports that bench\n\
             binaries write to stdout, and un-gated debug prints in the\n\
             kernel would serialize the event loop on terminal I/O. Output\n\
             belongs to binaries, the telemetry bus, or the report writer\n\
             (crates/bench is allowlisted in lint.toml — it *is* the report\n\
             layer).\n\
             \n\
             Fix: return the data, emit a telemetry event, or move the print\n\
             into the binary."
        }
        Rule::O2 => {
            "o2: telemetry span begins must pair with ends\n\
             \n\
             In crates/telemetry/src, every identifier ending in `Enter` or\n\
             `Begin` must have a same-stem sibling ending in `Exit`/`End` in\n\
             the same file.\n\
             \n\
             The Chrome trace exporter emits `ph:\"B\"`/`ph:\"E\"` pairs; a\n\
             begin without an end leaves the track open to the end of time\n\
             and breaks the CI assertion that begins == ends. Catch the\n\
             drift at the type level, when the variant is added, not when a\n\
             Perfetto load looks wrong.\n\
             \n\
             Fix: add the matching `*Exit`/`*End` variant (and emit it)."
        }
    }
}
