//! A lightweight Rust source sanitizer: blanks out comments, string
//! literals and char literals so the rule matchers only ever see real
//! code. This is the "tokenizer" the lint pass is built on — it is *not*
//! a parser (no `syn`, per the vendored-only dependency policy), but it is
//! exact about the lexical forms that matter for false positives:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments,
//! * plain strings with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//!   depth), byte strings (`b"…"`, `br#"…"#`),
//! * char literals vs. lifetimes (`'a'` vs `&'a str`),
//!
//! The output has exactly the same shape as the input — every blanked
//! character becomes a space, newlines are preserved — so `file:line`
//! positions computed on the sanitized text are valid for the original.

/// Lexer state for [`sanitize`].
enum State {
    Code,
    LineComment,
    /// Nested block comments: Rust allows `/* /* */ */`.
    BlockComment(u32),
    Str,
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Returns `src` with comments and string/char literal *contents* replaced
/// by spaces (newlines kept), so pattern matches only hit code.
pub fn sanitize(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut state = State::Code;
    let mut i = 0usize;
    // Pushes a blanked version of `c` (spaces preserve column positions).
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    blank(&mut out, c);
                    blank(&mut out, '/');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    blank(&mut out, c);
                    blank(&mut out, '*');
                    i += 2;
                }
                '"' => {
                    // Raw/byte-string prefixes were consumed below, so a
                    // bare quote here is a plain string.
                    state = State::Str;
                    out.push(c);
                    i += 1;
                }
                'r' | 'b' => {
                    let prev_ident = i > 0 && is_ident(chars[i - 1]);
                    // Candidate prefixes: r", r#", b", br", br#", rb is not
                    // a thing — only `br`. Scan: optional second prefix
                    // letter, then hashes, then a quote.
                    let mut j = i + 1;
                    if !prev_ident && c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = c == 'r' || chars.get(i + 1) == Some(&'r');
                    if !prev_ident
                        && chars.get(j) == Some(&'"')
                        && (raw || hashes == 0)
                    {
                        // Emit the prefix and the opening quote verbatim.
                        for &p in &chars[i..=j] {
                            out.push(p);
                        }
                        i = j + 1;
                        state = if raw { State::RawStr(hashes) } else { State::Str };
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Disambiguate char literal from lifetime: `'x'` is a
                    // literal, `'a` (not followed by a closing quote) is a
                    // lifetime label and stays code.
                    let is_lifetime = match next {
                        Some(n) if n == '\\' => false,
                        Some(n) if is_ident(n) => chars.get(i + 2) != Some(&'\''),
                        _ => false,
                    };
                    out.push(c);
                    i += 1;
                    if !is_lifetime {
                        state = State::CharLit;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                }
                blank(&mut out, c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    blank(&mut out, c);
                    blank(&mut out, '*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    blank(&mut out, c);
                    blank(&mut out, '/');
                    i += 2;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    blank(&mut out, c);
                    if let Some(n) = next {
                        blank(&mut out, n);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    out.push(c);
                    state = State::Code;
                    i += 1;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push(c);
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                blank(&mut out, c);
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    blank(&mut out, c);
                    if let Some(n) = next {
                        blank(&mut out, n);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    out.push(c);
                    state = State::Code;
                    i += 1;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
        }
    }
    out
}

/// Per-line view of a sanitized file with test-region classification.
pub struct Lines {
    /// Sanitized line contents (no trailing newline).
    pub code: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` regions.
    pub in_test: Vec<bool>,
}

/// Splits sanitized text into lines and marks `#[cfg(test)]` modules and
/// `#[test]` functions. The heuristic: a test attribute arms the tracker,
/// the next `{` opens the region, and the matching `}` closes it. This
/// intentionally errs on the side of *treating more code as non-test* only
/// when attributes are exotic (e.g. a braceless `#[cfg(test)] use …;`
/// latches onto the next block) — in that case extra code is *skipped*,
/// never falsely flagged, and the repo's tests use the plain
/// `#[cfg(test)] mod tests { … }` shape this handles exactly.
pub fn classify(sanitized: &str) -> Lines {
    let code: Vec<String> = sanitized.lines().map(str::to_string).collect();
    let mut in_test = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    // Depth *outside* the innermost open test region, if any.
    let mut test_exit_depth: Option<i64> = None;
    for (idx, line) in code.iter().enumerate() {
        let trimmed = line.trim();
        if test_exit_depth.is_none()
            && (trimmed.contains("#[cfg(test)]")
                || trimmed.contains("#[test]")
                || trimmed.contains("#[cfg(all(test")
                || trimmed.contains("#[cfg(any(test"))
        {
            armed = true;
        }
        if test_exit_depth.is_some() || armed {
            in_test[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if armed && test_exit_depth.is_none() {
                        test_exit_depth = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_exit_depth == Some(depth) {
                        test_exit_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    Lines { code, in_test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments() {
        let s = sanitize("let x = 1; // Instant::now()\nlet y = 2;");
        assert!(!s.contains("Instant"));
        assert!(s.contains("let y = 2;"));
    }

    #[test]
    fn blanks_nested_block_comments() {
        let s = sanitize("a /* outer /* inner */ still */ b");
        assert!(!s.contains("inner"));
        assert!(!s.contains("still"));
        assert!(s.starts_with('a'));
        assert!(s.trim_end().ends_with('b'));
    }

    #[test]
    fn blanks_strings_and_raw_strings() {
        let s = sanitize(r##"let a = "panic!"; let b = r#"unwrap()"#; c"##);
        assert!(!s.contains("panic"));
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let a ="));
        assert!(s.trim_end().ends_with('c'));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = sanitize("fn f<'a>(x: &'a str) { let c = 'z'; let q = '\"'; }");
        // Lifetimes survive; char contents are blanked.
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
        assert!(!s.contains('z'), "char literal content blanked: {s}");
    }

    #[test]
    fn preserves_line_structure() {
        let src = "a\n\"two\nlines\"\nb\n";
        let s = sanitize(src);
        assert_eq!(src.lines().count(), s.lines().count());
    }

    #[test]
    fn classify_marks_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let l = classify(&sanitize(src));
        assert!(!l.in_test[0]);
        assert!(l.in_test[1] && l.in_test[2] && l.in_test[3] && l.in_test[4]);
        assert!(!l.in_test[5]);
    }

    #[test]
    fn classify_marks_test_fn() {
        let src = "#[test]\nfn t() {\n  x.unwrap();\n}\nfn real() {}\n";
        let l = classify(&sanitize(src));
        assert!(l.in_test[2]);
        assert!(!l.in_test[4]);
    }
}
