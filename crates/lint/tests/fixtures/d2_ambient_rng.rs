// Fixture: ambient randomness (rule d2).

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn coin() -> bool {
    rand::random()
}

fn hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}
