// Fixture: inline suppression forms (good, missing reason, wrong rule).

fn suppressed_with_reason() -> std::time::Instant {
    // lint:allow(d1): fixture exercising a well-formed suppression
    std::time::Instant::now()
}

fn suppressed_without_reason() -> std::time::Instant {
    // lint:allow(d1)
    std::time::Instant::now()
}

fn suppressed_wrong_rule() -> std::time::Instant {
    // lint:allow(d2): wrong rule id, d1 must still fire
    std::time::Instant::now()
}
