//! Fixture: the verifier's diagnostic-rendering path must stay panic-free.
//! Every line here runs on the serve event loop against *attacker-chosen*
//! program text — an index or unwrap that a hostile source can reach is a
//! remote denial of service. The bad half must fire k1; the good half
//! shows the total alternatives and must stay quiet.

pub struct Diag {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

// BAD: panicking calls while turning diagnostics into wire details.
pub fn first_error_detail_bad(diags: &[Diag], name: &str) -> String {
    let d = diags.first().unwrap();
    let head = name.split(':').next().expect("name has a head");
    if d.message.is_empty() {
        panic!("diagnostic without a message");
    }
    format!("{head}:{}:{}: {}", d.line, d.col, d.message)
}

// GOOD: total rendering — absent diagnostics and odd names fall back.
pub fn first_error_detail(diags: &[Diag], name: &str) -> Option<String> {
    let d = diags.first()?;
    let head = name.split(':').next().unwrap_or(name);
    Some(format!("{head}:{}:{}: {}", d.line, d.col, d.message))
}
