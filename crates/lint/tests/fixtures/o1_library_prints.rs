// Fixture: stdout/stderr printing from a library (rule o1).

fn report(x: u64) {
    println!("x = {x}");
}

fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}

fn peek(v: u64) -> u64 {
    dbg!(v)
}

fn not_a_print() {
    // These must NOT fire: the tokens appear in strings and comments only.
    let _doc = "call println! from binaries, never libraries";
    // println! in a comment is fine.
}
