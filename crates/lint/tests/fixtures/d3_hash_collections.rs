// Fixture: order-unstable collections in a deterministic crate (rule d3).

use std::collections::HashMap;

fn tally(keys: &[u64]) -> Vec<(u64, u32)> {
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    // Iteration order here depends on the hasher seed: nondeterministic.
    counts.into_iter().collect()
}

fn seen() -> std::collections::HashSet<u64> {
    std::collections::HashSet::new()
}
