// Fixture: telemetry span constants with a begin but no end (rule o2).

pub enum EventKind {
    SyscallEnter { tid: u64 },
    SyscallExit { tid: u64 },
    BatchBegin { id: u64 },
    // BatchEnd is missing: o2 must flag BatchBegin.
    PredEnter { tid: u64 },
    // PredExit is missing too.
}
