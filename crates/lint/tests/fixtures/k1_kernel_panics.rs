// Fixture: panicking calls on a kernel path (rule k1).

fn lookup(map: &std::collections::BTreeMap<u64, u32>, pid: u64) -> u32 {
    *map.get(&pid).unwrap()
}

fn lookup2(map: &std::collections::BTreeMap<u64, u32>, pid: u64) -> u32 {
    *map.get(&pid).expect("proc exists")
}

fn boom() {
    panic!("kernel died");
}

fn never() {
    unreachable!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
