// Fixture: wall-clock reads (rule d1). Never compiled; linted by
// fixtures_tests.rs under a pseudo-path.

fn elapsed() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

fn epoch() -> u64 {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
