//! Fixture suite: every rule must flag its known-bad snippet, suppressions
//! must behave, allowlists must skip, and the JSON report must round-trip
//! through the workspace `serde_json`.
//!
//! Fixtures live in `tests/fixtures/` (skip-listed in the workspace
//! `lint.toml` so `cargo run -p symphony-lint` stays green) and are linted
//! here via [`lint_source`] under *pseudo-paths* chosen to put each snippet
//! in the rule's scope.

use symphony_lint::{lint_source, render_json, Config, Rule, Violation};

fn lint(pseudo_path: &str, src: &str) -> Vec<Violation> {
    lint_source(pseudo_path, src, &Config::default())
}

#[test]
fn d1_flags_wall_clock() {
    let src = include_str!("fixtures/d1_wall_clock.rs");
    let v = lint("crates/model/src/fixture.rs", src);
    assert!(
        v.iter().filter(|v| v.rule == Rule::D1).count() >= 3,
        "Instant::now and both SystemTime uses must fire: {v:?}"
    );
}

#[test]
fn d2_flags_ambient_rng() {
    let src = include_str!("fixtures/d2_ambient_rng.rs");
    let v = lint("crates/sim/src/fixture.rs", src);
    assert!(
        v.iter().filter(|v| v.rule == Rule::D2).count() >= 3,
        "thread_rng, rand::random and RandomState must fire: {v:?}"
    );
}

#[test]
fn d3_flags_hash_collections_in_deterministic_crates_only() {
    let src = include_str!("fixtures/d3_hash_collections.rs");
    let in_det = lint("crates/core/src/fixture.rs", src);
    assert!(
        in_det.iter().filter(|v| v.rule == Rule::D3).count() >= 2,
        "HashMap and HashSet must fire in a deterministic crate: {in_det:?}"
    );
    let outside = lint("crates/workloads/src/fixture.rs", src);
    assert!(
        !outside.iter().any(|v| v.rule == Rule::D3),
        "d3 must not apply outside the deterministic crates: {outside:?}"
    );
}

#[test]
fn k1_flags_kernel_panics_but_not_tests() {
    let src = include_str!("fixtures/k1_kernel_panics.rs");
    let v = lint("crates/core/src/kernel.rs", src);
    let k1: Vec<_> = v.iter().filter(|v| v.rule == Rule::K1).collect();
    assert!(
        k1.len() >= 4,
        "unwrap, expect, panic! and unreachable! must fire: {k1:?}"
    );
    assert!(
        k1.iter().all(|v| !v.snippet.contains("assert_eq!")),
        "the #[cfg(test)] unwrap must be exempt: {k1:?}"
    );
    // The same source outside the kernel paths is out of scope.
    let v = lint("crates/workloads/src/fixture.rs", src);
    assert!(!v.iter().any(|v| v.rule == Rule::K1));
}

#[test]
fn o1_flags_library_prints_not_binaries() {
    let src = include_str!("fixtures/o1_library_prints.rs");
    let v = lint("crates/model/src/fixture.rs", src);
    assert!(
        v.iter().filter(|v| v.rule == Rule::O1).count() >= 3,
        "println!, eprintln! and dbg! must fire: {v:?}"
    );
    assert!(
        !v.iter().any(|v| v.snippet.contains("_doc")),
        "tokens inside strings/comments must not fire: {v:?}"
    );
    for bin_path in [
        "crates/bench/src/bin/fixture.rs",
        "crates/model/src/main.rs",
        "crates/model/examples/fixture.rs",
    ] {
        let v = lint(bin_path, src);
        assert!(
            !v.iter().any(|v| v.rule == Rule::O1),
            "{bin_path}: binaries own their stdout"
        );
    }
}

#[test]
fn o2_flags_unbalanced_span_constants() {
    let src = include_str!("fixtures/o2_unbalanced_spans.rs");
    let v = lint("crates/telemetry/src/fixture.rs", src);
    let o2: Vec<_> = v.iter().filter(|v| v.rule == Rule::O2).collect();
    assert_eq!(
        o2.len(),
        2,
        "BatchBegin and PredEnter lack twins; SyscallEnter/Exit balance: {o2:?}"
    );
    // Outside the telemetry crate the rule is out of scope.
    let v = lint("crates/core/src/fixture.rs", src);
    assert!(!v.iter().any(|v| v.rule == Rule::O2));
}

#[test]
fn suppression_with_reason_silences_without_reason_stands() {
    let src = include_str!("fixtures/suppressions.rs");
    let v = lint("crates/model/src/fixture.rs", src);
    let d1: Vec<_> = v.iter().filter(|v| v.rule == Rule::D1).collect();
    // Three Instant::now sites: one properly suppressed, two standing.
    assert_eq!(d1.len(), 2, "{d1:?}");
    assert!(
        d1.iter().any(|v| v.message.contains("missing its reason")),
        "the reasonless allow must be called out: {d1:?}"
    );
    assert!(
        d1.iter()
            .any(|v| !v.message.contains("missing its reason")),
        "the wrong-rule allow must leave a plain violation: {d1:?}"
    );
}

#[test]
fn config_skip_and_allow_paths() {
    let src = include_str!("fixtures/d1_wall_clock.rs");
    let cfg = Config::parse(
        "[skip]\npaths = [\"crates/skipme/\"]\n[allow.d1]\npaths = [\"crates/model/src/\"]\n",
    )
    .unwrap();
    assert!(
        lint_source("crates/skipme/src/fixture.rs", src, &cfg).is_empty(),
        "skip-listed paths are never linted"
    );
    assert!(
        lint_source("crates/model/src/fixture.rs", src, &cfg)
            .iter()
            .all(|v| v.rule != Rule::D1),
        "allowlisted paths pass the allowed rule"
    );
    assert!(
        !lint_source("crates/sim/src/fixture.rs", src, &cfg).is_empty(),
        "other paths still fail"
    );
}

#[test]
fn json_report_round_trips_through_serde_json() {
    let src = include_str!("fixtures/o1_library_prints.rs");
    let violations = lint("crates/model/src/fixture.rs", src);
    assert!(!violations.is_empty());
    let json = render_json(&violations);
    let value: serde_json::Value =
        serde_json::from_str(&json).expect("lint JSON must parse");
    let serde_json::Value::Object(obj) = value else {
        panic!("top level is an object, got {value:?}");
    };
    assert_eq!(
        obj["count"],
        serde_json::Value::Number(violations.len() as f64),
        "count field matches"
    );
    let serde_json::Value::Array(arr) = &obj["violations"] else {
        panic!("violations must be an array");
    };
    assert_eq!(arr.len(), violations.len());
    for (v, j) in violations.iter().zip(arr) {
        let serde_json::Value::Object(j) = j else {
            panic!("each violation is an object");
        };
        assert_eq!(j["rule"], serde_json::Value::String(v.rule.id().into()));
        assert_eq!(j["path"], serde_json::Value::String(v.path.clone()));
        assert_eq!(j["line"], serde_json::Value::Number(v.line as f64));
        assert_eq!(j["snippet"], serde_json::Value::String(v.snippet.clone()));
    }
    // Empty report is still valid JSON with count 0.
    let empty: serde_json::Value = serde_json::from_str(&render_json(&[])).unwrap();
    let serde_json::Value::Object(empty) = empty else {
        panic!("empty report is an object");
    };
    assert_eq!(empty["count"], serde_json::Value::Number(0.0));
}

#[test]
fn explain_covers_every_rule() {
    for rule in symphony_lint::ALL_RULES {
        let text = symphony_lint::explain(*rule);
        assert!(
            text.contains(rule.id()),
            "--explain {} must mention the rule id",
            rule.id()
        );
        assert!(text.len() > 100, "explanations are documentation, not stubs");
    }
}

#[test]
fn k1_covers_the_verifier_rendering_path() {
    let src = include_str!("fixtures/k1_verifier_rendering.rs");
    let v = lint("crates/lipscript/src/verify.rs", src);
    let k1: Vec<_> = v.iter().filter(|v| v.rule == Rule::K1).collect();
    assert!(
        k1.len() >= 3,
        "unwrap, expect and panic! must fire on the verifier path: {k1:?}"
    );
    assert!(
        k1.iter().all(|v| v.line <= 21),
        "the total rendering half must stay quiet: {k1:?}"
    );
    // The same snippet outside the admission path is out of scope for k1.
    let elsewhere = lint("crates/workloads/src/fixture.rs", src);
    assert!(!elsewhere.iter().any(|v| v.rule == Rule::K1));
}

#[test]
fn d3_applies_to_the_lipscript_front_end() {
    let src = include_str!("fixtures/d3_hash_collections.rs");
    let v = lint("crates/lipscript/src/interp.rs", src);
    assert!(
        v.iter().filter(|v| v.rule == Rule::D3).count() >= 2,
        "order-unstable collections must fire in lipscript: {v:?}"
    );
}
