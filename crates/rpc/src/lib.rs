//! SYMR — the Symphony wire protocol.
//!
//! The paper's thesis is "serve programs, not prompts": a client hands the
//! server an *LLM Inference Program* and the server streams its output
//! back. This crate is the wire format of that hand-off, shared by the
//! `symphony-serve` front door and the `symphony-client` load generator —
//! and small enough that a third party can implement a compatible client
//! from `docs/SERVING.md` alone (the document is normative; this crate is
//! the reference implementation).
//!
//! Framing reuses the workspace-wide `[tag u8][len u32][payload][crc u32]`
//! discipline from [`symphony_sim::frame`] — the same bytes-on-disk rules
//! as the KVFS journal (`SYMJ`) and the kernel WAL (`SYMW`), proven by
//! their torn-tail chaos suites. On a stream transport there is no "torn
//! tail", only frames that have not finished arriving; [`FrameReader`]
//! separates that (wait for more bytes) from corruption (typed
//! [`WireError`], connection must die).
//!
//! Everything here is pure data-in/data-out: no sockets, no clocks, no
//! allocator tricks — which is what lets the protocol round-trip under
//! property tests and keeps the serving loop deterministic.

use symphony_sim::frame::{
    append_frame, frame_crc, push_str, push_u32, push_u64, Cursor, FRAME_OVERHEAD,
};

/// Protocol magic, carried in the HELLO payload (not a stream preamble:
/// byte 0 of a connection is already a frame tag).
pub const WIRE_MAGIC: [u8; 4] = *b"SYMR";

/// Current protocol version. A server refuses other versions with
/// [`ErrCode::BadVersion`]; the rules for compatible evolution are in
/// docs/SERVING.md §Versioning.
pub const WIRE_VERSION: u32 = 1;

/// Default cap on a single frame's payload length. Submissions larger
/// than this are refused with [`ErrCode::FrameTooLarge`] before any
/// allocation of the payload happens.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Session id `0` is reserved: in an [`ServerMsg::Error`] it marks a
/// connection-scope error. Clients allocate ids starting at 1.
pub const CONN_SCOPE: u64 = 0;

// ---- opcodes ---------------------------------------------------------------

/// Client→server opcodes (frame tags). Server→client tags have the high
/// bit set, so a direction mix-up is caught at decode time.
pub mod op {
    /// First frame on every connection: magic, version, tenant.
    pub const HELLO: u8 = 0x01;
    /// Submit a LipScript program under a client-chosen session id.
    pub const SUBMIT: u8 = 0x02;
    /// Cancel a running session.
    pub const CANCEL: u8 = 0x03;
    /// Liveness/RTT probe.
    pub const PING: u8 = 0x04;
    /// Clean shutdown: no more submissions follow.
    pub const BYE: u8 = 0x05;
    /// Hello accepted; server is ready for submissions.
    pub const HELLO_OK: u8 = 0x81;
    /// Submission accepted and spawned as a kernel process.
    pub const ACCEPTED: u8 = 0x82;
    /// One incremental chunk of a session's streamed output.
    pub const STREAM: u8 = 0x83;
    /// Session finished; final status and usage.
    pub const DONE: u8 = 0x84;
    /// Typed error, session- or connection-scoped.
    pub const ERROR: u8 = 0x85;
    /// Reply to PING, echoing its nonce.
    pub const PONG: u8 = 0x86;
    /// Reply to BYE; the server closes after sending it.
    pub const BYE_OK: u8 = 0x87;
}

// ---- typed errors ----------------------------------------------------------

/// Typed error codes carried by [`ServerMsg::Error`] frames. Codes are
/// stable wire values: new codes may be appended, existing ones never
/// renumbered (docs/SERVING.md §Error codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ErrCode {
    /// HELLO payload did not start with `SYMR`.
    BadMagic,
    /// HELLO carried an unsupported protocol version.
    BadVersion,
    /// A frame failed its checksum or its payload did not decode.
    BadFrame,
    /// Unknown opcode for this direction.
    UnknownOpcode,
    /// Frame length exceeded the server's cap.
    FrameTooLarge,
    /// The first frame on the connection was not HELLO.
    NotHello,
    /// SUBMIT reused a session id that is still live on this connection.
    DuplicateSession,
    /// CANCEL named a session this connection does not own.
    NoSuchSession,
    /// The tenant is at its concurrent-session quota; submission shed.
    QuotaExceeded,
    /// The server is at its global session cap; submission shed.
    ServerBusy,
    /// Program source exceeded the server's size limit.
    SourceTooLarge,
    /// The program was rejected before it ran (e.g. reserved session id).
    ProgramRejected,
    /// The session was cancelled (by request or connection teardown).
    Cancelled,
    /// The client did not drain its stream; the server shed the
    /// connection's sessions to bound its buffers.
    SlowClient,
    /// Server-side invariant failure.
    Internal,
    /// The program parsed but failed admission-time static verification;
    /// the detail string carries the first diagnostic as
    /// `name:line:col: message`.
    VerifyRejected,
}

impl ErrCode {
    /// Stable wire value.
    pub fn code(self) -> u16 {
        match self {
            ErrCode::BadMagic => 1,
            ErrCode::BadVersion => 2,
            ErrCode::BadFrame => 3,
            ErrCode::UnknownOpcode => 4,
            ErrCode::FrameTooLarge => 5,
            ErrCode::NotHello => 6,
            ErrCode::DuplicateSession => 7,
            ErrCode::NoSuchSession => 8,
            ErrCode::QuotaExceeded => 9,
            ErrCode::ServerBusy => 10,
            ErrCode::SourceTooLarge => 11,
            ErrCode::ProgramRejected => 12,
            ErrCode::Cancelled => 13,
            ErrCode::SlowClient => 14,
            ErrCode::Internal => 15,
            ErrCode::VerifyRejected => 16,
        }
    }

    /// Parses a wire value back to the code, `None` for unknown values
    /// (a newer peer; treat as fatal but unrenderable).
    pub fn from_code(v: u16) -> Option<ErrCode> {
        Some(match v {
            1 => ErrCode::BadMagic,
            2 => ErrCode::BadVersion,
            3 => ErrCode::BadFrame,
            4 => ErrCode::UnknownOpcode,
            5 => ErrCode::FrameTooLarge,
            6 => ErrCode::NotHello,
            7 => ErrCode::DuplicateSession,
            8 => ErrCode::NoSuchSession,
            9 => ErrCode::QuotaExceeded,
            10 => ErrCode::ServerBusy,
            11 => ErrCode::SourceTooLarge,
            12 => ErrCode::ProgramRejected,
            13 => ErrCode::Cancelled,
            14 => ErrCode::SlowClient,
            15 => ErrCode::Internal,
            16 => ErrCode::VerifyRejected,
            _ => return None,
        })
    }

    /// Whether this error tears down the whole connection (true) or only
    /// the named session (false).
    pub fn is_conn_fatal(self) -> bool {
        matches!(
            self,
            ErrCode::BadMagic
                | ErrCode::BadVersion
                | ErrCode::BadFrame
                | ErrCode::UnknownOpcode
                | ErrCode::FrameTooLarge
                | ErrCode::NotHello
                | ErrCode::SlowClient
        )
    }
}

impl core::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ErrCode::BadMagic => "bad magic",
            ErrCode::BadVersion => "unsupported protocol version",
            ErrCode::BadFrame => "malformed frame",
            ErrCode::UnknownOpcode => "unknown opcode",
            ErrCode::FrameTooLarge => "frame too large",
            ErrCode::NotHello => "first frame must be HELLO",
            ErrCode::DuplicateSession => "session id already live",
            ErrCode::NoSuchSession => "no such session",
            ErrCode::QuotaExceeded => "tenant quota exceeded",
            ErrCode::ServerBusy => "server at session capacity",
            ErrCode::SourceTooLarge => "program source too large",
            ErrCode::ProgramRejected => "program rejected",
            ErrCode::Cancelled => "session cancelled",
            ErrCode::SlowClient => "client not draining stream",
            ErrCode::Internal => "internal server error",
            ErrCode::VerifyRejected => "program failed verification",
        };
        f.write_str(s)
    }
}

/// How a session finished, as carried by [`ServerMsg::Done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Program returned cleanly.
    Ok,
    /// Program returned a typed error (detail string holds it).
    Error,
    /// Program crashed (panicked) inside the kernel sandbox.
    Crashed,
    /// Session was cancelled before the program finished.
    Cancelled,
}

impl SessionStatus {
    /// Stable wire value.
    pub fn code(self) -> u8 {
        match self {
            SessionStatus::Ok => 0,
            SessionStatus::Error => 1,
            SessionStatus::Crashed => 2,
            SessionStatus::Cancelled => 3,
        }
    }

    /// Parses a wire value.
    pub fn from_code(v: u8) -> Option<SessionStatus> {
        Some(match v {
            0 => SessionStatus::Ok,
            1 => SessionStatus::Error,
            2 => SessionStatus::Crashed,
            3 => SessionStatus::Cancelled,
            _ => return None,
        })
    }
}

// ---- messages --------------------------------------------------------------

/// Client→server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Connection opener: protocol magic + version + tenant identity.
    Hello {
        /// Protocol version the client speaks.
        version: u32,
        /// Tenant id for admission/quota at the door.
        tenant: u64,
    },
    /// Submit a LipScript program as a new session.
    Submit {
        /// Client-chosen session id, unique among this connection's live
        /// sessions; must not be [`CONN_SCOPE`].
        session: u64,
        /// Virtual arrival time floor in nanoseconds: the server spawns
        /// the program no earlier than this instant on its virtual clock.
        /// `0` means "now". Lets a load generator replay traces with
        /// simulated client RTT deterministically.
        not_before_ns: u64,
        /// Interpreter fuel budget, `0` for the server default.
        fuel: u64,
        /// Program name (telemetry/track label).
        name: String,
        /// Argument string passed to the program (`args()` builtin).
        args: String,
        /// LipScript source text.
        source: String,
    },
    /// Cancel a live session.
    Cancel {
        /// Session to cancel.
        session: u64,
    },
    /// Liveness probe; server echoes the nonce in a PONG.
    Ping {
        /// Opaque echo value.
        nonce: u64,
    },
    /// Clean shutdown request.
    Bye,
}

/// Server→client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// HELLO accepted.
    HelloOk {
        /// Version the server speaks (today: always [`WIRE_VERSION`]).
        version: u32,
        /// Server identity string, for operators.
        server: String,
    },
    /// SUBMIT accepted; the program is spawned as kernel process `pid`.
    Accepted {
        /// Echoed session id.
        session: u64,
        /// Kernel pid executing the program.
        pid: u64,
    },
    /// One streamed output chunk from `emit`/`emit_tokens`.
    Stream {
        /// Owning session.
        session: u64,
        /// Virtual time of the emission on the server clock (ns).
        at_ns: u64,
        /// Token count of the chunk (0 for plain-text emits).
        tokens: u64,
        /// The chunk text.
        text: String,
    },
    /// Session finished.
    Done {
        /// Owning session.
        session: u64,
        /// Virtual completion time on the server clock (ns).
        at_ns: u64,
        /// Outcome class.
        status: SessionStatus,
        /// Human-readable detail (the typed `SysError` display for
        /// `Error`, empty otherwise).
        detail: String,
        /// Tokens the program emitted.
        emitted_tokens: u64,
        /// Tokens the program ran through `pred`.
        pred_tokens: u64,
    },
    /// Typed error. `session == CONN_SCOPE` marks a connection-scope
    /// error; [`ErrCode::is_conn_fatal`] says whether the connection dies.
    Error {
        /// Session scope, or [`CONN_SCOPE`].
        session: u64,
        /// Typed code.
        code: ErrCode,
        /// Human-readable detail.
        detail: String,
    },
    /// PING reply.
    Pong {
        /// Echoed nonce.
        nonce: u64,
    },
    /// BYE reply; the server closes the connection after sending it.
    ByeOk,
}

impl ClientMsg {
    /// Appends this message as one SYMR frame to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut p = Vec::new();
        let tag = match self {
            ClientMsg::Hello { version, tenant } => {
                p.extend_from_slice(&WIRE_MAGIC);
                push_u32(&mut p, *version);
                push_u64(&mut p, *tenant);
                op::HELLO
            }
            ClientMsg::Submit {
                session,
                not_before_ns,
                fuel,
                name,
                args,
                source,
            } => {
                push_u64(&mut p, *session);
                push_u64(&mut p, *not_before_ns);
                push_u64(&mut p, *fuel);
                push_str(&mut p, name);
                push_str(&mut p, args);
                push_str(&mut p, source);
                op::SUBMIT
            }
            ClientMsg::Cancel { session } => {
                push_u64(&mut p, *session);
                op::CANCEL
            }
            ClientMsg::Ping { nonce } => {
                push_u64(&mut p, *nonce);
                op::PING
            }
            ClientMsg::Bye => op::BYE,
        };
        append_frame(out, tag, &p);
    }

    /// Decodes a client frame. [`ErrCode::UnknownOpcode`] for server-side
    /// tags, [`ErrCode::BadFrame`] for a payload that does not parse
    /// exactly (trailing bytes included).
    pub fn decode(tag: u8, payload: &[u8]) -> Result<ClientMsg, ErrCode> {
        let mut c = Cursor::new(payload);
        let msg = match tag {
            op::HELLO => {
                let magic = c.take(4).ok_or(ErrCode::BadFrame)?;
                if magic != WIRE_MAGIC {
                    return Err(ErrCode::BadMagic);
                }
                ClientMsg::Hello {
                    version: c.u32().ok_or(ErrCode::BadFrame)?,
                    tenant: c.u64().ok_or(ErrCode::BadFrame)?,
                }
            }
            op::SUBMIT => ClientMsg::Submit {
                session: c.u64().ok_or(ErrCode::BadFrame)?,
                not_before_ns: c.u64().ok_or(ErrCode::BadFrame)?,
                fuel: c.u64().ok_or(ErrCode::BadFrame)?,
                name: c.str().ok_or(ErrCode::BadFrame)?,
                args: c.str().ok_or(ErrCode::BadFrame)?,
                source: c.str().ok_or(ErrCode::BadFrame)?,
            },
            op::CANCEL => ClientMsg::Cancel {
                session: c.u64().ok_or(ErrCode::BadFrame)?,
            },
            op::PING => ClientMsg::Ping {
                nonce: c.u64().ok_or(ErrCode::BadFrame)?,
            },
            op::BYE => ClientMsg::Bye,
            _ => return Err(ErrCode::UnknownOpcode),
        };
        if !c.done() {
            return Err(ErrCode::BadFrame);
        }
        Ok(msg)
    }
}

impl ServerMsg {
    /// Appends this message as one SYMR frame to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut p = Vec::new();
        let tag = match self {
            ServerMsg::HelloOk { version, server } => {
                push_u32(&mut p, *version);
                push_str(&mut p, server);
                op::HELLO_OK
            }
            ServerMsg::Accepted { session, pid } => {
                push_u64(&mut p, *session);
                push_u64(&mut p, *pid);
                op::ACCEPTED
            }
            ServerMsg::Stream {
                session,
                at_ns,
                tokens,
                text,
            } => {
                push_u64(&mut p, *session);
                push_u64(&mut p, *at_ns);
                push_u64(&mut p, *tokens);
                push_str(&mut p, text);
                op::STREAM
            }
            ServerMsg::Done {
                session,
                at_ns,
                status,
                detail,
                emitted_tokens,
                pred_tokens,
            } => {
                push_u64(&mut p, *session);
                push_u64(&mut p, *at_ns);
                p.push(status.code());
                push_str(&mut p, detail);
                push_u64(&mut p, *emitted_tokens);
                push_u64(&mut p, *pred_tokens);
                op::DONE
            }
            ServerMsg::Error {
                session,
                code,
                detail,
            } => {
                push_u64(&mut p, *session);
                p.extend_from_slice(&code.code().to_le_bytes());
                push_str(&mut p, detail);
                op::ERROR
            }
            ServerMsg::Pong { nonce } => {
                push_u64(&mut p, *nonce);
                op::PONG
            }
            ServerMsg::ByeOk => op::BYE_OK,
        };
        append_frame(out, tag, &p);
    }

    /// Decodes a server frame (client side).
    pub fn decode(tag: u8, payload: &[u8]) -> Result<ServerMsg, ErrCode> {
        let mut c = Cursor::new(payload);
        let msg = match tag {
            op::HELLO_OK => ServerMsg::HelloOk {
                version: c.u32().ok_or(ErrCode::BadFrame)?,
                server: c.str().ok_or(ErrCode::BadFrame)?,
            },
            op::ACCEPTED => ServerMsg::Accepted {
                session: c.u64().ok_or(ErrCode::BadFrame)?,
                pid: c.u64().ok_or(ErrCode::BadFrame)?,
            },
            op::STREAM => ServerMsg::Stream {
                session: c.u64().ok_or(ErrCode::BadFrame)?,
                at_ns: c.u64().ok_or(ErrCode::BadFrame)?,
                tokens: c.u64().ok_or(ErrCode::BadFrame)?,
                text: c.str().ok_or(ErrCode::BadFrame)?,
            },
            op::DONE => ServerMsg::Done {
                session: c.u64().ok_or(ErrCode::BadFrame)?,
                at_ns: c.u64().ok_or(ErrCode::BadFrame)?,
                status: c
                    .u8()
                    .and_then(SessionStatus::from_code)
                    .ok_or(ErrCode::BadFrame)?,
                detail: c.str().ok_or(ErrCode::BadFrame)?,
                emitted_tokens: c.u64().ok_or(ErrCode::BadFrame)?,
                pred_tokens: c.u64().ok_or(ErrCode::BadFrame)?,
            },
            op::ERROR => {
                let session = c.u64().ok_or(ErrCode::BadFrame)?;
                let raw = c.take(2).ok_or(ErrCode::BadFrame)?;
                let code = ErrCode::from_code(u16::from_le_bytes([raw[0], raw[1]]))
                    .ok_or(ErrCode::BadFrame)?;
                ServerMsg::Error {
                    session,
                    code,
                    detail: c.str().ok_or(ErrCode::BadFrame)?,
                }
            }
            op::PONG => ServerMsg::Pong {
                nonce: c.u64().ok_or(ErrCode::BadFrame)?,
            },
            op::BYE_OK => ServerMsg::ByeOk,
            _ => return Err(ErrCode::UnknownOpcode),
        };
        if !c.done() {
            return Err(ErrCode::BadFrame);
        }
        Ok(msg)
    }
}

// ---- incremental frame reader ----------------------------------------------

/// A fatal stream-decode failure. Unlike the on-disk journals, a live
/// stream never "truncates and continues": a failed checksum means the
/// two ends have lost framing and the connection must die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// A frame announced a payload longer than the configured cap. Caught
    /// from the 5 header bytes, before buffering the payload.
    TooLarge {
        /// Announced payload length.
        len: u32,
        /// Configured cap.
        max: u32,
    },
    /// A complete frame arrived with a bad checksum.
    Corrupt,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::TooLarge { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
            WireError::Corrupt => write!(f, "frame checksum mismatch"),
        }
    }
}

impl WireError {
    /// The typed error code a server reports for this failure.
    pub fn err_code(self) -> ErrCode {
        match self {
            WireError::TooLarge { .. } => ErrCode::FrameTooLarge,
            WireError::Corrupt => ErrCode::BadFrame,
        }
    }
}

/// Incremental frame decoder for a byte stream: feed arbitrary slices,
/// pop complete `(tag, payload)` frames. Short input is "not yet", never
/// an error; a completed frame with a bad CRC (or an oversized length
/// prefix) is a [`WireError`] and the reader is poisoned.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
    max_frame: u32,
    poisoned: bool,
}

impl FrameReader {
    /// A reader with the [`DEFAULT_MAX_FRAME`] payload cap.
    pub fn new() -> Self {
        Self::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// A reader with an explicit payload cap.
    pub fn with_max_frame(max_frame: u32) -> Self {
        FrameReader {
            buf: Vec::new(),
            pos: 0,
            max_frame,
            poisoned: false,
        }
    }

    /// Appends raw received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, keeping the buffer
        // bounded by one frame plus one read's worth of bytes.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > self.buf.len().saturating_sub(self.pos) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame. `Ok(None)` means "need more bytes".
    /// After an `Err` the reader stays poisoned and returns the same
    /// error forever — the connection is unrecoverable.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        if self.poisoned {
            return Err(WireError::Corrupt);
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 5 {
            return Ok(None);
        }
        let tag = avail[0];
        let len = u32::from_le_bytes([avail[1], avail[2], avail[3], avail[4]]);
        if len > self.max_frame {
            self.poisoned = true;
            return Err(WireError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        let total = FRAME_OVERHEAD + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[5..5 + len as usize];
        let stored = u32::from_le_bytes([
            avail[total - 4],
            avail[total - 3],
            avail[total - 2],
            avail[total - 1],
        ]);
        if stored != frame_crc(tag, payload) {
            self.poisoned = true;
            return Err(WireError::Corrupt);
        }
        let frame = (tag, payload.to_vec());
        self.pos += total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<ClientMsg> {
        vec![
            ClientMsg::Hello {
                version: WIRE_VERSION,
                tenant: 3,
            },
            ClientMsg::Submit {
                session: 1,
                not_before_ns: 5_000,
                fuel: 0,
                name: "agent".into(),
                args: "q=42".into(),
                source: "emit(\"hi\")".into(),
            },
            ClientMsg::Cancel { session: 1 },
            ClientMsg::Ping { nonce: 99 },
            ClientMsg::Bye,
        ]
    }

    #[test]
    fn client_messages_round_trip() {
        for msg in sample_msgs() {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            let mut r = FrameReader::new();
            r.feed(&buf);
            let (tag, payload) = r.next_frame().unwrap().unwrap();
            assert_eq!(ClientMsg::decode(tag, &payload).unwrap(), msg);
            assert_eq!(r.next_frame().unwrap(), None);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let msgs = vec![
            ServerMsg::HelloOk {
                version: WIRE_VERSION,
                server: "symphony-serve/0.1".into(),
            },
            ServerMsg::Accepted { session: 1, pid: 7 },
            ServerMsg::Stream {
                session: 1,
                at_ns: 123,
                tokens: 4,
                text: "four tokens!".into(),
            },
            ServerMsg::Done {
                session: 1,
                at_ns: 456,
                status: SessionStatus::Ok,
                detail: String::new(),
                emitted_tokens: 12,
                pred_tokens: 80,
            },
            ServerMsg::Error {
                session: CONN_SCOPE,
                code: ErrCode::QuotaExceeded,
                detail: "tenant 3 at 2 sessions".into(),
            },
            ServerMsg::Pong { nonce: 99 },
            ServerMsg::ByeOk,
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            let mut r = FrameReader::new();
            r.feed(&buf);
            let (tag, payload) = r.next_frame().unwrap().unwrap();
            assert_eq!(ServerMsg::decode(tag, &payload).unwrap(), msg);
        }
    }

    #[test]
    fn byte_at_a_time_feeding_reassembles_frames() {
        let mut buf = Vec::new();
        for m in sample_msgs() {
            m.encode(&mut buf);
        }
        let mut r = FrameReader::new();
        let mut seen = Vec::new();
        for b in &buf {
            r.feed(std::slice::from_ref(b));
            while let Some((tag, payload)) = r.next_frame().unwrap() {
                seen.push(ClientMsg::decode(tag, &payload).unwrap());
            }
        }
        assert_eq!(seen, sample_msgs());
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn corrupt_frame_poisons_reader() {
        let mut buf = Vec::new();
        ClientMsg::Ping { nonce: 1 }.encode(&mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut r = FrameReader::new();
        r.feed(&buf);
        assert_eq!(r.next_frame(), Err(WireError::Corrupt));
        // Poisoned forever, even if valid bytes follow.
        let mut good = Vec::new();
        ClientMsg::Bye.encode(&mut good);
        r.feed(&good);
        assert_eq!(r.next_frame(), Err(WireError::Corrupt));
    }

    #[test]
    fn oversized_frame_is_rejected_from_header_alone() {
        let mut r = FrameReader::with_max_frame(16);
        // Header announcing a 1 GiB payload; only 5 bytes ever arrive.
        r.feed(&[op::SUBMIT, 0, 0, 0, 0x40]);
        assert_eq!(
            r.next_frame(),
            Err(WireError::TooLarge {
                len: 0x4000_0000,
                max: 16
            })
        );
    }

    #[test]
    fn wrong_direction_and_trailing_bytes_are_typed_errors() {
        let mut buf = Vec::new();
        ServerMsg::Pong { nonce: 3 }.encode(&mut buf);
        let mut r = FrameReader::new();
        r.feed(&buf);
        let (tag, payload) = r.next_frame().unwrap().unwrap();
        assert_eq!(
            ClientMsg::decode(tag, &payload),
            Err(ErrCode::UnknownOpcode)
        );

        let mut p = Vec::new();
        ClientMsg::Ping { nonce: 3 }.encode(&mut p);
        // Re-frame the ping payload with a trailing junk byte.
        let mut junk = p[5..5 + 8].to_vec();
        junk.push(0xee);
        assert_eq!(ClientMsg::decode(op::PING, &junk), Err(ErrCode::BadFrame));
    }

    #[test]
    fn err_codes_round_trip_and_classify() {
        for v in 1..=16u16 {
            let c = ErrCode::from_code(v).unwrap();
            assert_eq!(c.code(), v);
            assert!(!c.to_string().is_empty());
        }
        assert_eq!(ErrCode::from_code(0), None);
        assert_eq!(ErrCode::from_code(999), None);
        assert!(ErrCode::BadFrame.is_conn_fatal());
        assert!(!ErrCode::QuotaExceeded.is_conn_fatal());
    }
}
