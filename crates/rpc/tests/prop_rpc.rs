//! Property tests for the SYMR wire protocol.
//!
//! Three families:
//!
//! 1. **Round trip** — any random message sequence (both directions,
//!    arbitrary strings including NUL/UTF-8 multibyte, extreme integer
//!    values) encodes to a byte stream that a [`FrameReader`] fed in
//!    arbitrary chunk sizes reassembles into exactly the original
//!    sequence.
//! 2. **Torn stream** — the stream cut at every possible byte length
//!    yields only complete prefix frames and then "need more bytes";
//!    never a panic, never a corrupt verdict (a short read is not an
//!    error on a live connection).
//! 3. **Corruption chaos** — flipping any single bit in the stream can
//!    only (a) surface as a typed [`WireError`]/decode error, or (b)
//!    produce frames; it must never panic and never silently alter a
//!    frame while leaving its checksum valid.

use proptest::prelude::*;
use symphony_rpc::{
    ClientMsg, ErrCode, FrameReader, ServerMsg, SessionStatus, WireError, WIRE_VERSION,
};

fn any_client_msg() -> impl Strategy<Value = ClientMsg> {
    prop_oneof![
        (any::<u32>(), any::<u64>())
            .prop_map(|(version, tenant)| ClientMsg::Hello { version, tenant }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (".{0,12}", ".{0,12}", ".{0,40}")
        )
            .prop_map(|((session, not_before_ns, fuel), (name, args, source))| {
                ClientMsg::Submit {
                    session,
                    not_before_ns,
                    fuel,
                    name,
                    args,
                    source,
                }
            }),
        any::<u64>().prop_map(|session| ClientMsg::Cancel { session }),
        any::<u64>().prop_map(|nonce| ClientMsg::Ping { nonce }),
        Just(ClientMsg::Bye),
    ]
}

fn any_server_msg() -> impl Strategy<Value = ServerMsg> {
    let status = prop_oneof![
        Just(SessionStatus::Ok),
        Just(SessionStatus::Error),
        Just(SessionStatus::Crashed),
        Just(SessionStatus::Cancelled),
    ];
    let code = (1u16..16).prop_map(|v| ErrCode::from_code(v).expect("codes 1..=15 are defined"));
    prop_oneof![
        (any::<u32>(), ".{0,12}")
            .prop_map(|(version, server)| ServerMsg::HelloOk { version, server }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, pid)| ServerMsg::Accepted { session, pid }),
        (any::<u64>(), any::<u64>(), any::<u64>(), ".{0,24}").prop_map(
            |(session, at_ns, tokens, text)| ServerMsg::Stream {
                session,
                at_ns,
                tokens,
                text,
            }
        ),
        (
            (any::<u64>(), any::<u64>(), status),
            (".{0,16}", any::<u64>(), any::<u64>())
        )
            .prop_map(
                |((session, at_ns, status), (detail, emitted_tokens, pred_tokens))| {
                    ServerMsg::Done {
                        session,
                        at_ns,
                        status,
                        detail,
                        emitted_tokens,
                        pred_tokens,
                    }
                }
            ),
        (any::<u64>(), code, ".{0,16}").prop_map(|(session, code, detail)| ServerMsg::Error {
            session,
            code,
            detail,
        }),
        any::<u64>().prop_map(|nonce| ServerMsg::Pong { nonce }),
        Just(ServerMsg::ByeOk),
    ]
}

/// Drains every complete frame currently buffered in `r` as client
/// messages, panicking on any wire/decode error.
fn drain_client(r: &mut FrameReader) -> Vec<ClientMsg> {
    let mut out = Vec::new();
    while let Some((tag, payload)) = r.next_frame().expect("stream must stay clean") {
        out.push(ClientMsg::decode(tag, &payload).expect("frame must decode"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn client_stream_round_trips_in_arbitrary_chunks(
        msgs in proptest::collection::vec(any_client_msg(), 1..8),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            m.encode(&mut wire);
        }
        let mut r = FrameReader::new();
        let mut seen = Vec::new();
        for piece in wire.chunks(chunk) {
            r.feed(piece);
            seen.extend(drain_client(&mut r));
        }
        prop_assert_eq!(seen, msgs);
        prop_assert_eq!(r.pending(), 0);
    }

    #[test]
    fn server_stream_round_trips(msgs in proptest::collection::vec(any_server_msg(), 1..8)) {
        let mut wire = Vec::new();
        for m in &msgs {
            m.encode(&mut wire);
        }
        let mut r = FrameReader::new();
        r.feed(&wire);
        let mut seen = Vec::new();
        while let Some((tag, payload)) = r.next_frame().expect("clean stream") {
            seen.push(ServerMsg::decode(tag, &payload).expect("decodes"));
        }
        prop_assert_eq!(seen, msgs);
    }

    #[test]
    fn torn_stream_yields_exact_prefix_then_waits(
        msgs in proptest::collection::vec(any_client_msg(), 1..5),
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for m in &msgs {
            m.encode(&mut wire);
            boundaries.push(wire.len());
        }
        for cut in 0..=wire.len() {
            let mut r = FrameReader::new();
            r.feed(&wire[..cut]);
            let seen = drain_client(&mut r);
            // Exactly the messages whose frames end at or before the cut.
            let complete = boundaries.iter().filter(|&&b| b <= cut).count();
            prop_assert_eq!(&seen, &msgs[..complete]);
            // Whatever remains is "not yet", never an error.
            prop_assert_eq!(r.next_frame(), Ok(None));
        }
    }

    #[test]
    fn single_bit_corruption_never_panics_or_slips_through(
        msg in any_client_msg(),
        bit in 0usize..64,
    ) {
        let mut wire = Vec::new();
        msg.encode(&mut wire);
        let pos = bit % (wire.len() * 8);
        wire[pos / 8] ^= 1 << (pos % 8);
        let mut r = FrameReader::new();
        r.feed(&wire);
        match r.next_frame() {
            // Flip landed in the length prefix and made it huge: typed cap error,
            // or the announced frame now extends past the buffer (need more bytes —
            // on a real connection the peer hangs and times out, it never decodes).
            Err(WireError::TooLarge { .. }) | Ok(None) => {}
            // CRC catches the flip.
            Err(WireError::Corrupt) => {}
            Ok(Some((tag, payload))) => {
                // The only same-length escape: the flip hit the tag or payload AND
                // forged a colliding CRC, or hit a don't-care bit. FNV-1a has no
                // single-bit collisions over these lengths, so the frame content
                // must be intact apart from the tag — and a changed tag decodes
                // to a different opcode or a typed error, never a panic.
                let _ = ClientMsg::decode(tag, &payload);
            }
        }
    }
}
