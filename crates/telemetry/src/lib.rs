//! Kernel-wide telemetry for Symphony.
//!
//! Three pieces, all stamped on the deterministic virtual clock:
//!
//! * [`EventBus`] — a zero-cost-when-disabled sink for typed
//!   [`EventKind`] events. Emission takes a closure, so a disabled bus
//!   never constructs (or allocates for) an event.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms shared across subsystems via cheap atomic handles; the
//!   legacy `KvStats`/`FaultStats`/`ResilienceStats` structs are snapshot
//!   views over it.
//! * [`export_chrome_trace`] — renders a recorded event stream as Chrome
//!   trace-event JSON loadable in Perfetto or `chrome://tracing`, with one
//!   track per LIP process/thread plus dedicated GPU and scheduler tracks.
//!
//! Because every timestamp is virtual time from a same-seed-deterministic
//! kernel, two identical runs export byte-identical traces — traces double
//! as regression artifacts. See `docs/OBSERVABILITY.md` for the event
//! taxonomy and metric catalogue.

mod bus;
mod chrome;
mod event;
mod metrics;

pub use bus::{Collector, EventBus};
pub use chrome::{export_chrome_trace, GPU_PID, GPU_TID, KERNEL_PID, SCHED_TID};
pub use event::{EventKind, SwapDir, TimedEvent};
pub use metrics::{
    latency_bounds_ns, occupancy_bounds, percent_bounds, Counter, Gauge, Histogram, MetricValue,
    MetricsRegistry, MetricsSnapshot,
};
