//! Kernel-wide telemetry for Symphony.
//!
//! Three pieces, all stamped on the deterministic virtual clock:
//!
//! * [`EventBus`] — a zero-cost-when-disabled sink for typed
//!   [`EventKind`] events. Emission takes a closure, so a disabled bus
//!   never constructs (or allocates for) an event.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms shared across subsystems via cheap atomic handles; the
//!   legacy `KvStats`/`FaultStats`/`ResilienceStats` structs are snapshot
//!   views over it.
//! * [`export_chrome_trace`] — renders a recorded event stream as Chrome
//!   trace-event JSON loadable in Perfetto or `chrome://tracing`, with one
//!   track per LIP process/thread plus dedicated GPU and scheduler tracks.
//!   [`export_chrome_trace_with_flows`] additionally renders causal
//!   events as Perfetto flow arrows.
//!
//! On top of the raw stream sits the causal layer: when
//! `KernelConfig::causal` is on the kernel records [`EventKind::CausalEdge`]
//! (spawn, IPC, join, tool, preemption), [`EventKind::PredExec`] and
//! [`EventKind::ReplayAnswered`] events. [`trace_tree`] folds the stream
//! into per-program span trees, [`critical_path`] walks each tree
//! backwards into exclusive [`critical_path::Phase`] buckets whose sum is
//! exactly the program's end-to-end latency, and [`flame`] renders that
//! attribution as flamegraph.pl folded stacks.
//!
//! Because every timestamp is virtual time from a same-seed-deterministic
//! kernel, two identical runs export byte-identical traces — traces double
//! as regression artifacts. See `docs/OBSERVABILITY.md` for the event
//! taxonomy and metric catalogue.

mod bus;
mod chrome;
pub mod critical_path;
mod event;
pub mod flame;
mod metrics;
pub mod trace_tree;

pub use bus::{Collector, EventBus};
pub use chrome::{
    export_chrome_trace, export_chrome_trace_with_flows, GPU_PID, GPU_TID, KERNEL_PID, SCHED_TID,
    SERVE_PID,
};
pub use critical_path::{
    analyze, critical_path as program_critical_path, render_report, LatencyBreakdown, Phase, PHASES,
};
pub use event::{EdgeKind, EventKind, SwapDir, TimedEvent};
pub use flame::collapsed_stacks;
pub use metrics::{
    latency_bounds_ns, occupancy_bounds, percent_bounds, Counter, Gauge, Histogram, MetricValue,
    MetricsRegistry, MetricsSnapshot,
};
pub use trace_tree::{
    build_forest, CausalLink, ExecWindow, ProgramTrace, SyscallSpan, ThreadTrace, TraceForest,
};
