//! Critical-path extraction and wall-clock phase attribution.
//!
//! [`analyze`] walks each program's reconstructed tree
//! ([`crate::trace_tree::TraceForest`]) *backwards* from program exit,
//! always following the edge that explains why the current point had to
//! wait: a `recv`/`join` span follows its [`SyscallSpan::wake`] edge to the
//! sender/exiter (possibly in another process), a sibling thread's start
//! follows its spawn edge to the parent, and every interval walked is
//! attributed to exactly one [`Phase`] bucket. The walk partitions
//! `[spawn, exit]` with no gaps and no overlaps, so a program's phase
//! buckets always sum *exactly* to its end-to-end latency — coverage is
//! 100% by construction, and any uninstrumented time shows up honestly as
//! [`Phase::Other`] rather than vanishing.
//!
//! This is the program-level view the paper argues serving systems lack:
//! per-request metrics can say a `pred` took 4 ms, but only the critical
//! path can say the *program* spent 60% of its life queue-waiting behind
//! an unrelated fleet. [`render_report`] produces a byte-stable text
//! report (used as a golden regression artifact), and
//! [`crate::flame::collapsed_stacks`] renders the same attribution as
//! flamegraph.pl input.

use symphony_sim::SimTime;

use crate::trace_tree::{ProgramTrace, SyscallSpan, ThreadTrace, TraceForest};

/// Exclusive wall-clock buckets on a program's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pooled `pred` time before (or between) GPU execution windows.
    QueueWait,
    /// GPU execution windows contributing >1 new token.
    Prefill,
    /// GPU execution windows contributing exactly one token.
    Decode,
    /// `kv_swap_in` syscalls (PCIe/NVMe transfer into HBM).
    KvSwapIn,
    /// `kv_swap_out` syscalls (transfer out of HBM).
    KvSwapOut,
    /// `call_tool` syscalls (virtual tool I/O, retries included).
    Tool,
    /// Blocked in `recv`/`join` waiting on another thread's progress.
    IpcBlocked,
    /// Syscalls answered from the WAL effect journal during recovery.
    RecoveryReplay,
    /// Everything else: on-CPU work between syscalls, cheap metadata
    /// syscalls, spawn/send overhead.
    Other,
}

/// All phases, in report order.
pub const PHASES: [Phase; 9] = [
    Phase::QueueWait,
    Phase::Prefill,
    Phase::Decode,
    Phase::KvSwapIn,
    Phase::KvSwapOut,
    Phase::Tool,
    Phase::IpcBlocked,
    Phase::RecoveryReplay,
    Phase::Other,
];

impl Phase {
    /// Stable kebab-case label used in reports and collapsed stacks.
    pub fn label(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue-wait",
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
            Phase::KvSwapIn => "kv-swap-in",
            Phase::KvSwapOut => "kv-swap-out",
            Phase::Tool => "tool",
            Phase::IpcBlocked => "ipc-blocked",
            Phase::RecoveryReplay => "recovery-replay",
            Phase::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::QueueWait => 0,
            Phase::Prefill => 1,
            Phase::Decode => 2,
            Phase::KvSwapIn => 3,
            Phase::KvSwapOut => 4,
            Phase::Tool => 5,
            Phase::IpcBlocked => 6,
            Phase::RecoveryReplay => 7,
            Phase::Other => 8,
        }
    }
}

/// One program's end-to-end latency attributed into phase buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBreakdown {
    /// Program pid.
    pub pid: u64,
    /// Program name.
    pub name: String,
    /// End-to-end latency (spawn → exit) in virtual nanoseconds.
    pub total_ns: u64,
    /// Nanoseconds per phase, indexed in [`PHASES`] order.
    pub phase_ns: [u64; 9],
}

impl LatencyBreakdown {
    /// Nanoseconds attributed to one phase.
    pub fn get(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Sum across all buckets (equals [`Self::total_ns`] by construction).
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Attributed fraction of end-to-end latency (1.0 by construction;
    /// anything lower signals a reconstruction bug).
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            1.0
        } else {
            self.attributed_ns() as f64 / self.total_ns as f64
        }
    }
}

/// Cap on backward-walk steps per program — a defensive bound far above
/// any real trace; on overrun the remainder is attributed to `Other`.
const MAX_STEPS: u32 = 1_000_000;

struct Walker<'a> {
    forest: &'a TraceForest,
    floor: SimTime,
    phase_ns: [u64; 9],
}

impl<'a> Walker<'a> {
    fn add(&mut self, phase: Phase, lo: SimTime, hi: SimTime) {
        let lo = lo.max(self.floor);
        if hi > lo {
            self.phase_ns[phase.index()] += hi.as_nanos() - lo.as_nanos();
        }
    }

    /// Attributes one clamped span interval `[span.start, end]`; returns
    /// the new cursor and, for wake jumps, the thread to continue on.
    fn attribute_span(
        &mut self,
        span: &SyscallSpan,
        end: SimTime,
    ) -> (SimTime, Option<(u64, u64)>) {
        if span.replayed {
            self.add(Phase::RecoveryReplay, span.start, end);
            return (span.start, None);
        }
        match span.name {
            "pred" => {
                self.attribute_pred(span, end);
                (span.start, None)
            }
            "kv_swap_in" => {
                self.add(Phase::KvSwapIn, span.start, end);
                (span.start, None)
            }
            "kv_swap_out" => {
                self.add(Phase::KvSwapOut, span.start, end);
                (span.start, None)
            }
            "call_tool" => {
                self.add(Phase::Tool, span.start, end);
                (span.start, None)
            }
            "recv" | "join" => {
                // Follow the wake edge: everything after the wake point is
                // wake-up latency here; everything before it is whatever
                // the *source* thread was doing, so the walk jumps there.
                match span.wake {
                    Some(w) if w.src_at > span.start => {
                        let jump = w.src_at.min(end);
                        self.add(Phase::IpcBlocked, jump, end);
                        if self.forest.thread(w.src_pid, w.src_tid).is_some() {
                            (jump, Some((w.src_pid, w.src_tid)))
                        } else {
                            self.add(Phase::IpcBlocked, span.start, jump);
                            (span.start, None)
                        }
                    }
                    _ => {
                        // Message already waiting (or no causal data):
                        // the span is pure dequeue cost, no jump.
                        self.add(Phase::IpcBlocked, span.start, end);
                        (span.start, None)
                    }
                }
            }
            _ => {
                self.add(Phase::Other, span.start, end);
                (span.start, None)
            }
        }
    }

    /// Splits a `pred` span into GPU execution windows (prefill/decode)
    /// and queue-wait remainder, walking the windows back to front.
    fn attribute_pred(&mut self, span: &SyscallSpan, end: SimTime) {
        let mut cursor = end;
        for w in span.execs.iter().rev() {
            let ws = w.start.max(span.start).min(cursor);
            let we = w.end.min(cursor).max(ws);
            self.add(Phase::QueueWait, we, cursor);
            let phase = if w.tokens > 1 { Phase::Prefill } else { Phase::Decode };
            self.add(phase, ws, we);
            cursor = ws;
        }
        self.add(Phase::QueueWait, span.start, cursor);
    }
}

/// Extracts the critical path of one program and attributes its
/// end-to-end latency into phase buckets. The walk may cross into other
/// programs' threads through IPC wake edges — time another program spent
/// producing a message this one waited for *is* this program's critical
/// path.
pub fn critical_path(forest: &TraceForest, program: &ProgramTrace) -> LatencyBreakdown {
    let floor = program.spawned_at;
    let mut walker = Walker {
        forest,
        floor,
        phase_ns: [0; 9],
    };
    // Walk back from the thread that finished last: program exit waits on
    // every thread, so the last exiter ends the critical path.
    let mut cur: Option<&ThreadTrace> = program
        .threads
        .iter()
        .max_by_key(|t| (t.ended_at, t.tid));
    let mut cursor = program.exited_at;
    let mut steps = 0u32;
    while cursor > floor {
        steps += 1;
        let Some(thread) = cur else { break };
        if steps > MAX_STEPS {
            break;
        }
        let span = thread.spans.iter().rev().find(|s| s.start < cursor);
        match span {
            Some(span) => {
                let end = span.end.min(cursor);
                // Gap between the span and the cursor: on-CPU user code.
                walker.add(Phase::Other, end, cursor);
                let (next, jump) = walker.attribute_span(span, end);
                cursor = next;
                if let Some((pid, tid)) = jump {
                    cur = walker.forest.thread(pid, tid);
                }
            }
            None => {
                // Below every span on this thread: its start region.
                match thread.spawned_by {
                    Some(link) if walker.forest.thread(link.src_pid, link.src_tid).is_some() => {
                        let jump = link.src_at.min(cursor);
                        walker.add(Phase::Other, jump, cursor);
                        cursor = jump;
                        cur = walker.forest.thread(link.src_pid, link.src_tid);
                    }
                    _ => break,
                }
            }
        }
    }
    // Anything left below the cursor (walk exhausted, step cap, or a
    // rootless thread) is honestly unexplained.
    walker.add(Phase::Other, floor, cursor);
    LatencyBreakdown {
        pid: program.pid,
        name: program.name.clone(),
        total_ns: program.elapsed_ns(),
        phase_ns: walker.phase_ns,
    }
}

/// Critical-path breakdowns for every program in the forest, pid order.
pub fn analyze(forest: &TraceForest) -> Vec<LatencyBreakdown> {
    forest
        .programs
        .iter()
        .map(|p| critical_path(forest, p))
        .collect()
}

/// Permille of `part` in `whole`, rendered as a one-decimal percentage —
/// integer arithmetic, so byte-stable across platforms.
fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "0.0".into();
    }
    let permille = (part as u128 * 1000 + whole as u128 / 2) / whole as u128;
    format!("{}.{}", permille / 10, permille % 10)
}

/// Renders breakdowns as a byte-stable text report (a golden artifact:
/// same seed → same trace → same report bytes).
pub fn render_report(breakdowns: &[LatencyBreakdown]) -> String {
    let mut out = String::from("critical-path report\n====================\n");
    for b in breakdowns {
        out.push_str(&format!(
            "\nprogram {} (pid {}): total {}ns\n",
            if b.name.is_empty() { "?" } else { &b.name },
            b.pid,
            b.total_ns
        ));
        for phase in PHASES {
            let ns = b.get(phase);
            if ns == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<16}{:>12}ns  {:>5}%\n",
                phase.label(),
                ns,
                pct(ns, b.total_ns)
            ));
        }
        out.push_str(&format!(
            "  {:<16}{:>12}ns  {:>5}%\n",
            "attributed",
            b.attributed_ns(),
            pct(b.attributed_ns(), b.total_ns)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EdgeKind, EventKind, TimedEvent};
    use crate::trace_tree::build_forest;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn ev(at: u64, kind: EventKind) -> TimedEvent {
        TimedEvent { at: t(at), kind }
    }

    /// Main thread spawns a worker, worker runs a pred (queue 100ns,
    /// prefill 600ns), main blocks in join for the duration.
    fn agent_stream() -> Vec<TimedEvent> {
        vec![
            ev(0, EventKind::ProcessSpawn { pid: 1, name: "agent".into() }),
            ev(0, EventKind::ThreadSpawn { pid: 1, tid: 10 }),
            ev(100, EventKind::SyscallEnter { pid: 1, tid: 10, name: "spawn" }),
            ev(100, EventKind::ThreadSpawn { pid: 1, tid: 11 }),
            ev(
                100,
                EventKind::CausalEdge {
                    edge: EdgeKind::Spawn,
                    src_pid: 1,
                    src_tid: 10,
                    src_at: t(100),
                    dst_pid: 1,
                    dst_tid: 11,
                },
            ),
            ev(150, EventKind::SyscallExit { pid: 1, tid: 10, name: "spawn" }),
            ev(200, EventKind::SyscallEnter { pid: 1, tid: 10, name: "join" }),
            ev(200, EventKind::SyscallEnter { pid: 1, tid: 11, name: "pred" }),
            ev(300, EventKind::BatchBegin { id: 1, requests: 1, occupancy_pct: 10, new_tokens: 4 }),
            ev(
                300,
                EventKind::PredExec { pid: 1, tid: 11, batch: 1, tokens: 4, enqueued_at: t(200) },
            ),
            ev(900, EventKind::BatchEnd { id: 1 }),
            ev(950, EventKind::SyscallExit { pid: 1, tid: 11, name: "pred" }),
            ev(960, EventKind::ThreadExit { pid: 1, tid: 11, ok: true }),
            ev(
                960,
                EventKind::CausalEdge {
                    edge: EdgeKind::Join,
                    src_pid: 1,
                    src_tid: 11,
                    src_at: t(960),
                    dst_pid: 1,
                    dst_tid: 10,
                },
            ),
            ev(1000, EventKind::SyscallExit { pid: 1, tid: 10, name: "join" }),
            ev(1100, EventKind::ThreadExit { pid: 1, tid: 10, ok: true }),
            ev(1100, EventKind::ProcessExit { pid: 1, ok: true }),
        ]
    }

    #[test]
    fn buckets_partition_the_whole_program() {
        let forest = build_forest(&agent_stream());
        let breakdowns = analyze(&forest);
        assert_eq!(breakdowns.len(), 1);
        let b = &breakdowns[0];
        assert_eq!(b.total_ns, 1_100);
        assert_eq!(b.attributed_ns(), b.total_ns, "exact partition");
        assert!((b.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn join_jump_walks_into_the_worker_pred() {
        let forest = build_forest(&agent_stream());
        let b = &analyze(&forest)[0];
        // Walk: [1000,1100] gap → other; join wake at 960 → ipc-blocked
        // [960,1000]; jump to worker tid 11: gap [950,960] other; pred
        // [200,950]: queue [900,950], prefill [300,900], queue [200,300];
        // below worker spans: spawn edge at 100 → other [100,200]; on main
        // below 100: gap [0,100] other.
        assert_eq!(b.get(Phase::IpcBlocked), 40);
        assert_eq!(b.get(Phase::Prefill), 600);
        assert_eq!(b.get(Phase::QueueWait), 150);
        assert_eq!(b.get(Phase::Decode), 0);
        assert_eq!(b.get(Phase::Other), 310);
    }

    #[test]
    fn decode_windows_and_swap_spans_bucket_separately() {
        let events = vec![
            ev(0, EventKind::ProcessSpawn { pid: 3, name: "rag".into() }),
            ev(0, EventKind::ThreadSpawn { pid: 3, tid: 30 }),
            ev(10, EventKind::SyscallEnter { pid: 3, tid: 30, name: "kv_swap_in" }),
            ev(60, EventKind::SyscallExit { pid: 3, tid: 30, name: "kv_swap_in" }),
            ev(60, EventKind::SyscallEnter { pid: 3, tid: 30, name: "pred" }),
            ev(70, EventKind::BatchBegin { id: 9, requests: 1, occupancy_pct: 5, new_tokens: 1 }),
            ev(
                70,
                EventKind::PredExec { pid: 3, tid: 30, batch: 9, tokens: 1, enqueued_at: t(60) },
            ),
            ev(100, EventKind::BatchEnd { id: 9 }),
            ev(110, EventKind::SyscallExit { pid: 3, tid: 30, name: "pred" }),
            ev(120, EventKind::ThreadExit { pid: 3, tid: 30, ok: true }),
            ev(120, EventKind::ProcessExit { pid: 3, ok: true }),
        ];
        let forest = build_forest(&events);
        let b = &analyze(&forest)[0];
        assert_eq!(b.get(Phase::KvSwapIn), 50);
        assert_eq!(b.get(Phase::Decode), 30);
        assert_eq!(b.get(Phase::QueueWait), 20);
        assert_eq!(b.get(Phase::Other), 20);
        assert_eq!(b.attributed_ns(), 120);
    }

    #[test]
    fn report_is_byte_stable() {
        let forest = build_forest(&agent_stream());
        let breakdowns = analyze(&forest);
        let a = render_report(&breakdowns);
        let b = render_report(&breakdowns);
        assert_eq!(a, b);
        assert!(a.contains("program agent (pid 1): total 1100ns"));
        assert!(a.contains("prefill"));
        assert!(a.contains("100.0%"));
    }
}
