//! Per-program span-tree reconstruction from a recorded event stream.
//!
//! The event bus records a flat, time-ordered stream. This module folds it
//! back into the shape the kernel actually executed: a [`TraceForest`] of
//! root programs, each holding its threads, each thread holding its
//! syscall spans in order. Causal events (recorded when
//! `KernelConfig::causal` is on) decorate the tree:
//!
//! * [`EventKind::CausalEdge`] `Spawn` edges become [`ThreadTrace::spawned_by`];
//!   `Ipc`/`Join` edges become [`SyscallSpan::wake`], pointing at the source
//!   point (thread + time) whose progress unblocked the span.
//! * [`EventKind::PredExec`] plus `Batch{Begin,End}` pairs become
//!   [`ExecWindow`]s inside the owning `pred` span, splitting blocked time
//!   into GPU execution versus pool queueing, and carry the pred's pool
//!   entry time ([`SyscallSpan::enqueued_at`]).
//! * [`EventKind::ReplayAnswered`] marks a span as answered from the WAL
//!   effect journal during recovery ([`SyscallSpan::replayed`]).
//!
//! The reconstruction is total: every `SyscallEnter` in the stream lands in
//! exactly one program's tree (spans still open when the stream ends are
//! closed at the last recorded timestamp). [`crate::critical_path`] walks
//! this forest backwards to attribute wall-clock into phase buckets.

use std::collections::BTreeMap;

use symphony_sim::SimTime;

use crate::event::{EdgeKind, EventKind, TimedEvent};

/// A causal pointer to the source point that enabled some progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalLink {
    /// Why the destination made progress.
    pub edge: EdgeKind,
    /// Source thread's process.
    pub src_pid: u64,
    /// Source thread.
    pub src_tid: u64,
    /// When the source half happened (e.g. when the message was sent).
    pub src_at: SimTime,
}

/// One GPU execution window attributed to a `pred` span: the slice of a
/// batch/iteration in which this pred's tokens actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecWindow {
    /// Batch begin.
    pub start: SimTime,
    /// Batch end.
    pub end: SimTime,
    /// New tokens this member contributed (>1 ⇒ prefill, 1 ⇒ decode).
    pub tokens: u32,
}

/// One syscall span on a thread: entry to reply delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallSpan {
    /// Stable syscall name (`pred`, `recv`, `kv_swap_in`, …).
    pub name: &'static str,
    /// `SyscallEnter` time.
    pub start: SimTime,
    /// `SyscallExit` time (last recorded time for spans still open when
    /// the stream ended).
    pub end: SimTime,
    /// When the pred joined the inference pool (earliest across chunked
    /// iterations); `pred` spans only.
    pub enqueued_at: Option<SimTime>,
    /// GPU execution windows inside this span (`pred` spans only), in
    /// batch order.
    pub execs: Vec<ExecWindow>,
    /// Answered from the WAL effect journal during recovery replay.
    pub replayed: bool,
    /// The IPC send or thread exit that unblocked this span (`recv` and
    /// `join` spans, causal mode only).
    pub wake: Option<CausalLink>,
}

/// One LIP thread's reconstructed timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// Thread id (globally unique).
    pub tid: u64,
    /// `ThreadSpawn` time.
    pub started_at: SimTime,
    /// `ThreadExit` time (last recorded time if the thread never exited).
    pub ended_at: SimTime,
    /// The parent thread's `spawn` syscall (causal mode, sibling threads
    /// only; root main threads have no parent).
    pub spawned_by: Option<CausalLink>,
    /// Syscall spans in time order. At most one is open at a time — LIP
    /// threads block in the kernel for the duration of every syscall.
    pub spans: Vec<SyscallSpan>,
}

/// One root program's reconstructed tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramTrace {
    /// Process id.
    pub pid: u64,
    /// Program name from `ProcessSpawn` (empty if never observed).
    pub name: String,
    /// `ProcessSpawn` time.
    pub spawned_at: SimTime,
    /// `ProcessExit` time (last recorded time if the program never
    /// exited, e.g. the stream ends mid-run).
    pub exited_at: SimTime,
    /// Whether the program exited successfully.
    pub ok: bool,
    /// Threads in spawn order (the first is the main thread).
    pub threads: Vec<ThreadTrace>,
}

impl ProgramTrace {
    /// End-to-end wall-clock in virtual nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.exited_at.as_nanos().saturating_sub(self.spawned_at.as_nanos())
    }

    /// Total syscall spans across all threads.
    pub fn span_count(&self) -> usize {
        self.threads.iter().map(|t| t.spans.len()).sum()
    }
}

/// All root programs reconstructed from one event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceForest {
    /// Programs in pid order.
    pub programs: Vec<ProgramTrace>,
}

impl TraceForest {
    /// Looks up a thread anywhere in the forest by `(pid, tid)`.
    pub fn thread(&self, pid: u64, tid: u64) -> Option<&ThreadTrace> {
        self.programs
            .iter()
            .find(|p| p.pid == pid)?
            .threads
            .iter()
            .find(|t| t.tid == tid)
    }

    /// Total syscall spans across every program.
    pub fn span_count(&self) -> usize {
        self.programs.iter().map(|p| p.span_count()).sum()
    }
}

struct ThreadBuilder {
    tid: u64,
    started_at: SimTime,
    ended_at: Option<SimTime>,
    spawned_by: Option<CausalLink>,
    spans: Vec<SyscallSpan>,
    open: Option<SyscallSpan>,
}

impl ThreadBuilder {
    fn new(tid: u64, at: SimTime) -> Self {
        ThreadBuilder {
            tid,
            started_at: at,
            ended_at: None,
            spawned_by: None,
            spans: Vec::new(),
            open: None,
        }
    }

    fn enter(&mut self, name: &'static str, at: SimTime) {
        // A new entry while a span is open means the exit event was lost
        // (e.g. a capacity-capped bus); close the stale span at the new
        // entry so the timeline stays a partition.
        if let Some(mut stale) = self.open.take() {
            stale.end = at;
            self.spans.push(stale);
        }
        self.open = Some(SyscallSpan {
            name,
            start: at,
            end: at,
            enqueued_at: None,
            execs: Vec::new(),
            replayed: false,
            wake: None,
        });
    }

    fn exit(&mut self, at: SimTime) {
        if let Some(mut span) = self.open.take() {
            span.end = at;
            self.spans.push(span);
        }
    }

    fn finish(mut self, last_at: SimTime) -> ThreadTrace {
        let ended_at = self.ended_at.unwrap_or(last_at);
        if let Some(mut span) = self.open.take() {
            span.end = ended_at.max(span.start);
            self.spans.push(span);
        }
        ThreadTrace {
            tid: self.tid,
            started_at: self.started_at,
            ended_at: ended_at.max(self.started_at),
            spawned_by: self.spawned_by,
            spans: self.spans,
        }
    }
}

/// An open GPU batch: begin time plus the `(pid, tid, tokens)` members
/// seen via `PredExec`.
type OpenBatch = (SimTime, Vec<(u64, u64, u32)>);

struct ProgramBuilder {
    name: String,
    spawned_at: SimTime,
    exited_at: Option<SimTime>,
    ok: bool,
    /// Spawn order of this program's threads.
    tids: Vec<u64>,
}

/// Reconstructs the per-program span forest from a recorded event stream.
///
/// Works on streams recorded with or without causal mode: without it the
/// trees still carry full span timelines, just no wake/spawn edges, exec
/// windows or replay marks.
pub fn build_forest(events: &[TimedEvent]) -> TraceForest {
    let last_at = events.last().map(|e| e.at).unwrap_or(SimTime::ZERO);
    let mut programs: BTreeMap<u64, ProgramBuilder> = BTreeMap::new();
    let mut threads: BTreeMap<(u64, u64), ThreadBuilder> = BTreeMap::new();
    // Open batches: id → (begin time, members seen via PredExec).
    let mut batches: BTreeMap<u64, OpenBatch> = BTreeMap::new();

    let program = |programs: &mut BTreeMap<u64, ProgramBuilder>, pid: u64, at: SimTime| {
        programs.entry(pid).or_insert_with(|| ProgramBuilder {
            name: String::new(),
            spawned_at: at,
            exited_at: None,
            ok: false,
            tids: Vec::new(),
        });
    };

    for ev in events {
        let at = ev.at;
        match &ev.kind {
            EventKind::ProcessSpawn { pid, name } => {
                program(&mut programs, *pid, at);
                if let Some(p) = programs.get_mut(pid) {
                    if p.name.is_empty() {
                        p.name = name.clone();
                    }
                }
            }
            EventKind::ProcessExit { pid, ok } => {
                program(&mut programs, *pid, at);
                if let Some(p) = programs.get_mut(pid) {
                    p.exited_at = Some(at);
                    p.ok = *ok;
                }
            }
            EventKind::ThreadSpawn { pid, tid } => {
                program(&mut programs, *pid, at);
                if let Some(p) = programs.get_mut(pid) {
                    if !p.tids.contains(tid) {
                        p.tids.push(*tid);
                    }
                }
                threads
                    .entry((*pid, *tid))
                    .or_insert_with(|| ThreadBuilder::new(*tid, at));
            }
            EventKind::ThreadExit { pid, tid, .. } => {
                if let Some(t) = threads.get_mut(&(*pid, *tid)) {
                    t.ended_at = Some(at);
                    t.exit(at);
                }
            }
            EventKind::SyscallEnter { pid, tid, name } => {
                program(&mut programs, *pid, at);
                let t = threads
                    .entry((*pid, *tid))
                    .or_insert_with(|| ThreadBuilder::new(*tid, at));
                t.enter(name, at);
                if let Some(p) = programs.get_mut(pid) {
                    if !p.tids.contains(tid) {
                        p.tids.push(*tid);
                    }
                }
            }
            EventKind::SyscallExit { pid, tid, .. } => {
                if let Some(t) = threads.get_mut(&(*pid, *tid)) {
                    t.exit(at);
                }
            }
            EventKind::BatchBegin { id, .. } => {
                batches.entry(*id).or_insert((at, Vec::new()));
            }
            EventKind::PredExec {
                pid,
                tid,
                batch,
                tokens,
                enqueued_at,
            } => {
                if let Some((_, members)) = batches.get_mut(batch) {
                    members.push((*pid, *tid, *tokens));
                }
                if let Some(span) = threads.get_mut(&(*pid, *tid)).and_then(|t| t.open.as_mut())
                {
                    span.enqueued_at = Some(match span.enqueued_at {
                        Some(e) => e.min(*enqueued_at),
                        None => *enqueued_at,
                    });
                }
            }
            EventKind::BatchEnd { id } => {
                if let Some((begin, members)) = batches.remove(id) {
                    for (pid, tid, tokens) in members {
                        if let Some(span) =
                            threads.get_mut(&(pid, tid)).and_then(|t| t.open.as_mut())
                        {
                            span.execs.push(ExecWindow {
                                start: begin,
                                end: at,
                                tokens,
                            });
                        }
                    }
                }
            }
            EventKind::ReplayAnswered { pid, tid, .. } => {
                if let Some(span) = threads.get_mut(&(*pid, *tid)).and_then(|t| t.open.as_mut())
                {
                    span.replayed = true;
                }
            }
            EventKind::CausalEdge {
                edge,
                src_pid,
                src_tid,
                src_at,
                dst_pid,
                dst_tid,
            } => {
                let link = CausalLink {
                    edge: *edge,
                    src_pid: *src_pid,
                    src_tid: *src_tid,
                    src_at: *src_at,
                };
                match edge {
                    EdgeKind::Spawn => {
                        if let Some(t) = threads.get_mut(&(*dst_pid, *dst_tid)) {
                            t.spawned_by = Some(link);
                        }
                    }
                    EdgeKind::Ipc | EdgeKind::Join => {
                        if let Some(span) =
                            threads.get_mut(&(*dst_pid, *dst_tid)).and_then(|t| t.open.as_mut())
                        {
                            span.wake = Some(link);
                        }
                    }
                    // Tool completion and preemption edges carry no
                    // blocked-time jump: the issuing span itself is the
                    // attribution unit. They render as flow arrows only.
                    EdgeKind::Tool | EdgeKind::Preempt => {}
                }
            }
            _ => {}
        }
    }

    let mut thread_map: BTreeMap<(u64, u64), ThreadTrace> = threads
        .into_iter()
        .map(|((pid, tid), b)| ((pid, tid), b.finish(last_at)))
        .collect();

    let programs = programs
        .into_iter()
        .map(|(pid, p)| {
            let threads: Vec<ThreadTrace> = p
                .tids
                .iter()
                .filter_map(|tid| thread_map.remove(&(pid, *tid)))
                .collect();
            let spawned_at = p.spawned_at;
            let exited_at = p
                .exited_at
                .unwrap_or_else(|| {
                    threads
                        .iter()
                        .map(|t| t.ended_at)
                        .max()
                        .unwrap_or(last_at)
                })
                .max(spawned_at);
            ProgramTrace {
                pid,
                name: p.name,
                spawned_at,
                exited_at,
                ok: p.ok,
                threads,
            }
        })
        .collect();

    TraceForest { programs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn ev(at: u64, kind: EventKind) -> TimedEvent {
        TimedEvent { at: t(at), kind }
    }

    fn small_stream() -> Vec<TimedEvent> {
        vec![
            ev(0, EventKind::ProcessSpawn { pid: 1, name: "agent".into() }),
            ev(0, EventKind::ThreadSpawn { pid: 1, tid: 10 }),
            ev(100, EventKind::SyscallEnter { pid: 1, tid: 10, name: "spawn" }),
            ev(100, EventKind::ThreadSpawn { pid: 1, tid: 11 }),
            ev(
                100,
                EventKind::CausalEdge {
                    edge: EdgeKind::Spawn,
                    src_pid: 1,
                    src_tid: 10,
                    src_at: t(100),
                    dst_pid: 1,
                    dst_tid: 11,
                },
            ),
            ev(150, EventKind::SyscallExit { pid: 1, tid: 10, name: "spawn" }),
            ev(200, EventKind::SyscallEnter { pid: 1, tid: 11, name: "pred" }),
            ev(300, EventKind::BatchBegin { id: 7, requests: 1, occupancy_pct: 10, new_tokens: 4 }),
            ev(
                300,
                EventKind::PredExec { pid: 1, tid: 11, batch: 7, tokens: 4, enqueued_at: t(250) },
            ),
            ev(900, EventKind::BatchEnd { id: 7 }),
            ev(950, EventKind::SyscallExit { pid: 1, tid: 11, name: "pred" }),
            ev(960, EventKind::ThreadExit { pid: 1, tid: 11, ok: true }),
            ev(1000, EventKind::SyscallEnter { pid: 1, tid: 10, name: "join" }),
            ev(
                1000,
                EventKind::CausalEdge {
                    edge: EdgeKind::Join,
                    src_pid: 1,
                    src_tid: 11,
                    src_at: t(960),
                    dst_pid: 1,
                    dst_tid: 10,
                },
            ),
            ev(1050, EventKind::SyscallExit { pid: 1, tid: 10, name: "join" }),
            ev(1100, EventKind::ThreadExit { pid: 1, tid: 10, ok: true }),
            ev(1100, EventKind::ProcessExit { pid: 1, ok: true }),
        ]
    }

    #[test]
    fn forest_reconstructs_programs_threads_and_spans() {
        let forest = build_forest(&small_stream());
        assert_eq!(forest.programs.len(), 1);
        let p = &forest.programs[0];
        assert_eq!(p.pid, 1);
        assert_eq!(p.name, "agent");
        assert_eq!(p.elapsed_ns(), 1_100);
        assert!(p.ok);
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.threads[0].tid, 10);
        assert_eq!(p.span_count(), 3);
    }

    #[test]
    fn spawn_edges_set_parent_and_exec_windows_attach_to_pred() {
        let forest = build_forest(&small_stream());
        let sibling = forest.thread(1, 11).expect("sibling thread");
        let by = sibling.spawned_by.expect("spawn edge");
        assert_eq!(by.edge, EdgeKind::Spawn);
        assert_eq!((by.src_pid, by.src_tid), (1, 10));
        let pred = &sibling.spans[0];
        assert_eq!(pred.name, "pred");
        assert_eq!(pred.enqueued_at, Some(t(250)));
        assert_eq!(
            pred.execs,
            vec![ExecWindow { start: t(300), end: t(900), tokens: 4 }]
        );
    }

    #[test]
    fn join_edge_becomes_wake_on_the_joining_span() {
        let forest = build_forest(&small_stream());
        let main = forest.thread(1, 10).expect("main thread");
        let join = main.spans.iter().find(|s| s.name == "join").expect("join span");
        let wake = join.wake.expect("wake edge");
        assert_eq!(wake.edge, EdgeKind::Join);
        assert_eq!((wake.src_pid, wake.src_tid), (1, 11));
        assert_eq!(wake.src_at, t(960));
    }

    #[test]
    fn open_spans_and_missing_exits_close_at_stream_end() {
        let mut events = small_stream();
        events.truncate(9); // ends right after PredExec; pred still open
        let forest = build_forest(&events);
        let sibling = forest.thread(1, 11).expect("sibling thread");
        assert_eq!(sibling.spans.len(), 1);
        assert_eq!(sibling.spans[0].end, t(300));
        let p = &forest.programs[0];
        assert!(!p.ok);
        assert_eq!(p.exited_at, t(300));
    }

    #[test]
    fn replay_marks_the_open_span() {
        let events = vec![
            ev(0, EventKind::ProcessSpawn { pid: 2, name: "r".into() }),
            ev(0, EventKind::ThreadSpawn { pid: 2, tid: 20 }),
            ev(10, EventKind::SyscallEnter { pid: 2, tid: 20, name: "call_tool" }),
            ev(10, EventKind::ReplayAnswered { pid: 2, tid: 20, sys: "call_tool" }),
            ev(20, EventKind::SyscallExit { pid: 2, tid: 20, name: "call_tool" }),
            ev(30, EventKind::ThreadExit { pid: 2, tid: 20, ok: true }),
            ev(30, EventKind::ProcessExit { pid: 2, ok: true }),
        ];
        let forest = build_forest(&events);
        let t0 = forest.thread(2, 20).expect("thread");
        assert!(t0.spans[0].replayed);
    }
}
