//! Collapsed-stack export of critical-path attribution.
//!
//! [`collapsed_stacks`] renders [`LatencyBreakdown`]s in the folded format
//! consumed by `flamegraph.pl` (and any "collapsed stacks" viewer): one
//! line per stack, frames separated by `;`, a space, then the sample
//! weight. Weights are virtual nanoseconds, so frame widths in the
//! rendered flamegraph are exact latency shares, and the same trace always
//! folds to byte-identical output.
//!
//! The stack here is shallow by design — `program;phase` — because the
//! interesting axis is *where the wall-clock went*, not call depth:
//!
//! ```text
//! agent-3 (pid 5);queue-wait 412000
//! agent-3 (pid 5);prefill 1210000
//! ```

use crate::critical_path::{LatencyBreakdown, PHASES};

/// Frame-sanitised program label: semicolons and spaces would corrupt the
/// folded format, so they become underscores.
fn frame(b: &LatencyBreakdown) -> String {
    let name = if b.name.is_empty() { "?" } else { &b.name };
    format!("{} (pid {})", name, b.pid)
        .replace([';', ' '], "_")
}

/// Renders breakdowns as flamegraph.pl-compatible folded stacks. Zero
/// buckets are omitted; programs appear in input order.
pub fn collapsed_stacks(breakdowns: &[LatencyBreakdown]) -> String {
    let mut out = String::new();
    for b in breakdowns {
        let frame = frame(b);
        for phase in PHASES {
            let ns = b.get(phase);
            if ns == 0 {
                continue;
            }
            out.push_str(&format!("{frame};{} {ns}\n", phase.label()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LatencyBreakdown {
        let mut b = LatencyBreakdown {
            pid: 5,
            name: "agent 3".into(),
            total_ns: 1000,
            phase_ns: [0; 9],
        };
        b.phase_ns[0] = 400; // queue-wait
        b.phase_ns[1] = 600; // prefill
        b
    }

    #[test]
    fn folds_nonzero_phases_with_sanitised_frames() {
        let out = collapsed_stacks(&[sample()]);
        assert_eq!(
            out,
            "agent_3_(pid_5);queue-wait 400\nagent_3_(pid_5);prefill 600\n"
        );
    }

    #[test]
    fn zero_breakdown_folds_to_nothing() {
        let empty = LatencyBreakdown {
            pid: 1,
            name: String::new(),
            total_ns: 0,
            phase_ns: [0; 9],
        };
        assert_eq!(collapsed_stacks(&[empty]), "");
    }
}
