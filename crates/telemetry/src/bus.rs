//! The event bus: a lazy, zero-cost-when-disabled sink for [`TimedEvent`]s.
//!
//! [`EventBus::emit`] takes a *closure* producing the event, not the event
//! itself. With [`Collector::Null`] installed the closure is never invoked,
//! so a disabled bus performs no allocation and no formatting on the hot
//! path — the only cost is one enum-discriminant branch. The
//! [`Collector::Counting`] variant constructs and immediately drops events,
//! which lets tests assert exactly how many events a code path would record.

use symphony_sim::SimTime;

use crate::event::{EventKind, TimedEvent};
use crate::metrics::Counter;

/// Where emitted events go.
#[derive(Debug)]
pub enum Collector {
    /// Telemetry disabled: `emit` closures are never invoked.
    Null,
    /// Record events in memory for export.
    Memory(Vec<TimedEvent>),
    /// Construct events, count them, drop them (test probe).
    Counting(u64),
}

/// A single-owner event sink stamped on the virtual clock.
#[derive(Debug)]
pub struct EventBus {
    collector: Collector,
    /// Events constructed so far (0 while disabled — the proof that the
    /// disabled hot path does no event work).
    constructed: u64,
    /// Hard cap on `Memory` retention: once the buffer holds this many
    /// events, further emissions are counted as dropped instead of stored,
    /// so tracing an unbounded sweep cannot grow memory without bound.
    /// `None` (the default) keeps everything.
    capacity: Option<usize>,
    /// Events discarded by the capacity cap.
    dropped: u64,
    /// Optional registry hook bumped once per dropped event
    /// (`telemetry.events_dropped` when installed by the kernel).
    drop_counter: Option<Counter>,
}

impl EventBus {
    /// A disabled bus: `emit` is a branch and nothing else.
    pub fn disabled() -> Self {
        EventBus {
            collector: Collector::Null,
            constructed: 0,
            capacity: None,
            dropped: 0,
            drop_counter: None,
        }
    }

    /// A recording bus backed by an in-memory vector.
    pub fn recording() -> Self {
        EventBus {
            collector: Collector::Memory(Vec::new()),
            constructed: 0,
            capacity: None,
            dropped: 0,
            drop_counter: None,
        }
    }

    /// A counting bus: events are constructed and dropped.
    pub fn counting() -> Self {
        EventBus {
            collector: Collector::Counting(0),
            constructed: 0,
            capacity: None,
            dropped: 0,
            drop_counter: None,
        }
    }

    /// Builds a bus around an explicit collector.
    pub fn with_collector(collector: Collector) -> Self {
        EventBus {
            collector,
            constructed: 0,
            capacity: None,
            dropped: 0,
            drop_counter: None,
        }
    }

    /// Replaces the collector, returning the old one.
    pub fn set_collector(&mut self, collector: Collector) -> Collector {
        std::mem::replace(&mut self.collector, collector)
    }

    /// `true` unless the collector is [`Collector::Null`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self.collector, Collector::Null)
    }

    /// Caps `Memory` retention at `capacity` events; beyond it, emissions
    /// are dropped (and counted) rather than stored. `None` removes the
    /// cap. Counting collectors are unaffected — they never store.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    /// Installs a registry counter bumped once per dropped event.
    pub fn set_drop_counter(&mut self, counter: Counter) {
        self.drop_counter = Some(counter);
    }

    /// Events discarded by the capacity cap since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Emits one event. The closure runs only when a collector is
    /// installed; callers put all allocation (clones, formatting) inside it.
    /// A full bounded `Memory` collector skips the closure too — a dropped
    /// event costs one counter bump, not a construction.
    #[inline]
    pub fn emit(&mut self, at: SimTime, f: impl FnOnce() -> EventKind) {
        match &mut self.collector {
            Collector::Null => {}
            Collector::Memory(events) => {
                if self.capacity.is_some_and(|cap| events.len() >= cap) {
                    self.dropped += 1;
                    if let Some(c) = &self.drop_counter {
                        c.inc();
                    }
                    return;
                }
                self.constructed += 1;
                events.push(TimedEvent { at, kind: f() });
            }
            Collector::Counting(n) => {
                self.constructed += 1;
                let _ = f();
                *n += 1;
            }
        }
    }

    /// Emits `n` events produced by `f(0)..f(n-1)` in one call — the
    /// batch twin of [`EventBus::emit`] for per-batch-member hot loops.
    /// The `Memory` collector reserves space once and pays the capacity
    /// check once instead of per event; a disabled bus never invokes the
    /// producer.
    pub fn emit_batch(&mut self, at: SimTime, n: usize, mut f: impl FnMut(usize) -> EventKind) {
        match &mut self.collector {
            Collector::Null => {}
            Collector::Memory(events) => {
                let room = match self.capacity {
                    Some(cap) => cap.saturating_sub(events.len()).min(n),
                    None => n,
                };
                events.reserve(room);
                for i in 0..room {
                    events.push(TimedEvent { at, kind: f(i) });
                }
                self.constructed += room as u64;
                let dropped = (n - room) as u64;
                if dropped > 0 {
                    self.dropped += dropped;
                    if let Some(c) = &self.drop_counter {
                        c.add(dropped);
                    }
                }
            }
            Collector::Counting(count) => {
                for i in 0..n {
                    let _ = f(i);
                }
                self.constructed += n as u64;
                *count += n as u64;
            }
        }
    }

    /// Recorded events (empty unless the collector is `Memory`).
    pub fn events(&self) -> &[TimedEvent] {
        match &self.collector {
            Collector::Memory(events) => events,
            _ => &[],
        }
    }

    /// Events constructed since creation (0 while disabled).
    pub fn constructed(&self) -> u64 {
        self.constructed
    }

    /// Events counted by a `Counting` collector (0 otherwise).
    pub fn counted(&self) -> u64 {
        match self.collector {
            Collector::Counting(n) => n,
            _ => 0,
        }
    }
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_event() -> EventKind {
        EventKind::ThreadSpawn { pid: 1, tid: 2 }
    }

    #[test]
    fn disabled_bus_never_runs_the_closure() {
        let mut bus = EventBus::disabled();
        let mut ran = false;
        bus.emit(SimTime::ZERO, || {
            ran = true;
            spawn_event()
        });
        assert!(!ran, "closure must not run while disabled");
        assert_eq!(bus.constructed(), 0);
        assert!(bus.events().is_empty());
        assert!(!bus.is_enabled());
    }

    #[test]
    fn recording_bus_stores_events_in_order() {
        let mut bus = EventBus::recording();
        bus.emit(SimTime::from_nanos(1), spawn_event);
        bus.emit(SimTime::from_nanos(2), || EventKind::ThreadExit {
            pid: 1,
            tid: 2,
            ok: true,
        });
        assert_eq!(bus.events().len(), 2);
        assert_eq!(bus.constructed(), 2);
        assert!(bus.events()[0].at < bus.events()[1].at);
    }

    #[test]
    fn counting_bus_counts_without_storing() {
        let mut bus = EventBus::counting();
        for _ in 0..5 {
            bus.emit(SimTime::ZERO, spawn_event);
        }
        assert_eq!(bus.counted(), 5);
        assert_eq!(bus.constructed(), 5);
        assert!(bus.events().is_empty());
    }

    #[test]
    fn bounded_bus_drops_beyond_capacity_without_constructing() {
        let mut bus = EventBus::recording();
        bus.set_capacity(Some(2));
        let mut ran = 0u32;
        for _ in 0..5 {
            bus.emit(SimTime::ZERO, || {
                ran += 1;
                spawn_event()
            });
        }
        assert_eq!(bus.events().len(), 2);
        assert_eq!(bus.dropped(), 3);
        assert_eq!(bus.constructed(), 2);
        assert_eq!(ran, 2, "dropped events must not run the closure");
    }

    #[test]
    fn drop_counter_tracks_drops() {
        let registry = crate::MetricsRegistry::new();
        let mut bus = EventBus::recording();
        bus.set_capacity(Some(1));
        bus.set_drop_counter(registry.counter("telemetry.events_dropped"));
        for _ in 0..3 {
            bus.emit(SimTime::ZERO, spawn_event);
        }
        assert_eq!(bus.dropped(), 2);
        assert_eq!(registry.counter_value("telemetry.events_dropped"), Some(2));
    }

    #[test]
    fn unbounded_bus_reports_zero_drops() {
        let mut bus = EventBus::recording();
        for _ in 0..100 {
            bus.emit(SimTime::ZERO, spawn_event);
        }
        assert_eq!(bus.dropped(), 0);
        assert_eq!(bus.events().len(), 100);
    }

    #[test]
    fn emit_batch_matches_per_event_semantics() {
        // Unbounded: all stored.
        let mut bus = EventBus::recording();
        bus.emit_batch(SimTime::from_nanos(7), 3, |i| EventKind::ThreadSpawn {
            pid: i as u64,
            tid: 0,
        });
        assert_eq!(bus.events().len(), 3);
        assert_eq!(bus.constructed(), 3);
        assert_eq!(bus.events()[2].at, SimTime::from_nanos(7));

        // Bounded: overflow dropped without running the producer.
        let mut bus = EventBus::recording();
        bus.set_capacity(Some(2));
        let mut ran = 0u32;
        bus.emit_batch(SimTime::ZERO, 5, |_| {
            ran += 1;
            spawn_event()
        });
        assert_eq!(bus.events().len(), 2);
        assert_eq!(bus.dropped(), 3);
        assert_eq!(ran, 2);

        // Disabled: nothing runs.
        let mut bus = EventBus::disabled();
        let mut ran = false;
        bus.emit_batch(SimTime::ZERO, 4, |_| {
            ran = true;
            spawn_event()
        });
        assert!(!ran);
        assert_eq!(bus.constructed(), 0);

        // Counting: counted, not stored.
        let mut bus = EventBus::counting();
        bus.emit_batch(SimTime::ZERO, 4, |_| spawn_event());
        assert_eq!(bus.counted(), 4);
    }

    #[test]
    fn set_collector_swaps_and_returns_old() {
        let mut bus = EventBus::recording();
        bus.emit(SimTime::ZERO, spawn_event);
        let old = bus.set_collector(Collector::Null);
        match old {
            Collector::Memory(events) => assert_eq!(events.len(), 1),
            _ => panic!("expected memory collector"),
        }
        assert!(!bus.is_enabled());
    }
}
