//! The unified metrics registry: counters, gauges and fixed-bucket
//! histograms shared by every kernel subsystem.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones over atomics, so subsystems (KVFS, the GPU executor, the fault
//! injector) hold their own handles while the kernel owns the registry and
//! snapshots everything at once. Updates are relaxed atomic ops — there is
//! no lock on the hot path; the registry map is only locked at
//! registration and snapshot time.
//!
//! Metric names are dot-separated (`kvfs.cow_copies`, `kernel.ttft_ns`);
//! units are suffixed (`_ns`, `_tokens`, `_pct`). The full catalogue lives
//! in `docs/OBSERVABILITY.md`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding the last sampled value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by a signed delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of each bucket; an implicit `+inf` bucket
    /// follows the last bound.
    bounds: Vec<u64>,
    /// `buckets.len() == bounds.len() + 1`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram over `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A free-standing histogram with the given inclusive upper bounds
    /// (must be strictly increasing; an overflow bucket is added).
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self
            .inner
            .bounds
            .partition_point(|&b| b < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Bucket upper bounds (the final `+inf` bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Per-bucket counts, including the trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Latency bucket bounds in nanoseconds: 1µs … 10s, roughly logarithmic.
pub fn latency_bounds_ns() -> Vec<u64> {
    vec![
        1_000,
        10_000,
        100_000,
        1_000_000,
        2_000_000,
        5_000_000,
        10_000_000,
        20_000_000,
        50_000_000,
        100_000_000,
        200_000_000,
        500_000_000,
        1_000_000_000,
        2_000_000_000,
        5_000_000_000,
        10_000_000_000,
    ]
}

/// Power-of-two occupancy bounds: 1 … 128 requests.
pub fn occupancy_bounds() -> Vec<u64> {
    vec![1, 2, 4, 8, 16, 32, 64, 128]
}

/// Decile bounds for percentages.
pub fn percent_bounds() -> Vec<u64> {
    vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The shared registry. Cloning yields another handle to the same metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Returns the histogram `name`, registering it with `bounds` on first
    /// use (later calls ignore `bounds`).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Reads a counter's value without registering (`None` if absent).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// A point-in-time copy of every registered metric, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let entries = map
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Cumulative count.
    Counter(u64),
    /// Last sampled value.
    Gauge(i64),
    /// Bucketed samples: `buckets.len() == bounds.len() + 1` (the last
    /// bucket is the overflow).
    Histogram {
        count: u64,
        sum: u64,
        bounds: Vec<u64>,
        buckets: Vec<u64>,
    },
}

/// A point-in-time copy of a registry, ordered by metric name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// A counter's value, or `None` if absent or a different kind.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Deterministic JSON rendering (name-ordered object).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(name, &mut out);
            out.push(':');
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    bounds,
                    buckets,
                } => {
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\"buckets\":["
                    ));
                    for (j, n) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match bounds.get(j) {
                            Some(le) => out.push_str(&format!("{{\"le\":{le},\"n\":{n}}}")),
                            None => out.push_str(&format!("{{\"le\":\"+inf\",\"n\":{n}}}")),
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

impl serde::Serialize for MetricsSnapshot {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.count");
        let b = reg.counter("x.count");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "handles share storage");
        assert_eq!(reg.counter_value("x.count"), Some(5));
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn gauges_set_and_adjust() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("pool.used");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.observe(10); // first bucket (<= 10)
        h.observe(11); // second
        h.observe(100); // second
        h.observe(101); // overflow
        assert_eq!(h.bucket_counts(), vec![1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 222);
        assert!((h.mean() - 55.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::with_bounds(&[10, 10]);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("m");
        let _ = reg.counter("m");
    }

    #[test]
    fn snapshot_is_name_ordered_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.histogram("c.hist", &[5]).observe(3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "b.second", "c.hist"]);
        assert_eq!(snap.counter("a.first"), Some(1));
        assert_eq!(snap.counter("c.hist"), None, "histogram is not a counter");
        assert!(matches!(
            snap.get("c.hist"),
            Some(MetricValue::Histogram { count: 1, sum: 3, .. })
        ));
    }

    #[test]
    fn snapshot_json_is_deterministic_and_parses() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h", &[1, 2]).observe(2);
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b);
        let parsed = serde_json::from_str::<serde_json::Value>(&a).expect("valid JSON");
        match parsed {
            serde_json::Value::Object(o) => {
                assert_eq!(o.len(), 3);
                assert!(o.contains_key("h"));
            }
            _ => panic!("expected object"),
        }
    }
}
