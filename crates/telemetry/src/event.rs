//! The typed event taxonomy recorded by the kernel on the virtual clock.
//!
//! Events are *data*, not strings: the hot path constructs an [`EventKind`]
//! only when a collector is installed (see [`crate::EventBus::emit`]), and
//! the Chrome exporter renders names/args at export time. Every event is
//! stamped with the [`SimTime`] at which the kernel observed it, so two
//! same-seed runs produce identical event streams.

use symphony_sim::SimTime;

/// Direction of a KV swap transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDir {
    /// CPU DRAM → GPU HBM.
    In,
    /// GPU HBM → CPU DRAM.
    Out,
}

/// The causal relationship carried by an [`EventKind::CausalEdge`].
///
/// Each variant names *why* the destination thread made progress at the
/// edge's timestamp: the edge points from the event that enabled the
/// progress (the source, at `src_at`) to the thread that benefited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `spawn` syscall → the new thread's first instruction.
    Spawn,
    /// IPC `send_msg` → the `recv` that consumed the message.
    Ipc,
    /// A thread's exit → the `join` it unblocked.
    Join,
    /// `call_tool` issue → the I/O completion delivering the result.
    Tool,
    /// KV-swap preemption: the victim's swap-out → the beneficiary
    /// sequence whose swap-in it funded.
    Preempt,
}

impl EdgeKind {
    /// Stable lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Spawn => "spawn",
            EdgeKind::Ipc => "ipc",
            EdgeKind::Join => "join",
            EdgeKind::Tool => "tool",
            EdgeKind::Preempt => "preempt",
        }
    }
}

/// One telemetry event. Span events come in `*Enter`/`*Exit` (or
/// `Batch{Begin,End}`) pairs on the same logical track; everything else is
/// an instant.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A process record was created and its main thread started.
    ProcessSpawn { pid: u64, name: String },
    /// All of a process's threads exited; resources reclaimed.
    ProcessExit { pid: u64, ok: bool },
    /// A LIP thread started (main or sibling).
    ThreadSpawn { pid: u64, tid: u64 },
    /// A LIP thread exited.
    ThreadExit { pid: u64, tid: u64, ok: bool },
    /// Span begin: a thread entered the kernel with a system call.
    SyscallEnter {
        pid: u64,
        tid: u64,
        name: &'static str,
    },
    /// Span end: the kernel delivered the reply and the thread resumed.
    SyscallExit {
        pid: u64,
        tid: u64,
        name: &'static str,
    },
    /// The thread scheduler handed the CPU to a thread (scheduler track).
    SchedDispatch { tid: u64 },
    /// A `pred` call joined the inference pool (scheduler track).
    PredEnqueue { tid: u64, tokens: u32, pool: u32 },
    /// A `pred` was re-pooled after KV-pool exhaustion (scheduler track).
    PredRequeue { tid: u64, attempt: u32 },
    /// A `pred` was shed by admission control (scheduler track).
    PredShed { tid: u64 },
    /// Span begin: a GPU batch launched (GPU track).
    BatchBegin {
        id: u64,
        requests: u32,
        /// Requests as a percentage of the global batch cap.
        occupancy_pct: u32,
        new_tokens: u64,
    },
    /// Span end: the GPU batch completed (GPU track).
    BatchEnd { id: u64 },
    /// One chunk of a chunked prefill ran inside an iteration (GPU track).
    /// `done`/`total` track the request's progress after this chunk.
    ChunkExec {
        tid: u64,
        batch: u64,
        tokens: u32,
        done: u32,
        total: u32,
    },
    /// A KV file was swapped out to free GPU pages for an executing
    /// request (scheduler track). `victim_tid` is the preempted sequence's
    /// thread, or 0 when the victim was an idle file.
    Preempt {
        file: u64,
        tokens: u64,
        victim_tid: u64,
    },
    /// A KVFS namespace/metadata/data operation (thread track).
    KvOp {
        pid: u64,
        tid: u64,
        op: &'static str,
        file: u64,
    },
    /// Copy-on-write page copies performed while executing a batch
    /// (GPU track; count is the delta for that batch).
    KvCow { copies: u64 },
    /// An explicit KV swap across the PCIe boundary (thread track).
    /// `disk_tokens` counts the subset that crossed the NVMe lane too
    /// (disk-tier spill or load); zero for pure DRAM swaps.
    KvSwap {
        pid: u64,
        tid: u64,
        file: u64,
        tokens: u64,
        disk_tokens: u64,
        dir: SwapDir,
    },
    /// A whole tool call was planned: `attempts` tries totalling
    /// `latency_ns` of virtual I/O time (thread track).
    ToolInvoke {
        pid: u64,
        tid: u64,
        tool: String,
        attempts: u32,
        latency_ns: u64,
    },
    /// One failed tool attempt will be retried (thread track).
    ToolRetry {
        pid: u64,
        tid: u64,
        tool: String,
        failures: u32,
    },
    /// A circuit breaker tripped open (scheduler track).
    BreakerTrip { tool: String },
    /// A call was fast-failed by an open breaker (thread track).
    BreakerReject { pid: u64, tid: u64, tool: String },
    /// The fault injector fired at a site (scheduler track).
    FaultInjected { site: &'static str },
    /// A process's wall-clock deadline passed (process track).
    DeadlineHit { pid: u64 },
    /// A KV file was offloaded to host memory during an I/O wait.
    KvOffload { pid: u64, file: u64 },
    /// Offloaded KV was restored after I/O completion.
    KvRestore { pid: u64, tokens: u64 },
    /// An IPC message was dropped in flight (scheduler track).
    IpcDrop { from: u64, to: u64 },
    /// The kernel crashed at an injected syscall-boundary kill point
    /// (scheduler track; the last event a crashed run records).
    KernelCrash { boundary: u64 },
    /// A WAL checkpoint flushed buffered effect frames to disk
    /// (scheduler track).
    WalCheckpoint { frames: u64, wal_bytes: u64 },
    /// A recovered kernel re-admitted journalled programs (scheduler
    /// track; the first event a recovered run records).
    KernelRecovery { resumed: u64, replayed_frames: u64 },
    /// A causal edge between two points on the span DAG (emitted at the
    /// *destination* time; `src_at` records when the source half
    /// happened). Only recorded when `KernelConfig::causal` is on.
    CausalEdge {
        edge: EdgeKind,
        src_pid: u64,
        src_tid: u64,
        src_at: SimTime,
        dst_pid: u64,
        dst_tid: u64,
    },
    /// A pooled `pred` entered a GPU batch: the scheduler→GPU causal hop.
    /// `tokens` is the new tokens this member contributes to the batch
    /// (>1 ⇒ prefill work, 1 ⇒ a decode step); `enqueued_at` is when the
    /// pred joined the pool, so `at - enqueued_at` is its queue wait.
    /// Only recorded when `KernelConfig::causal` is on.
    PredExec {
        pid: u64,
        tid: u64,
        batch: u64,
        tokens: u32,
        enqueued_at: SimTime,
    },
    /// A syscall was answered from the WAL effect journal during recovery
    /// replay instead of executing (thread track). Only recorded when
    /// `KernelConfig::causal` is on.
    ReplayAnswered {
        pid: u64,
        tid: u64,
        sys: &'static str,
    },
    /// A front-door client connection opened (serving layer). Rendered on
    /// the dedicated serve track; absent from kernel-only traces.
    ConnOpen {
        /// Server-assigned connection id.
        conn: u64,
        /// Tenant the connection authenticated as.
        tenant: u64,
    },
    /// A front-door client connection closed (clean bye, drop fault, or
    /// protocol error).
    ConnClose {
        conn: u64,
        /// Close cause: `"bye"`, `"drop"`, `"error"`, `"slow"`.
        reason: &'static str,
    },
    /// A submitted program was accepted and spawned: the session span
    /// opens (serve track, one thread lane per connection).
    SessionBegin {
        conn: u64,
        /// Client-chosen session id (unique per connection).
        session: u64,
        /// Kernel process actually running the program.
        pid: u64,
        tenant: u64,
    },
    /// The session's program finished (or was cancelled): the span closes.
    SessionEnd {
        conn: u64,
        session: u64,
        pid: u64,
        ok: bool,
    },
}

/// An event stamped with virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Virtual time at which the kernel observed the event.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}
