//! Chrome trace-event export.
//!
//! [`export_chrome_trace`] renders a recorded event stream as Chrome
//! trace-event JSON (the format loaded by Perfetto and `chrome://tracing`).
//! Track layout:
//!
//! * **kernel** (pid 0) — one `scheduler` thread carrying dispatch,
//!   pred-pool, breaker, fault and IPC instants;
//! * **gpu** (pid 1 000 000) — one `batches` thread carrying `gpu_batch`
//!   spans and copy-on-write instants;
//! * one process per LIP pid, with a thread track per tid carrying
//!   syscall spans and KVFS/tool instants, plus process-level instants on
//!   tid 0 (spawn/exit, deadlines, offload/restore).
//!
//! Virtual-time nanoseconds become fractional microseconds (`ts` is in µs
//! in the trace format). The writer is hand-rolled and fully ordered —
//! metadata first, then events in recorded order — so the same event
//! stream always serialises to byte-identical output.

use std::collections::BTreeMap;

use symphony_sim::SimTime;

use crate::event::{EventKind, SwapDir, TimedEvent};

/// The synthetic pid hosting the scheduler track.
pub const KERNEL_PID: u64 = 0;
/// The scheduler track's tid inside [`KERNEL_PID`].
pub const SCHED_TID: u64 = 1;
/// The synthetic pid hosting the GPU track (far above any real LIP pid).
pub const GPU_PID: u64 = 1_000_000;
/// The batch track's tid inside [`GPU_PID`].
pub const GPU_TID: u64 = 1;
/// The synthetic pid hosting the serving front door's track (one thread
/// lane per client connection). Only materialised when serve events are
/// present, so kernel-only traces render byte-identically to before.
pub const SERVE_PID: u64 = 2_000_000;

/// Virtual nanoseconds as a trace-format `ts` literal (microseconds with
/// three decimals — exact, so no float formatting is involved).
fn ts(at: SimTime) -> String {
    let ns = at.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_quoted(out: &mut String, s: &str) {
    serde::write_json_string(s, out);
}

/// Appends one trace-event object line. `args` is pre-rendered JSON
/// (`None` for no args); `scope` is the instant scope, if any.
#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    ph: &str,
    at: Option<SimTime>,
    pid: u64,
    tid: u64,
    name: &str,
    args: Option<String>,
    scope: Option<&str>,
) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str("    {\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"ts\":");
    out.push_str(&ts(at.unwrap_or(SimTime::ZERO)));
    out.push_str(&format!(",\"pid\":{pid},\"tid\":{tid},\"name\":"));
    push_quoted(out, name);
    if let Some(s) = scope {
        out.push_str(&format!(",\"s\":\"{s}\""));
    }
    if let Some(a) = args {
        out.push_str(",\"args\":");
        out.push_str(&a);
    }
    out.push('}');
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn meta(&mut self, pid: u64, tid: Option<u64>, kind: &str, args: String) {
        push_event(
            &mut self.out,
            &mut self.first,
            "M",
            None,
            pid,
            tid.unwrap_or(0),
            kind,
            Some(args),
            None,
        );
    }

    fn span(
        &mut self,
        ph: &str,
        at: SimTime,
        pid: u64,
        tid: u64,
        name: &str,
        args: Option<String>,
    ) {
        push_event(
            &mut self.out,
            &mut self.first,
            ph,
            Some(at),
            pid,
            tid,
            name,
            args,
            None,
        );
    }

    fn instant(&mut self, at: SimTime, pid: u64, tid: u64, name: &str, args: Option<String>) {
        push_event(
            &mut self.out,
            &mut self.first,
            "i",
            Some(at),
            pid,
            tid,
            name,
            args,
            Some("t"),
        );
    }

    /// One half of a flow arrow: `ph` is `"s"` (start) or `"f"` (finish).
    /// Finishes carry `bp:"e"` so Perfetto binds the arrowhead to the
    /// enclosing slice rather than the next one.
    fn flow(&mut self, ph: &str, at: SimTime, pid: u64, tid: u64, name: &str, id: u64) {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
        self.out.push_str("    {\"ph\":\"");
        self.out.push_str(ph);
        self.out.push_str("\",\"ts\":");
        self.out.push_str(&ts(at));
        self.out.push_str(&format!(
            ",\"pid\":{pid},\"tid\":{tid},\"cat\":\"flow\",\"id\":{id},\"name\":"
        ));
        push_quoted(&mut self.out, name);
        if ph == "f" {
            self.out.push_str(",\"bp\":\"e\"");
        }
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n  ],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::new();
    serde::write_json_string(s, &mut out);
    out
}

/// Renders a recorded event stream as Chrome trace-event JSON.
///
/// The output is deterministic: identical input slices yield byte-identical
/// strings, making the trace itself a regression artifact. Causal events
/// ([`EventKind::CausalEdge`], [`EventKind::PredExec`],
/// [`EventKind::ReplayAnswered`]) are *not* rendered here, so traces
/// recorded without `KernelConfig::causal` stay byte-identical to the
/// pre-causal format; use [`export_chrome_trace_with_flows`] to render
/// them as Perfetto flow arrows.
pub fn export_chrome_trace(events: &[TimedEvent]) -> String {
    export(events, false)
}

/// Like [`export_chrome_trace`], but additionally renders causal events:
/// [`EventKind::CausalEdge`] and [`EventKind::PredExec`] become flow-event
/// pairs (`ph:"s"` at the source, `ph:"f"`/`bp:"e"` at the destination,
/// matched by a deterministic `id`) that Perfetto draws as arrows across
/// tracks, and [`EventKind::ReplayAnswered`] becomes a `replay_hit`
/// instant on the owning thread track.
pub fn export_chrome_trace_with_flows(events: &[TimedEvent]) -> String {
    export(events, true)
}

fn export(events: &[TimedEvent], flows: bool) -> String {
    // First pass: discover LIP processes and their threads so every track
    // gets a name. The first thread observed for a pid is its main thread.
    let mut proc_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut threads: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut serve_conns: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for ev in events {
        match &ev.kind {
            EventKind::ProcessSpawn { pid, name } => {
                proc_names.entry(*pid).or_insert_with(|| name.clone());
            }
            EventKind::ThreadSpawn { pid, tid } => {
                let tids = threads.entry(*pid).or_default();
                if !tids.contains(tid) {
                    tids.push(*tid);
                }
            }
            EventKind::ConnOpen { conn, .. }
            | EventKind::ConnClose { conn, .. }
            | EventKind::SessionBegin { conn, .. }
            | EventKind::SessionEnd { conn, .. } => {
                serve_conns.insert(*conn);
            }
            _ => {}
        }
    }

    let mut w = Writer::new();

    // Metadata: fixed tracks first, then LIP processes in pid order.
    w.meta(
        KERNEL_PID,
        None,
        "process_name",
        "{\"name\":\"kernel\"}".into(),
    );
    w.meta(
        KERNEL_PID,
        None,
        "process_sort_index",
        "{\"sort_index\":0}".into(),
    );
    w.meta(
        KERNEL_PID,
        Some(SCHED_TID),
        "thread_name",
        "{\"name\":\"scheduler\"}".into(),
    );
    w.meta(GPU_PID, None, "process_name", "{\"name\":\"gpu\"}".into());
    w.meta(
        GPU_PID,
        None,
        "process_sort_index",
        "{\"sort_index\":1}".into(),
    );
    w.meta(
        GPU_PID,
        Some(GPU_TID),
        "thread_name",
        "{\"name\":\"batches\"}".into(),
    );
    if !serve_conns.is_empty() {
        w.meta(
            SERVE_PID,
            None,
            "process_name",
            "{\"name\":\"serve\"}".into(),
        );
        w.meta(
            SERVE_PID,
            None,
            "process_sort_index",
            "{\"sort_index\":2}".into(),
        );
        for conn in &serve_conns {
            w.meta(
                SERVE_PID,
                Some(*conn),
                "thread_name",
                format!("{{\"name\":\"conn {conn}\"}}"),
            );
        }
    }
    let pids: Vec<u64> = proc_names
        .keys()
        .chain(threads.keys())
        .copied()
        .collect::<std::collections::BTreeSet<u64>>()
        .into_iter()
        .collect();
    for pid in pids {
        let label = match proc_names.get(&pid) {
            Some(name) => format!("{name} (pid {pid})"),
            None => format!("pid {pid}"),
        };
        w.meta(
            pid,
            None,
            "process_name",
            format!("{{\"name\":{}}}", quoted(&label)),
        );
        w.meta(
            pid,
            None,
            "process_sort_index",
            format!("{{\"sort_index\":{}}}", pid + 2),
        );
        if let Some(tids) = threads.get(&pid) {
            for (i, tid) in tids.iter().enumerate() {
                let tname = if i == 0 {
                    "main".to_string()
                } else {
                    format!("thread {tid}")
                };
                w.meta(
                    pid,
                    Some(*tid),
                    "thread_name",
                    format!("{{\"name\":{}}}", quoted(&tname)),
                );
            }
        }
    }

    // Second pass: the events themselves, in recorded (virtual-time) order.
    // Flow pairs share an id assigned in emission order, so the same event
    // stream always numbers its arrows identically.
    let mut flow_id: u64 = 0;
    for ev in events {
        let at = ev.at;
        match &ev.kind {
            EventKind::ProcessSpawn { pid, name } => {
                w.instant(
                    at,
                    *pid,
                    0,
                    "process_spawn",
                    Some(format!("{{\"name\":{}}}", quoted(name))),
                );
            }
            EventKind::ProcessExit { pid, ok } => {
                w.instant(
                    at,
                    *pid,
                    0,
                    "process_exit",
                    Some(format!("{{\"ok\":{ok}}}")),
                );
            }
            EventKind::ThreadSpawn { pid, tid } => {
                w.instant(at, *pid, *tid, "thread_spawn", None);
            }
            EventKind::ThreadExit { pid, tid, ok } => {
                w.instant(
                    at,
                    *pid,
                    *tid,
                    "thread_exit",
                    Some(format!("{{\"ok\":{ok}}}")),
                );
            }
            EventKind::SyscallEnter { pid, tid, name } => {
                w.span("B", at, *pid, *tid, &format!("sys:{name}"), None);
            }
            EventKind::SyscallExit { pid, tid, name } => {
                w.span("E", at, *pid, *tid, &format!("sys:{name}"), None);
            }
            EventKind::SchedDispatch { tid } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "dispatch",
                    Some(format!("{{\"tid\":{tid}}}")),
                );
            }
            EventKind::PredEnqueue { tid, tokens, pool } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "pred_enqueue",
                    Some(format!(
                        "{{\"tid\":{tid},\"tokens\":{tokens},\"pool\":{pool}}}"
                    )),
                );
            }
            EventKind::PredRequeue { tid, attempt } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "pred_requeue",
                    Some(format!("{{\"tid\":{tid},\"attempt\":{attempt}}}")),
                );
            }
            EventKind::PredShed { tid } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "pred_shed",
                    Some(format!("{{\"tid\":{tid}}}")),
                );
            }
            EventKind::BatchBegin {
                id,
                requests,
                occupancy_pct,
                new_tokens,
            } => {
                w.span(
                    "B",
                    at,
                    GPU_PID,
                    GPU_TID,
                    "gpu_batch",
                    Some(format!(
                        "{{\"id\":{id},\"requests\":{requests},\"occupancy_pct\":{occupancy_pct},\"new_tokens\":{new_tokens}}}"
                    )),
                );
            }
            EventKind::BatchEnd { id } => {
                w.span(
                    "E",
                    at,
                    GPU_PID,
                    GPU_TID,
                    "gpu_batch",
                    Some(format!("{{\"id\":{id}}}")),
                );
            }
            EventKind::ChunkExec {
                tid,
                batch,
                tokens,
                done,
                total,
            } => {
                w.instant(
                    at,
                    GPU_PID,
                    GPU_TID,
                    "chunk",
                    Some(format!(
                        "{{\"tid\":{tid},\"batch\":{batch},\"tokens\":{tokens},\"done\":{done},\"total\":{total}}}"
                    )),
                );
            }
            EventKind::Preempt {
                file,
                tokens,
                victim_tid,
            } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "preempt",
                    Some(format!(
                        "{{\"file\":{file},\"tokens\":{tokens},\"victim_tid\":{victim_tid}}}"
                    )),
                );
            }
            EventKind::KvOp { pid, tid, op, file } => {
                w.instant(
                    at,
                    *pid,
                    *tid,
                    &format!("kv:{op}"),
                    Some(format!("{{\"file\":{file}}}")),
                );
            }
            EventKind::KvCow { copies } => {
                w.instant(
                    at,
                    GPU_PID,
                    GPU_TID,
                    "kv_cow",
                    Some(format!("{{\"copies\":{copies}}}")),
                );
            }
            EventKind::KvSwap {
                pid,
                tid,
                file,
                tokens,
                disk_tokens,
                dir,
            } => {
                let name = match dir {
                    SwapDir::In => "kv_swap_in",
                    SwapDir::Out => "kv_swap_out",
                };
                // Disk traffic only when present, so pure DRAM swaps render
                // byte-identically to the pre-disk-tier format.
                let args = if *disk_tokens > 0 {
                    format!("{{\"file\":{file},\"tokens\":{tokens},\"disk_tokens\":{disk_tokens}}}")
                } else {
                    format!("{{\"file\":{file},\"tokens\":{tokens}}}")
                };
                w.instant(at, *pid, *tid, name, Some(args));
            }
            EventKind::ToolInvoke {
                pid,
                tid,
                tool,
                attempts,
                latency_ns,
            } => {
                w.instant(
                    at,
                    *pid,
                    *tid,
                    &format!("tool:{tool}"),
                    Some(format!(
                        "{{\"attempts\":{attempts},\"latency_ns\":{latency_ns}}}"
                    )),
                );
            }
            EventKind::ToolRetry {
                pid,
                tid,
                tool,
                failures,
            } => {
                w.instant(
                    at,
                    *pid,
                    *tid,
                    "tool_retry",
                    Some(format!(
                        "{{\"tool\":{},\"failures\":{failures}}}",
                        quoted(tool)
                    )),
                );
            }
            EventKind::BreakerTrip { tool } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "breaker_trip",
                    Some(format!("{{\"tool\":{}}}", quoted(tool))),
                );
            }
            EventKind::BreakerReject { pid, tid, tool } => {
                w.instant(
                    at,
                    *pid,
                    *tid,
                    "breaker_reject",
                    Some(format!("{{\"tool\":{}}}", quoted(tool))),
                );
            }
            EventKind::FaultInjected { site } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "fault",
                    Some(format!("{{\"site\":{}}}", quoted(site))),
                );
            }
            EventKind::DeadlineHit { pid } => {
                w.instant(at, *pid, 0, "deadline_hit", None);
            }
            EventKind::KvOffload { pid, file } => {
                w.instant(
                    at,
                    *pid,
                    0,
                    "kv_offload",
                    Some(format!("{{\"file\":{file}}}")),
                );
            }
            EventKind::KvRestore { pid, tokens } => {
                w.instant(
                    at,
                    *pid,
                    0,
                    "kv_restore",
                    Some(format!("{{\"tokens\":{tokens}}}")),
                );
            }
            EventKind::IpcDrop { from, to } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "ipc_drop",
                    Some(format!("{{\"from\":{from},\"to\":{to}}}")),
                );
            }
            EventKind::KernelCrash { boundary } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "kernel_crash",
                    Some(format!("{{\"boundary\":{boundary}}}")),
                );
            }
            EventKind::WalCheckpoint { frames, wal_bytes } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "wal_checkpoint",
                    Some(format!("{{\"frames\":{frames},\"wal_bytes\":{wal_bytes}}}")),
                );
            }
            EventKind::KernelRecovery {
                resumed,
                replayed_frames,
            } => {
                w.instant(
                    at,
                    KERNEL_PID,
                    SCHED_TID,
                    "kernel_recovery",
                    Some(format!(
                        "{{\"resumed\":{resumed},\"replayed_frames\":{replayed_frames}}}"
                    )),
                );
            }
            // Causal events render only in flow mode; the legacy export
            // ignores them so pre-causal traces stay byte-identical.
            EventKind::CausalEdge {
                edge,
                src_pid,
                src_tid,
                src_at,
                dst_pid,
                dst_tid,
            } => {
                if flows {
                    let name = format!("flow:{}", edge.label());
                    w.flow("s", *src_at, *src_pid, *src_tid, &name, flow_id);
                    w.flow("f", at, *dst_pid, *dst_tid, &name, flow_id);
                    flow_id += 1;
                }
            }
            EventKind::PredExec {
                pid,
                tid,
                batch,
                tokens,
                enqueued_at,
            } => {
                if flows {
                    w.flow(
                        "s",
                        *enqueued_at,
                        KERNEL_PID,
                        SCHED_TID,
                        "flow:sched",
                        flow_id,
                    );
                    w.flow("f", at, GPU_PID, GPU_TID, "flow:sched", flow_id);
                    flow_id += 1;
                    w.instant(
                        at,
                        GPU_PID,
                        GPU_TID,
                        "pred_exec",
                        Some(format!(
                            "{{\"pid\":{pid},\"tid\":{tid},\"batch\":{batch},\"tokens\":{tokens}}}"
                        )),
                    );
                }
            }
            EventKind::ReplayAnswered { pid, tid, sys } => {
                if flows {
                    w.instant(
                        at,
                        *pid,
                        *tid,
                        "replay_hit",
                        Some(format!("{{\"sys\":{}}}", quoted(sys))),
                    );
                }
            }
            EventKind::ConnOpen { conn, tenant } => {
                w.instant(
                    at,
                    SERVE_PID,
                    *conn,
                    "conn_open",
                    Some(format!("{{\"tenant\":{tenant}}}")),
                );
            }
            EventKind::ConnClose { conn, reason } => {
                w.instant(
                    at,
                    SERVE_PID,
                    *conn,
                    "conn_close",
                    Some(format!("{{\"reason\":{}}}", quoted(reason))),
                );
            }
            EventKind::SessionBegin {
                conn,
                session,
                pid,
                tenant,
            } => {
                w.span(
                    "B",
                    at,
                    SERVE_PID,
                    *conn,
                    &format!("session:{session}"),
                    Some(format!("{{\"pid\":{pid},\"tenant\":{tenant}}}")),
                );
            }
            EventKind::SessionEnd {
                conn,
                session,
                pid,
                ok,
            } => {
                w.span(
                    "E",
                    at,
                    SERVE_PID,
                    *conn,
                    &format!("session:{session}"),
                    Some(format!("{{\"pid\":{pid},\"ok\":{ok}}}")),
                );
            }
        }
    }

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_sim::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                at: t(0),
                kind: EventKind::ProcessSpawn {
                    pid: 1,
                    name: "demo".into(),
                },
            },
            TimedEvent {
                at: t(0),
                kind: EventKind::ThreadSpawn { pid: 1, tid: 10 },
            },
            TimedEvent {
                at: t(1_500),
                kind: EventKind::SyscallEnter {
                    pid: 1,
                    tid: 10,
                    name: "pred",
                },
            },
            TimedEvent {
                at: t(2_000),
                kind: EventKind::BatchBegin {
                    id: 0,
                    requests: 1,
                    occupancy_pct: 12,
                    new_tokens: 4,
                },
            },
            TimedEvent {
                at: t(9_000),
                kind: EventKind::BatchEnd { id: 0 },
            },
            TimedEvent {
                at: t(9_250),
                kind: EventKind::SyscallExit {
                    pid: 1,
                    tid: 10,
                    name: "pred",
                },
            },
            TimedEvent {
                at: t(9_250),
                kind: EventKind::SchedDispatch { tid: 10 },
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_expected_tracks() {
        let json = export_chrome_trace(&sample_events());
        let v = serde_json::from_str::<serde_json::Value>(&json).expect("valid JSON");
        let events = match &v {
            serde_json::Value::Object(o) => match o.get("traceEvents") {
                Some(serde_json::Value::Array(a)) => a,
                _ => panic!("missing traceEvents array"),
            },
            _ => panic!("expected object"),
        };
        let names: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                serde_json::Value::Object(o) => match (o.get("ph"), o.get("name")) {
                    (Some(serde_json::Value::String(ph)), Some(serde_json::Value::String(n)))
                        if ph == "M" =>
                    {
                        match o.get("args") {
                            Some(serde_json::Value::Object(a)) => match a.get("name") {
                                Some(serde_json::Value::String(v)) => Some(format!("{n}={v}")),
                                _ => None,
                            },
                            _ => None,
                        }
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert!(names.contains(&"process_name=kernel".to_string()));
        assert!(names.contains(&"thread_name=scheduler".to_string()));
        assert!(names.contains(&"process_name=gpu".to_string()));
        assert!(names.contains(&"thread_name=batches".to_string()));
        assert!(names.contains(&"process_name=demo (pid 1)".to_string()));
        assert!(names.contains(&"thread_name=main".to_string()));
    }

    #[test]
    fn spans_pair_and_timestamps_scale_to_micros() {
        let json = export_chrome_trace(&sample_events());
        assert!(json.contains("\"ph\":\"B\",\"ts\":1.500"));
        assert!(json.contains("\"ph\":\"E\",\"ts\":9.250"));
        assert!(json.contains("\"name\":\"gpu_batch\""));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn export_is_byte_identical_for_same_input() {
        let events = sample_events();
        assert_eq!(export_chrome_trace(&events), export_chrome_trace(&events));
    }

    fn causal_events() -> Vec<TimedEvent> {
        use crate::event::EdgeKind;
        let mut events = sample_events();
        events.push(TimedEvent {
            at: t(9_300),
            kind: EventKind::CausalEdge {
                edge: EdgeKind::Spawn,
                src_pid: 1,
                src_tid: 10,
                src_at: t(9_000),
                dst_pid: 1,
                dst_tid: 11,
            },
        });
        events.push(TimedEvent {
            at: t(9_400),
            kind: EventKind::PredExec {
                pid: 1,
                tid: 10,
                batch: 0,
                tokens: 4,
                enqueued_at: t(1_600),
            },
        });
        events.push(TimedEvent {
            at: t(9_500),
            kind: EventKind::ReplayAnswered {
                pid: 1,
                tid: 10,
                sys: "pred",
            },
        });
        events
    }

    #[test]
    fn legacy_export_ignores_causal_events_byte_identically() {
        assert_eq!(
            export_chrome_trace(&causal_events()),
            export_chrome_trace(&sample_events()),
        );
    }

    #[test]
    fn flow_export_renders_paired_arrows_and_replay_instants() {
        let json = export_chrome_trace_with_flows(&causal_events());
        serde_json::from_str::<serde_json::Value>(&json).expect("valid JSON");
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 2);
        assert_eq!(json.matches("\"bp\":\"e\"").count(), 2);
        assert!(json.contains("flow:spawn"));
        assert!(json.contains("flow:sched"));
        assert!(json.contains("\"name\":\"replay_hit\""));
        // The spawn arrow starts at the source time on the source track.
        assert!(json.contains("{\"ph\":\"s\",\"ts\":9.000,\"pid\":1,\"tid\":10,"));
        // Pair ids are deterministic and distinct.
        assert!(json.contains("\"id\":0"));
        assert!(json.contains("\"id\":1"));
    }
}
