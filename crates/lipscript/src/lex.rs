//! The lexer: source text to a token stream with positions.

use crate::error::{LipError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names.
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // Keywords.
    Let,
    Fn,
    If,
    Else,
    While,
    For,
    In,
    Break,
    Continue,
    Return,
    True,
    False,
    Nil,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    // Operators.
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    AndAnd,
    OrOr,
    Not,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Its position.
    pub span: Span,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, message: &str, span: Span) -> LipError {
        LipError::Lex {
            message: message.to_string(),
            span,
        }
    }

    fn next_token(&mut self) -> Result<Token, LipError> {
        self.skip_trivia();
        let span = self.span();
        let Some(b) = self.peek() else {
            return Ok(Token {
                tok: Tok::Eof,
                span,
            });
        };
        let tok = match b {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'-' => {
                self.bump();
                Tok::Minus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'/' => {
                self.bump();
                Tok::Slash
            }
            b'%' => {
                self.bump();
                Tok::Percent
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::EqEq
                } else {
                    Tok::Assign
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::NotEq
                } else {
                    Tok::Not
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::LtEq
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::GtEq
                } else {
                    Tok::Gt
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(self.err("expected `&&`", span));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(self.err("expected `||`", span));
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated string", span)),
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            _ => return Err(self.err("bad escape", span)),
                        },
                        Some(c) => s.push(c as char),
                    }
                }
                Tok::Str(s)
            }
            b'0'..=b'9' => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c as char);
                        self.bump();
                    } else if c == b'.'
                        && !is_float
                        && self.peek2().is_some_and(|d| d.is_ascii_digit())
                    {
                        is_float = true;
                        text.push('.');
                        self.bump();
                    } else {
                        break;
                    }
                }
                if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| self.err("bad float literal", span))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| self.err("integer literal overflow", span))?,
                    )
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        name.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "let" => Tok::Let,
                    "fn" => Tok::Fn,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "return" => Tok::Return,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "nil" => Tok::Nil,
                    _ => Tok::Ident(name),
                }
            }
            other => {
                return Err(self.err(&format!("unexpected character {:?}", other as char), span))
            }
        };
        Ok(Token { tok, span })
    }
}

/// Scans source text into tokens (ending with [`Tok::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, LipError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let end = t.tok == Tok::Eof;
        out.push(t);
        if end {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn scans_basic_program() {
        let t = toks("let x = 1 + 2.5;");
        assert_eq!(
            t,
            vec![
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Float(2.5),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn scans_operators() {
        let t = toks("== != <= >= < > && || ! = % *");
        assert_eq!(
            t,
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::LtEq,
                Tok::GtEq,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Not,
                Tok::Assign,
                Tok::Percent,
                Tok::Star,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let t = toks(r#" "a\nb\"c" "#);
        assert_eq!(t[0], Tok::Str("a\nb\"c".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = toks("1 // comment\n2");
        assert_eq!(t, vec![Tok::Int(1), Tok::Int(2), Tok::Eof]);
    }

    #[test]
    fn keywords_vs_identifiers() {
        let t = toks("while whilex for fork in india");
        assert_eq!(
            t,
            vec![
                Tok::While,
                Tok::Ident("whilex".into()),
                Tok::For,
                Tok::Ident("fork".into()),
                Tok::In,
                Tok::Ident("india".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("let x = 1;\nlet y = 2;").unwrap();
        let y = tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("y".into()))
            .unwrap();
        assert_eq!(y.span.line, 2);
        assert_eq!(y.span.col, 5);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(lex("let x = @;").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn float_vs_member_dot() {
        // A digit dot digit is a float; trailing dot is not consumed.
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5), Tok::Eof]);
    }
}
