//! `lip_vet`: static verification of LipScript programs from the shell.
//!
//! The same analysis the serving door runs on every SUBMIT
//! ([`symphony_lipscript::verify`]), exposed as a developer tool in the
//! style of `symphony-lint`:
//!
//! ```text
//! cargo run -p symphony-lipscript --bin lip_vet -- examples/lipscript/agent.lip
//! cargo run -p symphony-lipscript --bin lip_vet -- --format json a.lip b.lip
//! cargo run -p symphony-lipscript --bin lip_vet -- --effects a.lip
//! cargo run -p symphony-lipscript --bin lip_vet -- --explain V006
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 errors found (the door would
//! shed this program with `VerifyRejected`), 2 usage/IO error.

use std::process::ExitCode;

use symphony_lipscript::verify::{verify_source, Bound, Diag, DiagCode, VerifyReport};
use symphony_lipscript::LipError;

struct Args {
    json: bool,
    effects: bool,
    files: Vec<String>,
}

const CODES: &[(DiagCode, &str)] = &[
    (
        DiagCode::UndefinedVar,
        "use of a variable that is not declared in any enclosing scope",
    ),
    (
        DiagCode::UndefinedFn,
        "call to a name that is neither a builtin nor a defined function",
    ),
    (DiagCode::BadArity, "call with the wrong number of arguments"),
    (
        DiagCode::BadSpawnTarget,
        "spawn target string does not name a defined function",
    ),
    (DiagCode::StrayControlFlow, "break or continue outside a loop"),
    (
        DiagCode::TypeMisuse,
        "operation applied to a value whose type makes it fault (definite misuse only)",
    ),
    (
        DiagCode::UseAfterRemove,
        "kv operation on a binding after kv_remove of that binding in straight-line code",
    ),
    (
        DiagCode::ShadowedBuiltin,
        "function definition hidden by a builtin of the same name (calls hit the builtin)",
    ),
    (
        DiagCode::DuplicateFn,
        "duplicate function definition; the first definition wins",
    ),
];

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        effects: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects json|human, got {other:?}")),
            },
            "--effects" => args.effects = true,
            "--explain" => {
                let id = it.next().ok_or("--explain expects a diagnostic code")?;
                for (code, why) in CODES {
                    if code.id().eq_ignore_ascii_case(&id) {
                        println!("{}: {why}", code.id());
                        std::process::exit(0);
                    }
                }
                return Err(format!("unknown diagnostic code `{id}` (V001..V009)"));
            }
            "--help" | "-h" => {
                println!(
                    "lip_vet: admission-time static verification of LipScript\n\
                     \n\
                     USAGE: lip_vet [--format json|human] [--effects] [--explain CODE] FILES...\n\
                     \n\
                     Runs the same resolution/typing/effect analysis the serving\n\
                     door applies to every SUBMIT. Errors mean the door would\n\
                     shed the program with VerifyRejected; warnings admit.\n\
                     `--effects` prints the effect & cost summary per file.\n\
                     `--explain V006` prints the rationale for a code.\n\
                     See docs/VERIFIER.md."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown argument `{other}` (try --help)"))
            }
            path => args.files.push(path.to_string()),
        }
    }
    if args.files.is_empty() {
        return Err("no input files (try --help)".into());
    }
    Ok(args)
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn bound_json(b: Bound) -> String {
    match b.finite() {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn names_json(set: &std::collections::BTreeSet<String>) -> String {
    let inner: Vec<String> = set.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

fn diag_json(path: &str, d: &Diag) -> String {
    format!(
        "{{\"path\":\"{}\",\"line\":{},\"col\":{},\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"}}",
        esc(path),
        d.span.line,
        d.span.col,
        d.severity,
        d.code.id(),
        esc(&d.message)
    )
}

fn report_json(path: &str, r: &VerifyReport, with_effects: bool) -> String {
    let diags: Vec<String> = r.diags.iter().map(|d| diag_json(path, d)).collect();
    let fx = &r.effects;
    let effects = if with_effects {
        format!(
            ",\"effects\":{{\"uses_pred\":{},\"uses_tools\":{},\"tool_names\":{},\"uses_ipc\":{},\
             \"uses_spawn\":{},\"spawn_targets\":{},\"kv_open_paths\":{},\"kv_link_paths\":{},\
             \"fuel_bound\":{},\"pred_bound\":{},\"spawn_bound\":{},\"kv_file_bound\":{}}}",
            fx.uses_pred,
            fx.uses_tools,
            names_json(&fx.tool_names),
            fx.uses_ipc,
            fx.uses_spawn,
            names_json(&fx.spawn_targets),
            names_json(&fx.kv_open_paths),
            names_json(&fx.kv_link_paths),
            bound_json(fx.fuel_bound),
            bound_json(fx.pred_bound),
            bound_json(fx.spawn_bound),
            bound_json(fx.kv_file_bound),
        )
    } else {
        String::new()
    };
    format!(
        "{{\"path\":\"{}\",\"admissible\":{},\"diags\":[{}]{}}}",
        esc(path),
        r.is_admissible(),
        diags.join(","),
        effects
    )
}

fn parse_error_json(path: &str, e: &LipError) -> String {
    format!(
        "{{\"path\":\"{}\",\"admissible\":false,\"parse_error\":\"{}\",\"line\":{},\"col\":{},\"diags\":[]}}",
        esc(path),
        esc(&e.message()),
        e.span().line,
        e.span().col,
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lip_vet: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    let mut file_reports: Vec<String> = Vec::new();
    for path in &args.files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lip_vet: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match verify_source(&source) {
            Err(e) => {
                failed = true;
                if args.json {
                    file_reports.push(parse_error_json(path, &e));
                } else {
                    println!("{}", e.render(path));
                }
            }
            Ok(report) => {
                if !report.is_admissible() {
                    failed = true;
                }
                if args.json {
                    file_reports.push(report_json(path, &report, args.effects));
                } else {
                    for d in &report.diags {
                        println!(
                            "{path}:{}:{}: {}[{}]: {}",
                            d.span.line,
                            d.span.col,
                            d.severity,
                            d.code.id(),
                            d.message
                        );
                    }
                    if args.effects {
                        println!("{path}: effects:");
                        for line in report.effects.render().lines() {
                            println!("  {line}");
                        }
                    }
                }
            }
        }
    }
    if args.json {
        let errors = u32::from(failed);
        println!(
            "{{\"files\":[{}],\"failed\":{errors}}}",
            file_reports.join(",")
        );
    } else if !failed && !args.effects {
        println!("lip_vet: {} file(s) clean", args.files.len());
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
