//! `lip_run` — execute a LipScript program file on a local Symphony kernel.
//!
//! This is the paper's serving loop in miniature: the "client" hands over a
//! program as data, the server runs it sandboxed and streams its output.
//!
//! ```text
//! lip_run <program.lip> [args-string] [--fuel N] [--trace] [--no-verify]
//! ```
//!
//! Programs are parsed and verified before execution — the same admission
//! check the serving door applies — and diagnostics print in compiler
//! style (`file:line:col: message`). `--no-verify` skips the verifier and
//! lets the interpreter fault at runtime instead.
//!
//! Exit code 0 on clean completion, 1 on program failure, 2 on usage error.

use symphony::{Kernel, KernelConfig, Mode, SimDuration, SysError, ToolOutcome, ToolSpec};
use symphony_lipscript::parse::parse;
use symphony_lipscript::verify::verify;
use symphony_lipscript::{run_lip, InterpLimits};

fn usage() -> ! {
    eprintln!("usage: lip_run <program.lip> [args-string] [--fuel N] [--trace] [--no-verify]");
    std::process::exit(2);
}

fn main() {
    let mut path = None;
    let mut program_args = String::new();
    let mut fuel = 10_000_000u64;
    let mut trace = false;
    let mut no_verify = false;
    let mut positional = 0;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--fuel" => {
                fuel = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => trace = true,
            "--no-verify" => no_verify = true,
            "--help" | "-h" => usage(),
            _ => {
                match positional {
                    0 => path = Some(a),
                    1 => program_args = a,
                    _ => usage(),
                }
                positional += 1;
            }
        }
    }
    let Some(path) = path else { usage() };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lip_run: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };

    // Admission check before spending any kernel time: parse errors and
    // verifier errors print compiler-style and exit 1; warnings print but
    // don't block.
    match parse(&src) {
        Err(e) => {
            eprintln!("{}", e.render(&path));
            std::process::exit(1);
        }
        Ok(prog) => {
            if !no_verify {
                let report = verify(&prog);
                for d in &report.diags {
                    eprintln!(
                        "{path}:{}:{}: {}[{}]: {}",
                        d.span.line,
                        d.span.col,
                        d.severity,
                        d.code.id(),
                        d.message
                    );
                }
                if !report.is_admissible() {
                    eprintln!("-- rejected by verifier ({} error(s))", report.error_count());
                    std::process::exit(1);
                }
            }
        }
    }

    let mut cfg = KernelConfig::for_tests();
    cfg.trace = trace;
    let mut kernel = Kernel::new(cfg);

    // A small standard environment so sample programs have something to
    // talk to: a shared system prompt and two demo tools.
    let sys = kernel
        .tokenizer()
        .encode("you are a helpful assistant running as a user program");
    kernel
        .preload_kv("sys_msg.kv", &sys, Mode::SHARED_READ, true)
        .expect("preload system prompt");
    kernel.register_tool(
        "echo",
        ToolSpec::fixed(SimDuration::from_millis(5), |args| {
            ToolOutcome::Ok(args.to_string())
        }),
    );
    kernel.register_tool(
        "time",
        ToolSpec::fixed(SimDuration::from_millis(1), |_| {
            ToolOutcome::Ok("simulated-epoch".to_string())
        }),
    );

    let limits = InterpLimits {
        fuel,
        ..Default::default()
    };
    let src_for_lip = src.clone();
    let pid = kernel.spawn_process("lip_run", &program_args, move |ctx| {
        run_lip(&src_for_lip, ctx, limits)
            .map(|_| ())
            .map_err(|e| SysError::ToolFailed(e.to_string()))
    });
    kernel.run();

    let rec = kernel.record(pid).expect("record");
    print!("{}", rec.output);
    if !rec.output.ends_with('\n') && !rec.output.is_empty() {
        println!();
    }
    eprintln!(
        "-- {} in {} | {} syscalls, {} pred tokens, {} emitted",
        if rec.status.is_ok() { "ok" } else { "failed" },
        rec.latency().map(|l| l.to_string()).unwrap_or_default(),
        rec.usage.syscalls,
        rec.usage.pred_tokens,
        rec.usage.emitted_tokens,
    );
    if trace {
        eprint!("{}", kernel.trace().render());
    }
    if !rec.status.is_ok() {
        eprintln!("-- status: {:?}", rec.status);
        std::process::exit(1);
    }
}
