//! Error types with source positions.

use core::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Why a running program was terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeErrorKind {
    /// Type mismatch (message names the operation and the value kinds).
    Type(String),
    /// Reference to an unknown variable or function.
    Undefined(String),
    /// The fuel budget was exhausted (§6 resource accounting).
    OutOfFuel,
    /// The memory budget was exhausted.
    OutOfMemory,
    /// The call-depth cap was exceeded.
    DepthExceeded,
    /// A builtin was called with the wrong number of arguments.
    BadArity(String),
    /// List or string index out of range.
    IndexOutOfBounds(i64, usize),
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// A system call failed (message from the kernel).
    Host(String),
    /// `break`/`continue` outside a loop.
    BadControlFlow,
}

/// A runtime error with the position of the failing node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// What went wrong.
    pub kind: RuntimeErrorKind,
    /// Where.
    pub span: Span,
}

impl RuntimeError {
    /// Creates an error at a span.
    pub fn new(kind: RuntimeErrorKind, span: Span) -> Self {
        RuntimeError { kind, span }
    }
}

impl RuntimeError {
    /// The bare message, without the `at line:col` suffix.
    pub fn message(&self) -> String {
        match &self.kind {
            RuntimeErrorKind::Type(m) => format!("type error: {m}"),
            RuntimeErrorKind::Undefined(n) => format!("undefined name `{n}`"),
            RuntimeErrorKind::OutOfFuel => "out of fuel".to_string(),
            RuntimeErrorKind::OutOfMemory => "out of memory".to_string(),
            RuntimeErrorKind::DepthExceeded => "call depth exceeded".to_string(),
            RuntimeErrorKind::BadArity(m) => format!("bad arity: {m}"),
            RuntimeErrorKind::IndexOutOfBounds(i, n) => {
                format!("index {i} out of bounds (len {n})")
            }
            RuntimeErrorKind::DivisionByZero => "division by zero".to_string(),
            RuntimeErrorKind::Host(m) => format!("syscall failed: {m}"),
            RuntimeErrorKind::BadControlFlow => {
                "break/continue outside a loop".to_string()
            }
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message(), self.span)
    }
}

impl std::error::Error for RuntimeError {}

/// Any failure of a LipScript program: scanning, parsing or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LipError {
    /// Invalid token.
    Lex { message: String, span: Span },
    /// Syntax error.
    Parse { message: String, span: Span },
    /// Execution error.
    Runtime(RuntimeError),
}

impl fmt::Display for LipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LipError::Lex { message, span } => write!(f, "lex error: {message} at {span}"),
            LipError::Parse { message, span } => write!(f, "parse error: {message} at {span}"),
            LipError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl LipError {
    /// The position of the failure.
    pub fn span(&self) -> Span {
        match self {
            LipError::Lex { span, .. } | LipError::Parse { span, .. } => *span,
            LipError::Runtime(e) => e.span,
        }
    }

    /// The bare message, without the `at line:col` suffix.
    pub fn message(&self) -> String {
        match self {
            LipError::Lex { message, .. } => format!("lex error: {message}"),
            LipError::Parse { message, .. } => format!("parse error: {message}"),
            LipError::Runtime(e) => format!("runtime error: {}", e.message()),
        }
    }

    /// Renders as `file:line:col: message` — the compiler-style format used
    /// by `lip_run`, `lip_vet` and the SYMR SUBMIT error payload.
    pub fn render(&self, file: &str) -> String {
        format!("{file}:{}: {}", self.span(), self.message())
    }
}

impl std::error::Error for LipError {}

impl From<RuntimeError> for LipError {
    fn from(e: RuntimeError) -> Self {
        LipError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = RuntimeError::new(
            RuntimeErrorKind::Undefined("x".into()),
            Span { line: 3, col: 7 },
        );
        assert_eq!(e.to_string(), "undefined name `x` at 3:7");
        let l = LipError::Parse {
            message: "expected `;`".into(),
            span: Span { line: 1, col: 2 },
        };
        assert!(l.to_string().contains("expected `;` at 1:2"));
    }
}
