//! Recursive-descent / precedence-climbing parser.

use crate::ast::{BinOp, Expr, ExprKind, FnDef, Program, Stmt, StmtKind, UnOp};
use crate::error::{LipError, Span};
use crate::lex::{lex, Tok, Token};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> LipError {
        LipError::Parse {
            message: message.into(),
            span: self.span(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Token, LipError> {
        if self.peek() == want {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn program(&mut self) -> Result<Program, LipError> {
        let mut p = Program::default();
        while *self.peek() != Tok::Eof {
            if *self.peek() == Tok::Fn {
                p.functions.push(self.fn_def()?);
            } else {
                p.top.push(self.stmt()?);
            }
        }
        Ok(p)
    }

    fn fn_def(&mut self) -> Result<FnDef, LipError> {
        let span = self.span();
        self.expect(&Tok::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.ident("parameter name")?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            body,
            span,
        })
    }

    fn ident(&mut self, what: &str) -> Result<String, LipError> {
        match self.peek().clone() {
            Tok::Ident(n) => {
                self.bump();
                Ok(n)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LipError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut out = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated block"));
            }
            out.push(self.stmt()?);
        }
        self.bump();
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, LipError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(&Tok::Assign, "`=`")?;
                let e = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                StmtKind::Let(name, e)
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let then = self.block()?;
                let els = if *self.peek() == Tok::Else {
                    self.bump();
                    if *self.peek() == Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                StmtKind::If(cond, then, els)
            }
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.block()?;
                StmtKind::While(cond, body)
            }
            Tok::For => {
                self.bump();
                let var = self.ident("loop variable")?;
                self.expect(&Tok::In, "`in`")?;
                let iter = self.expr()?;
                let body = self.block()?;
                StmtKind::For(var, iter, body)
            }
            Tok::Break => {
                self.bump();
                self.expect(&Tok::Semi, "`;`")?;
                StmtKind::Break
            }
            Tok::Continue => {
                self.bump();
                self.expect(&Tok::Semi, "`;`")?;
                StmtKind::Continue
            }
            Tok::Return => {
                self.bump();
                let e = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                StmtKind::Return(e)
            }
            Tok::Ident(name) => {
                // Lookahead to distinguish assignment forms from expressions.
                match self.toks.get(self.pos + 1).map(|t| &t.tok) {
                    Some(Tok::Assign) => {
                        self.bump();
                        self.bump();
                        let e = self.expr()?;
                        self.expect(&Tok::Semi, "`;`")?;
                        StmtKind::Assign(name, e)
                    }
                    Some(Tok::LBracket) => {
                        // Could be `x[i] = e;` or an expression like `x[i] + 1;`.
                        // Parse the index, then decide.
                        let save = self.pos;
                        self.bump(); // ident
                        self.bump(); // `[`
                        let idx = self.expr()?;
                        if *self.peek() == Tok::RBracket
                            && self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::Assign)
                        {
                            self.bump(); // `]`
                            self.bump(); // `=`
                            let e = self.expr()?;
                            self.expect(&Tok::Semi, "`;`")?;
                            StmtKind::IndexAssign(name, idx, e)
                        } else {
                            self.pos = save;
                            let e = self.expr()?;
                            self.expect(&Tok::Semi, "`;`")?;
                            StmtKind::Expr(e)
                        }
                    }
                    _ => {
                        let e = self.expr()?;
                        self.expect(&Tok::Semi, "`;`")?;
                        StmtKind::Expr(e)
                    }
                }
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                StmtKind::Expr(e)
            }
        };
        Ok(Stmt { kind, span })
    }

    fn expr(&mut self) -> Result<Expr, LipError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, LipError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinOp::Or, 1),
                Tok::AndAnd => (BinOp::And, 2),
                Tok::EqEq => (BinOp::Eq, 3),
                Tok::NotEq => (BinOp::Ne, 3),
                Tok::Lt => (BinOp::Lt, 4),
                Tok::LtEq => (BinOp::Le, 4),
                Tok::Gt => (BinOp::Gt, 4),
                Tok::GtEq => (BinOp::Ge, 4),
                Tok::Plus => (BinOp::Add, 5),
                Tok::Minus => (BinOp::Sub, 5),
                Tok::Star => (BinOp::Mul, 6),
                Tok::Slash => (BinOp::Div, 6),
                Tok::Percent => (BinOp::Mod, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LipError> {
        let span = self.span();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
                    span,
                })
            }
            Tok::Not => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(UnOp::Not, Box::new(e)),
                    span,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, LipError> {
        let mut e = self.primary()?;
        while let Tok::LBracket = self.peek() {
            let span = self.span();
            self.bump();
            let idx = self.expr()?;
            self.expect(&Tok::RBracket, "`]`")?;
            e = Expr {
                kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                span,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, LipError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                ExprKind::Int(v)
            }
            Tok::Float(v) => {
                self.bump();
                ExprKind::Float(v)
            }
            Tok::Str(s) => {
                self.bump();
                ExprKind::Str(s)
            }
            Tok::True => {
                self.bump();
                ExprKind::Bool(true)
            }
            Tok::False => {
                self.bump();
                ExprKind::Bool(false)
            }
            Tok::Nil => {
                self.bump();
                ExprKind::Nil
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                return Ok(e);
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "`]`")?;
                ExprKind::List(items)
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    ExprKind::Call(name, args)
                } else {
                    ExprKind::Var(name)
                }
            }
            other => return Err(self.err(format!("expected expression, found {other:?}"))),
        };
        Ok(Expr { kind, span })
    }
}

/// Parses source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program, LipError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_let_and_arith_precedence() {
        let p = parse("let x = 1 + 2 * 3;").unwrap();
        let StmtKind::Let(name, e) = &p.top[0].kind else {
            panic!()
        };
        assert_eq!(name, "x");
        // 1 + (2 * 3)
        let ExprKind::Bin(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected add at top: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }").unwrap();
        let StmtKind::If(_, then, els) = &p.top[0].kind else {
            panic!()
        };
        assert_eq!(then.len(), 1);
        assert_eq!(els.len(), 1);
        assert!(matches!(els[0].kind, StmtKind::If(_, _, _)));
    }

    #[test]
    fn parses_functions_and_calls() {
        let p = parse("fn add(a, b) { return a + b; } let y = add(1, 2);").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
        assert!(p.function("add").is_some());
        assert!(p.function("sub").is_none());
    }

    #[test]
    fn parses_loops_and_control() {
        let p = parse(
            "while (x < 10) { x = x + 1; if (x == 5) { break; } continue; } \
             for t in xs { emit(str(t)); }",
        )
        .unwrap();
        assert_eq!(p.top.len(), 2);
        assert!(matches!(p.top[1].kind, StmtKind::For(_, _, _)));
    }

    #[test]
    fn parses_index_assignment_vs_index_expr() {
        let p = parse("xs[0] = 5; let y = xs[1] + 1;").unwrap();
        assert!(matches!(p.top[0].kind, StmtKind::IndexAssign(_, _, _)));
        assert!(matches!(p.top[1].kind, StmtKind::Let(_, _)));
    }

    #[test]
    fn parses_nested_index_and_calls() {
        let p = parse("let d = pred(kv, [t], pos)[0];").unwrap();
        let StmtKind::Let(_, e) = &p.top[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
    }

    #[test]
    fn unary_operators() {
        let p = parse("let a = -x + !b;").unwrap();
        assert_eq!(p.top.len(), 1);
    }

    #[test]
    fn logical_precedence() {
        // a || b && c  parses as  a || (b && c).
        let p = parse("let r = a || b && c;").unwrap();
        let StmtKind::Let(_, e) = &p.top[0].kind else {
            panic!()
        };
        let ExprKind::Bin(BinOp::Or, _, rhs) = &e.kind else {
            panic!("expected || at top")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::And, _, _)));
    }

    #[test]
    fn errors_have_positions() {
        let e = parse("let x = ;").unwrap_err();
        match e {
            LipError::Parse { span, .. } => assert_eq!(span.line, 1),
            other => panic!("{other:?}"),
        }
        assert!(parse("fn f( { }").is_err());
        assert!(parse("while x { }").is_err());
        assert!(parse("let x = 1").is_err(), "missing semicolon");
        assert!(parse("{ unterminated").is_err());
    }

    #[test]
    fn empty_list_and_nil() {
        let p = parse("let xs = []; let n = nil;").unwrap();
        assert_eq!(p.top.len(), 2);
    }
}
