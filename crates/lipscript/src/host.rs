//! The host interface: everything a LipScript program can do to the world.
//!
//! [`Host`] is the sandbox boundary. The production implementation is
//! [`symphony::Ctx`] — every method is a Symphony system call — while tests
//! use [`MockHost`] to exercise the interpreter without a kernel.

use std::sync::Arc;

use symphony::{SysError, Tid};
use symphony_model::Dist;

use crate::ast::Program;
use crate::interp::{InterpLimits, Interpreter};
use crate::value::Value;

/// Host call result; errors are surfaced to the program as runtime errors.
pub type HostResult<T> = Result<T, String>;

/// The system-call surface visible to LipScript builtins.
pub trait Host {
    /// The program's argument string.
    fn args(&self) -> String;
    /// The EOS token.
    fn eos(&self) -> u32;
    /// Content-vocabulary size hint for tail sampling.
    fn vocab_hint(&self) -> u32;
    /// Deterministic uniform draw in `[0, 1)`.
    fn rand_f64(&mut self) -> f64;
    /// Tokenises text.
    fn tokenize(&mut self, s: &str) -> HostResult<Vec<u32>>;
    /// Detokenises tokens.
    fn detokenize(&mut self, toks: &[u32]) -> HostResult<String>;
    /// The `pred` system call.
    fn pred(&mut self, kv: u64, tokens: &[(u32, u32)]) -> HostResult<Vec<Dist>>;
    /// Creates a KV file.
    fn kv_create(&mut self) -> HostResult<u64>;
    /// Opens a named KV file.
    fn kv_open(&mut self, path: &str) -> HostResult<u64>;
    /// Copy-on-write fork.
    fn kv_fork(&mut self, kv: u64) -> HostResult<u64>;
    /// Removes a file.
    fn kv_remove(&mut self, kv: u64) -> HostResult<()>;
    /// Token count of a file.
    fn kv_len(&mut self, kv: u64) -> HostResult<usize>;
    /// Next position after the file's tail.
    fn kv_next_pos(&mut self, kv: u64) -> HostResult<u32>;
    /// Truncates a file.
    fn kv_truncate(&mut self, kv: u64, len: usize) -> HostResult<()>;
    /// Extracts an entry range into a new file.
    fn kv_extract(&mut self, kv: u64, start: usize, end: usize) -> HostResult<u64>;
    /// Concatenates files into a new one.
    fn kv_merge(&mut self, kvs: &[u64]) -> HostResult<u64>;
    /// Publishes a file under a path.
    fn kv_link(&mut self, kv: u64, path: &str) -> HostResult<()>;
    /// Removes a path.
    fn kv_unlink(&mut self, path: &str) -> HostResult<()>;
    /// Pins a file.
    fn kv_pin(&mut self, kv: u64) -> HostResult<()>;
    /// Unpins a file.
    fn kv_unpin(&mut self, kv: u64) -> HostResult<()>;
    /// Streams text to the client.
    fn emit(&mut self, s: &str) -> HostResult<()>;
    /// Streams tokens to the client.
    fn emit_tokens(&mut self, toks: &[u32]) -> HostResult<()>;
    /// Invokes a server-side tool.
    fn call_tool(&mut self, name: &str, args: &str) -> HostResult<String>;
    /// Sends an IPC message.
    fn send_msg(&mut self, pid: u64, data: &str) -> HostResult<()>;
    /// Receives an IPC message (`(from_pid, data)`), blocking.
    fn recv_msg(&mut self) -> HostResult<(u64, String)>;
    /// Finds a live process by name.
    fn lookup(&mut self, name: &str) -> HostResult<Option<u64>>;
    /// Sleeps for virtual milliseconds.
    fn sleep_ms(&mut self, ms: u64) -> HostResult<()>;
    /// Current virtual time in milliseconds.
    fn now_ms(&mut self) -> HostResult<f64>;
    /// Spawns `func(args...)` from `program` on a new thread.
    fn spawn_fn(
        &mut self,
        program: Arc<Program>,
        func: String,
        args: Vec<Value>,
        limits: InterpLimits,
    ) -> HostResult<u64>;
    /// Joins a spawned thread; `true` if it exited cleanly.
    fn join_thread(&mut self, tid: u64) -> HostResult<bool>;
}

fn se(e: SysError) -> String {
    e.to_string()
}

impl Host for symphony::Ctx {
    fn args(&self) -> String {
        symphony::Ctx::args(self)
    }

    fn eos(&self) -> u32 {
        symphony::Ctx::eos(self)
    }

    fn vocab_hint(&self) -> u32 {
        self.specials().bos
    }

    fn rand_f64(&mut self) -> f64 {
        self.rng_f64()
    }

    fn tokenize(&mut self, s: &str) -> HostResult<Vec<u32>> {
        symphony::Ctx::tokenize(self, s).map_err(se)
    }

    fn detokenize(&mut self, toks: &[u32]) -> HostResult<String> {
        symphony::Ctx::detokenize(self, toks).map_err(se)
    }

    fn pred(&mut self, kv: u64, tokens: &[(u32, u32)]) -> HostResult<Vec<Dist>> {
        symphony::Ctx::pred(self, symphony::FileId(kv), tokens).map_err(se)
    }

    fn kv_create(&mut self) -> HostResult<u64> {
        symphony::Ctx::kv_create(self).map(|f| f.0).map_err(se)
    }

    fn kv_open(&mut self, path: &str) -> HostResult<u64> {
        symphony::Ctx::kv_open(self, path).map(|f| f.0).map_err(se)
    }

    fn kv_fork(&mut self, kv: u64) -> HostResult<u64> {
        symphony::Ctx::kv_fork(self, symphony::FileId(kv))
            .map(|f| f.0)
            .map_err(se)
    }

    fn kv_remove(&mut self, kv: u64) -> HostResult<()> {
        symphony::Ctx::kv_remove(self, symphony::FileId(kv)).map_err(se)
    }

    fn kv_len(&mut self, kv: u64) -> HostResult<usize> {
        symphony::Ctx::kv_len(self, symphony::FileId(kv)).map_err(se)
    }

    fn kv_next_pos(&mut self, kv: u64) -> HostResult<u32> {
        symphony::Ctx::kv_next_pos(self, symphony::FileId(kv)).map_err(se)
    }

    fn kv_truncate(&mut self, kv: u64, len: usize) -> HostResult<()> {
        symphony::Ctx::kv_truncate(self, symphony::FileId(kv), len).map_err(se)
    }

    fn kv_extract(&mut self, kv: u64, start: usize, end: usize) -> HostResult<u64> {
        // kv_extract takes a slice of ranges; this host call extracts one.
        #[allow(clippy::single_range_in_vec_init)]
        let ranges = [start..end];
        symphony::Ctx::kv_extract(self, symphony::FileId(kv), &ranges)
            .map(|f| f.0)
            .map_err(se)
    }

    fn kv_merge(&mut self, kvs: &[u64]) -> HostResult<u64> {
        let files: Vec<symphony::FileId> = kvs.iter().map(|&k| symphony::FileId(k)).collect();
        symphony::Ctx::kv_merge(self, &files).map(|f| f.0).map_err(se)
    }

    fn kv_link(&mut self, kv: u64, path: &str) -> HostResult<()> {
        symphony::Ctx::kv_link(self, symphony::FileId(kv), path).map_err(se)
    }

    fn kv_unlink(&mut self, path: &str) -> HostResult<()> {
        symphony::Ctx::kv_unlink(self, path).map_err(se)
    }

    fn kv_pin(&mut self, kv: u64) -> HostResult<()> {
        symphony::Ctx::kv_pin(self, symphony::FileId(kv)).map_err(se)
    }

    fn kv_unpin(&mut self, kv: u64) -> HostResult<()> {
        symphony::Ctx::kv_unpin(self, symphony::FileId(kv)).map_err(se)
    }

    fn emit(&mut self, s: &str) -> HostResult<()> {
        symphony::Ctx::emit(self, s).map_err(se)
    }

    fn emit_tokens(&mut self, toks: &[u32]) -> HostResult<()> {
        symphony::Ctx::emit_tokens(self, toks).map_err(se)
    }

    fn call_tool(&mut self, name: &str, args: &str) -> HostResult<String> {
        symphony::Ctx::call_tool(self, name, args).map_err(se)
    }

    fn send_msg(&mut self, pid: u64, data: &str) -> HostResult<()> {
        symphony::Ctx::send_msg(self, symphony::Pid(pid), data).map_err(se)
    }

    fn recv_msg(&mut self) -> HostResult<(u64, String)> {
        symphony::Ctx::recv_msg(self)
            .map(|m| (m.from.0, m.data))
            .map_err(se)
    }

    fn lookup(&mut self, name: &str) -> HostResult<Option<u64>> {
        self.lookup_process(name).map(|p| p.map(|p| p.0)).map_err(se)
    }

    fn sleep_ms(&mut self, ms: u64) -> HostResult<()> {
        self.sleep(symphony::SimDuration::from_millis(ms)).map_err(se)
    }

    fn now_ms(&mut self) -> HostResult<f64> {
        self.now().map(|t| t.as_secs_f64() * 1e3).map_err(se)
    }

    fn spawn_fn(
        &mut self,
        program: Arc<Program>,
        func: String,
        args: Vec<Value>,
        limits: InterpLimits,
    ) -> HostResult<u64> {
        let tid = self
            .spawn(move |tctx| {
                let mut interp = Interpreter::new(program, limits);
                interp
                    .call_named(tctx, &func, args)
                    .map(|_| ())
                    .map_err(|e| SysError::ToolFailed(e.to_string()))
            })
            .map_err(se)?;
        Ok(tid.0)
    }

    fn join_thread(&mut self, tid: u64) -> HostResult<bool> {
        self.join(Tid(tid)).map(|s| s.is_ok()).map_err(se)
    }
}

/// A kernel-free host for interpreter tests: deterministic fake model, an
/// in-memory KV table, inline (synchronous) thread execution.
#[derive(Debug, Default)]
pub struct MockHost {
    /// Program argument string.
    pub args: String,
    /// Everything the program emitted.
    pub emitted: String,
    /// Fake KV files: token/position pairs per handle (`None` = removed).
    pub files: Vec<Option<Vec<(u32, u32)>>>,
    /// Named files.
    pub names: std::collections::BTreeMap<String, u64>,
    /// Registered tools: name → output.
    pub tools: std::collections::BTreeMap<String, String>,
    /// Pending inbound IPC messages.
    pub inbox: std::collections::VecDeque<(u64, String)>,
    /// Results of inline "spawned" threads.
    pub threads: Vec<bool>,
    rng_state: u64,
    clock_ms: f64,
}

impl MockHost {
    /// Creates a mock with the given args.
    pub fn new(args: &str) -> Self {
        MockHost {
            args: args.to_string(),
            rng_state: 0x9E37_79B9,
            ..Default::default()
        }
    }

    fn file(&mut self, kv: u64) -> HostResult<&mut Vec<(u32, u32)>> {
        self.files
            .get_mut(kv as usize)
            .and_then(|f| f.as_mut())
            .ok_or_else(|| "kv: file not found".to_string())
    }

    /// Deterministic fake distribution: peaked at a hash of the context
    /// length and last token, with EOS at rank 2 periodically.
    fn fake_dist(&self, kv_contents: &[(u32, u32)]) -> Dist {
        let last = kv_contents.last().map(|&(t, _)| t as u64).unwrap_or(0);
        let n = kv_contents.len() as u64;
        let h = (last ^ (n.wrapping_mul(0x9E37_79B9_7F4A_7C15))).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let top = (h % 200) as u32;
        let second = (top + 1) % 200;
        if n % 13 == 12 {
            Dist::from_weights(vec![(self.eos(), 5.0), (top, 1.0)], 0.2, 100)
        } else {
            Dist::from_weights(vec![(top, 5.0), (second, 2.0), (self.eos(), 0.1)], 0.2, 100)
        }
    }
}

impl Host for MockHost {
    fn args(&self) -> String {
        self.args.clone()
    }

    fn eos(&self) -> u32 {
        999
    }

    fn vocab_hint(&self) -> u32 {
        998
    }

    fn rand_f64(&mut self) -> f64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        (self.rng_state >> 11) as f64 / (1u64 << 53) as f64
    }

    fn tokenize(&mut self, s: &str) -> HostResult<Vec<u32>> {
        // One token per whitespace-separated word: a stable toy mapping.
        Ok(s
            .split_whitespace()
            .map(|w| w.bytes().fold(7u32, |a, b| a.wrapping_mul(31) + b as u32) % 900)
            .collect())
    }

    fn detokenize(&mut self, toks: &[u32]) -> HostResult<String> {
        Ok(toks
            .iter()
            .map(|t| format!("<{t}>"))
            .collect::<Vec<_>>()
            .join(""))
    }

    fn pred(&mut self, kv: u64, tokens: &[(u32, u32)]) -> HostResult<Vec<Dist>> {
        let mut dists = Vec::with_capacity(tokens.len());
        for &(t, p) in tokens {
            self.file(kv)?.push((t, p));
            let contents = self.file(kv)?.clone();
            dists.push(self.fake_dist(&contents));
        }
        Ok(dists)
    }

    fn kv_create(&mut self) -> HostResult<u64> {
        self.files.push(Some(Vec::new()));
        Ok(self.files.len() as u64 - 1)
    }

    fn kv_open(&mut self, path: &str) -> HostResult<u64> {
        self.names
            .get(path)
            .copied()
            .ok_or_else(|| "kv: file not found".to_string())
    }

    fn kv_fork(&mut self, kv: u64) -> HostResult<u64> {
        let contents = self.file(kv)?.clone();
        self.files.push(Some(contents));
        Ok(self.files.len() as u64 - 1)
    }

    fn kv_remove(&mut self, kv: u64) -> HostResult<()> {
        self.file(kv)?;
        self.files[kv as usize] = None;
        Ok(())
    }

    fn kv_len(&mut self, kv: u64) -> HostResult<usize> {
        Ok(self.file(kv)?.len())
    }

    fn kv_next_pos(&mut self, kv: u64) -> HostResult<u32> {
        Ok(self.file(kv)?.last().map_or(0, |&(_, p)| p + 1))
    }

    fn kv_truncate(&mut self, kv: u64, len: usize) -> HostResult<()> {
        let f = self.file(kv)?;
        if len > f.len() {
            return Err("kv: index or range out of bounds".into());
        }
        f.truncate(len);
        Ok(())
    }

    fn kv_extract(&mut self, kv: u64, start: usize, end: usize) -> HostResult<u64> {
        let f = self.file(kv)?;
        if start > end || end > f.len() {
            return Err("kv: index or range out of bounds".into());
        }
        let part = f[start..end].to_vec();
        self.files.push(Some(part));
        Ok(self.files.len() as u64 - 1)
    }

    fn kv_merge(&mut self, kvs: &[u64]) -> HostResult<u64> {
        let mut all = Vec::new();
        for &k in kvs {
            all.extend(self.file(k)?.iter().copied());
        }
        self.files.push(Some(all));
        Ok(self.files.len() as u64 - 1)
    }

    fn kv_link(&mut self, kv: u64, path: &str) -> HostResult<()> {
        self.file(kv)?;
        if self.names.contains_key(path) {
            return Err("kv: path already exists".into());
        }
        self.names.insert(path.to_string(), kv);
        Ok(())
    }

    fn kv_unlink(&mut self, path: &str) -> HostResult<()> {
        self.names
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| "kv: file not found".to_string())
    }

    fn kv_pin(&mut self, kv: u64) -> HostResult<()> {
        self.file(kv).map(|_| ())
    }

    fn kv_unpin(&mut self, kv: u64) -> HostResult<()> {
        self.file(kv).map(|_| ())
    }

    fn emit(&mut self, s: &str) -> HostResult<()> {
        self.emitted.push_str(s);
        Ok(())
    }

    fn emit_tokens(&mut self, toks: &[u32]) -> HostResult<()> {
        let text = self.detokenize(toks)?;
        self.emitted.push_str(&text);
        Ok(())
    }

    fn call_tool(&mut self, name: &str, args: &str) -> HostResult<String> {
        self.tools
            .get(name)
            .map(|out| out.replace("{args}", args))
            .ok_or_else(|| "not found".to_string())
    }

    fn send_msg(&mut self, _pid: u64, data: &str) -> HostResult<()> {
        // Loopback for tests.
        self.inbox.push_back((0, data.to_string()));
        Ok(())
    }

    fn recv_msg(&mut self) -> HostResult<(u64, String)> {
        self.inbox
            .pop_front()
            .ok_or_else(|| "recv on empty mailbox (mock would deadlock)".to_string())
    }

    fn lookup(&mut self, name: &str) -> HostResult<Option<u64>> {
        Ok(if name == "self" { Some(0) } else { None })
    }

    fn sleep_ms(&mut self, ms: u64) -> HostResult<()> {
        self.clock_ms += ms as f64;
        Ok(())
    }

    fn now_ms(&mut self) -> HostResult<f64> {
        Ok(self.clock_ms)
    }

    fn spawn_fn(
        &mut self,
        program: Arc<Program>,
        func: String,
        args: Vec<Value>,
        limits: InterpLimits,
    ) -> HostResult<u64> {
        // Inline execution: good enough to test the plumbing.
        let mut interp = Interpreter::new(program, limits);
        let ok = interp.call_named(self, &func, args).is_ok();
        self.threads.push(ok);
        Ok(self.threads.len() as u64 - 1)
    }

    fn join_thread(&mut self, tid: u64) -> HostResult<bool> {
        self.threads
            .get(tid as usize)
            .copied()
            .ok_or_else(|| "not found".to_string())
    }
}
