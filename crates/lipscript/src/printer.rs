//! Pretty-printer: renders an AST back to canonical source.
//!
//! Round-tripping (`parse ∘ print ∘ parse = parse`) is property-tested; the
//! printer is also what a server would use to log normalised programs.

use crate::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an expression (fully parenthesised, so precedence is explicit).
pub fn print_expr(e: &Expr) -> String {
    match &e.kind {
        // Negative literals print parenthesised so they re-lex as a unary
        // negation of a positive literal, keeping the printer a fixpoint.
        ExprKind::Int(v) if *v < 0 => format!("({v})"),
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Float(v) => {
            let body = if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            };
            if *v < 0.0 {
                format!("({body})")
            } else {
                body
            }
        }
        ExprKind::Str(s) => format!("\"{}\"", escape(s)),
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Nil => "nil".to_string(),
        ExprKind::Var(n) => n.clone(),
        ExprKind::List(items) => {
            let inner: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", inner.join(", "))
        }
        ExprKind::Bin(op, l, r) => {
            format!("({} {} {})", print_expr(l), op_str(*op), print_expr(r))
        }
        ExprKind::Un(UnOp::Neg, x) => format!("(-{})", print_expr(x)),
        ExprKind::Un(UnOp::Not, x) => format!("(!{})", print_expr(x)),
        ExprKind::Call(name, args) => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        ExprKind::Index(base, idx) => format!("{}[{}]", print_expr(base), print_expr(idx)),
    }
}

fn print_block(stmts: &[Stmt], indent: usize, out: &mut String) {
    out.push_str("{\n");
    for s in stmts {
        print_stmt(s, indent + 1, out);
    }
    out.push_str(&"    ".repeat(indent));
    out.push('}');
}

/// Renders one statement at an indent level.
pub fn print_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    out.push_str(&pad);
    match &s.kind {
        StmtKind::Let(name, e) => {
            out.push_str(&format!("let {name} = {};\n", print_expr(e)));
        }
        StmtKind::Assign(name, e) => {
            out.push_str(&format!("{name} = {};\n", print_expr(e)));
        }
        StmtKind::IndexAssign(name, i, e) => {
            out.push_str(&format!("{name}[{}] = {};\n", print_expr(i), print_expr(e)));
        }
        StmtKind::If(cond, then, els) => {
            out.push_str(&format!("if ({}) ", print_expr(cond)));
            print_block(then, indent, out);
            if !els.is_empty() {
                out.push_str(" else ");
                // `else if` chains are stored as a single-statement else.
                if els.len() == 1 {
                    if let StmtKind::If(..) = els[0].kind {
                        let mut chain = String::new();
                        print_stmt(&els[0], indent, &mut chain);
                        // Strip the leading pad and trailing newline to
                        // splice the chain after `else `.
                        let trimmed = chain.trim_start().trim_end_matches('\n');
                        out.push_str(trimmed);
                        out.push('\n');
                        return;
                    }
                }
                print_block(els, indent, out);
            }
            out.push('\n');
        }
        StmtKind::While(cond, body) => {
            out.push_str(&format!("while ({}) ", print_expr(cond)));
            print_block(body, indent, out);
            out.push('\n');
        }
        StmtKind::For(var, iter, body) => {
            out.push_str(&format!("for {var} in {} ", print_expr(iter)));
            print_block(body, indent, out);
            out.push('\n');
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Return(Some(e)) => out.push_str(&format!("return {};\n", print_expr(e))),
        StmtKind::Expr(e) => out.push_str(&format!("{};\n", print_expr(e))),
    }
}

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.functions {
        out.push_str(&format!("fn {}({}) ", f.name, f.params.join(", ")));
        print_block(&f.body, 0, &mut out);
        out.push('\n');
    }
    for s in &p.top {
        print_stmt(s, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn fixpoint(src: &str) {
        let p1 = parse(src).expect("first parse");
        let printed1 = print_program(&p1);
        let p2 = parse(&printed1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed1}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed1, printed2, "printer is not a fixpoint for {src}");
    }

    #[test]
    fn fixpoint_on_representative_programs() {
        for src in [
            "let x = 1 + 2 * 3;",
            "let x = (1 + 2) * 3;",
            r#"let s = "a\nb\"c" + str(1.5);"#,
            "fn f(a, b) { return a - b - 1; } let y = f(2, 1);",
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }",
            "while (i < 10) { i = i + 1; if (i == 5) { break; } continue; }",
            "for t in [1, 2, 3] { emit(str(t)); }",
            "let d = pred(kv, [t], pos)[0]; xs[0] = -1; let n = !done;",
            "let e = a || b && !c; return nil;",
            "fn g() { return; }",
        ] {
            fixpoint(src);
        }
    }

    #[test]
    fn printed_subtraction_preserves_associativity() {
        // a - b - c must reparse as (a - b) - c, not a - (b - c).
        let p = parse("let x = a - b - c;").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("((a - b) - c)"), "{printed}");
    }
}
