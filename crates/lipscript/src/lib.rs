//! LipScript — a small sandboxed language for LLM Inference Programs.
//!
//! The paper's core move is that "instead of a prompt, a user sends a
//! *program* to the serving system" (§1). Native Rust LIPs demonstrate the
//! API, but a server cannot accept arbitrary compiled Rust from tenants;
//! §6 calls for "robust sandboxing ... resource accounting, and
//! fine-grained access control". LipScript is that story made concrete: a
//! deterministic, fuel-metered, memory-bounded interpreted language whose
//! only access to the world is the Symphony system-call surface.
//!
//! - **Syntax**: a small C/JS-like imperative language — `let`, assignment,
//!   `if`/`else`, `while`, `for x in xs`, top-level `fn` definitions,
//!   integers/floats/strings/bools/lists, and `nil`.
//! - **Builtins** ([`builtins`]): the `pred`/`kv_*`/tool/IPC system calls
//!   plus distribution operations (`sample`, `argmax`, `top_k`,
//!   `constrain`, ...) and list/string utilities.
//! - **Sandboxing** ([`interp::InterpLimits`]): every evaluated AST node
//!   burns fuel, every allocation is charged against a memory budget, call
//!   depth is capped, and exhaustion terminates the program with a
//!   structured error — never the server.
//! - **Threads**: `spawn("fn_name", [args...])` runs a top-level function
//!   on a new kernel thread with its own fuel budget; `join(tid)` waits.
//!
//! # Examples
//!
//! ```
//! use symphony::{Kernel, KernelConfig};
//! use symphony_lipscript::run_lip;
//!
//! let src = r#"
//!     let prompt = tokenize(args());
//!     let kv = kv_create();
//!     let dists = pred(kv, prompt, 0);
//!     let d = dists[len(dists) - 1];
//!     let pos = len(prompt);
//!     let n = 0;
//!     while (n < 8) {
//!         let t = argmax(d);
//!         if (t == eos()) { break; }
//!         emit_token(t);
//!         d = pred(kv, [t], pos)[0];
//!         pos = pos + 1;
//!         n = n + 1;
//!     }
//! "#
//! .to_string();
//!
//! let mut kernel = Kernel::new(KernelConfig::for_tests());
//! let pid = kernel.spawn_process("lip", "hello world", move |ctx| {
//!     run_lip(&src, ctx, Default::default())
//!         .map(|_| ())
//!         .map_err(|e| symphony::SysError::ToolFailed(e.to_string()))
//! });
//! kernel.run();
//! let rec = kernel.record(pid).unwrap();
//! assert!(rec.status.is_ok(), "{:?}", rec.status);
//! assert!(!rec.output.is_empty());
//! ```

pub mod ast;
pub mod builtins;
pub mod error;
pub mod host;
pub mod interp;
pub mod lex;
pub mod parse;
pub mod printer;
pub mod value;
pub mod verify;

pub use error::{LipError, RuntimeError};
pub use host::Host;
pub use interp::{run_lip, run_with_host, InterpLimits, Interpreter};
pub use value::Value;
pub use verify::{verify, verify_source, Bound, Diag, EffectSummary, Severity, VerifyReport};
