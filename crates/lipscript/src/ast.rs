//! Abstract syntax tree.

use crate::error::Span;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Nil,
    /// Variable reference.
    Var(String),
    /// List literal.
    List(Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// Indexing: `xs[i]`.
    Index(Box<Expr>, Box<Expr>),
}

/// An expression with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// Source position.
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name = expr;`
    Let(String, Expr),
    /// `name = expr;`
    Assign(String, Expr),
    /// `name[index] = expr;`
    IndexAssign(String, Expr, Expr),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `for x in expr { .. }`
    For(String, Expr, Vec<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return expr?;`
    Return(Option<Expr>),
    /// Expression statement.
    Expr(Expr),
}

/// A statement with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The node.
    pub kind: StmtKind,
    /// Source position.
    pub span: Span,
}

/// A top-level function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position of the `fn` keyword.
    pub span: Span,
}

/// A parsed program: function table plus top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Named functions.
    pub functions: Vec<FnDef>,
    /// Statements executed when the program runs.
    pub top: Vec<Stmt>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}
