//! Admission-time static verification of LipScript programs.
//!
//! The paper's core move — clients ship *programs*, not prompts — means the
//! server, like an OS loading eBPF, should reject bad programs **before**
//! spending fuel, GPU time, or KV quota on them (§6 resource accounting).
//! This module is that check: a multi-pass analyzer over the parsed AST
//! that runs at the admission door in O(program size), with no host access.
//!
//! Passes:
//!
//! 1. **Resolution & arity** — undefined variables/functions, builtin and
//!    user-function arity, `spawn("name", ...)` targets that don't resolve,
//!    `break`/`continue` outside loops, variables only assigned on some
//!    paths (via lexical scoping, mirroring the interpreter's `Env`).
//! 2. **Abstract typing** — a flat lattice (int / float / bool / string /
//!    list / dist / kv / thread / nil / ⊤) propagated flow-insensitively
//!    per function body; only *definite* misuse is reported (indexing an
//!    int, `join` on a non-thread, `pred` on a non-kv, `kv_*` after
//!    `kv_remove` of the same binding in straight-line code).
//! 3. **Effects & cost** — the program's syscall effect set (pred, tools,
//!    IPC, spawns, named `kv_open`/`kv_link` paths) and conservative upper
//!    bounds on fuel, `pred` calls, spawned threads and KV files created,
//!    [`Bound::Finite`] where every loop is statically bounded
//!    (`for x in <literal or range(lit, lit)>`), [`Bound::Unbounded`]
//!    otherwise. The scheduler uses the `pred` bound as an initial service
//!    estimate (Autellix-style program-level clairvoyance).
//!
//! # The no-false-positive contract
//!
//! The verifier must never reject a program the interpreter would run to
//! completion. The interpreter only faults on code it actually executes, so
//! a diagnostic is an [`Severity::Error`] only when the offending code is
//! on the program's *guaranteed* execution path: the straight-line prefix
//! of the top level, branches under literal conditions, the first iteration
//! of loops over non-empty literal lists, and bodies of functions that are
//! definitely called from such code. Everything else — dead branches,
//! uncalled functions, spawned-thread bodies (thread faults never fail the
//! parent program) — demotes to [`Severity::Warning`]. A property test
//! (`tests/prop_verify.rs`) enforces this against the real interpreter.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};
use crate::builtins;
use crate::error::{LipError, Span};
use crate::parse::parse;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably fatal: the code is off the guaranteed
    /// execution path, or the types involved are unknown (⊤).
    Warning,
    /// Provably faults if the program is admitted: the interpreter would
    /// terminate the program on its guaranteed execution path.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes (documented in `docs/VERIFIER.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagCode {
    /// V001: use of an undeclared variable.
    UndefinedVar,
    /// V002: call to a function that is neither a builtin nor defined.
    UndefinedFn,
    /// V003: call with the wrong number of arguments.
    BadArity,
    /// V004: `spawn` target that does not name a defined function.
    BadSpawnTarget,
    /// V005: `break`/`continue` outside any loop.
    StrayControlFlow,
    /// V006: operation applied to a value of a definitely-wrong type.
    TypeMisuse,
    /// V007: KV operation on a binding after `kv_remove` of that binding.
    UseAfterRemove,
    /// V008: function definition shadowed by a builtin of the same name.
    ShadowedBuiltin,
    /// V009: duplicate function definition (the first one wins).
    DuplicateFn,
}

impl DiagCode {
    /// The stable `Vnnn` identifier.
    pub fn id(self) -> &'static str {
        match self {
            DiagCode::UndefinedVar => "V001",
            DiagCode::UndefinedFn => "V002",
            DiagCode::BadArity => "V003",
            DiagCode::BadSpawnTarget => "V004",
            DiagCode::StrayControlFlow => "V005",
            DiagCode::TypeMisuse => "V006",
            DiagCode::UseAfterRemove => "V007",
            DiagCode::ShadowedBuiltin => "V008",
            DiagCode::DuplicateFn => "V009",
        }
    }
}

/// A single verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable code.
    pub code: DiagCode,
    /// Error (provably faults) or warning.
    pub severity: Severity,
    /// Source position of the offending node.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diag {
    /// Renders as `file:line:col: message` — the format used by `lip_run`
    /// and the SYMR SUBMIT error payload.
    pub fn render(&self, file: &str) -> String {
        format!("{file}:{}: {}", self.span, self.message)
    }
}

// ---------------------------------------------------------------------------
// Bounds and effect summaries
// ---------------------------------------------------------------------------

/// A conservative upper bound on a resource count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// At most this many (saturating).
    Finite(u64),
    /// No static bound (unbounded loop, recursion, or dynamic spawn).
    Unbounded,
}

impl Bound {
    /// Zero.
    pub const ZERO: Bound = Bound::Finite(0);

    /// Pointwise maximum.
    pub fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.max(b)),
            _ => Bound::Unbounded,
        }
    }

    /// `Some(n)` for a finite bound.
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(n),
            Bound::Unbounded => None,
        }
    }
}

/// Saturating addition.
impl std::ops::Add for Bound {
    type Output = Bound;
    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }
}

/// Saturating multiplication; zero short-circuits (a loop that runs
/// zero times costs nothing even if its body is unbounded).
impl std::ops::Mul for Bound {
    type Output = Bound;
    fn mul(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(0), _) | (_, Bound::Finite(0)) => Bound::Finite(0),
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_mul(b)),
            _ => Bound::Unbounded,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "<={n}"),
            Bound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// What a program can touch and how much it can cost, derived statically.
///
/// Fuel and `pred` bounds cover the main thread (spawned threads run on
/// their own fuel budgets); spawn and KV-file bounds include work done by
/// statically-resolved spawn targets, transitively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSummary {
    /// Calls `pred`/`pred_at` (GPU work).
    pub uses_pred: bool,
    /// Calls `call_tool`.
    pub uses_tools: bool,
    /// Tool names passed as string literals.
    pub tool_names: BTreeSet<String>,
    /// A `call_tool` with a computed tool name exists.
    pub dynamic_tools: bool,
    /// Uses `send`/`recv`/`lookup` (inter-program IPC).
    pub uses_ipc: bool,
    /// Calls `spawn`.
    pub uses_spawn: bool,
    /// Spawn targets named by string literals.
    pub spawn_targets: BTreeSet<String>,
    /// A `spawn` with a computed target name exists (escape hatch: such a
    /// program may reach any defined function).
    pub dynamic_spawns: bool,
    /// Paths passed to `kv_open` as string literals.
    pub kv_open_paths: BTreeSet<String>,
    /// Paths passed to `kv_link` as string literals.
    pub kv_link_paths: BTreeSet<String>,
    /// A `kv_open`/`kv_link` with a computed path exists.
    pub dynamic_kv_paths: bool,
    /// Upper bound on interpreter fuel burned by the main thread.
    pub fuel_bound: Bound,
    /// Upper bound on `pred`/`pred_at` calls by the main thread.
    pub pred_bound: Bound,
    /// Upper bound on threads spawned (transitive).
    pub spawn_bound: Bound,
    /// Upper bound on KV files created (transitive).
    pub kv_file_bound: Bound,
}

impl Default for EffectSummary {
    fn default() -> Self {
        EffectSummary {
            uses_pred: false,
            uses_tools: false,
            tool_names: BTreeSet::new(),
            dynamic_tools: false,
            uses_ipc: false,
            uses_spawn: false,
            spawn_targets: BTreeSet::new(),
            dynamic_spawns: false,
            kv_open_paths: BTreeSet::new(),
            kv_link_paths: BTreeSet::new(),
            dynamic_kv_paths: false,
            fuel_bound: Bound::ZERO,
            pred_bound: Bound::ZERO,
            spawn_bound: Bound::ZERO,
            kv_file_bound: Bound::ZERO,
        }
    }
}

impl EffectSummary {
    /// The scheduler's initial service estimate: the static `pred` bound
    /// when finite, `None` when the program is statically unbounded.
    pub fn service_estimate(&self) -> Option<u64> {
        self.pred_bound.finite()
    }

    /// Stable multi-line rendering (pinned as a golden fixture for the
    /// shipped examples).
    pub fn render(&self) -> String {
        fn names(set: &BTreeSet<String>, dynamic: bool) -> String {
            let mut parts: Vec<String> = set.iter().map(|s| format!("{s:?}")).collect();
            if dynamic {
                parts.push("<dynamic>".to_string());
            }
            if parts.is_empty() {
                "none".to_string()
            } else {
                parts.join(", ")
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "pred: {}\n",
            if self.uses_pred { "yes" } else { "no" }
        ));
        out.push_str(&format!(
            "tools: {}\n",
            if self.uses_tools {
                names(&self.tool_names, self.dynamic_tools)
            } else {
                "none".to_string()
            }
        ));
        out.push_str(&format!(
            "ipc: {}\n",
            if self.uses_ipc { "yes" } else { "no" }
        ));
        out.push_str(&format!(
            "spawn targets: {}\n",
            if self.uses_spawn {
                names(&self.spawn_targets, self.dynamic_spawns)
            } else {
                "none".to_string()
            }
        ));
        out.push_str(&format!(
            "kv open: {}\n",
            names(&self.kv_open_paths, self.dynamic_kv_paths)
        ));
        out.push_str(&format!("kv link: {}\n", names(&self.kv_link_paths, false)));
        out.push_str(&format!("fuel: {}\n", self.fuel_bound));
        out.push_str(&format!("preds: {}\n", self.pred_bound));
        out.push_str(&format!("spawns: {}\n", self.spawn_bound));
        out.push_str(&format!("kv files: {}\n", self.kv_file_bound));
        out
    }
}

/// The verifier's verdict on one program.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// All findings, in source order.
    pub diags: Vec<Diag>,
    /// Effect set and cost bounds (pass 3).
    pub effects: EffectSummary,
}

impl VerifyReport {
    /// `true` when no [`Severity::Error`] diagnostic exists — the door
    /// admits the program.
    pub fn is_admissible(&self) -> bool {
        self.diags.iter().all(|d| d.severity != Severity::Error)
    }

    /// The first error, if any (carried in the SYMR shed payload).
    pub fn first_error(&self) -> Option<&Diag> {
        self.diags.iter().find(|d| d.severity == Severity::Error)
    }

    /// Count of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }
}

// ---------------------------------------------------------------------------
// The abstract type lattice (pass 2)
// ---------------------------------------------------------------------------

/// Flat lattice: every concrete runtime type, plus ⊤ (`Any`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Float,
    Bool,
    Str,
    List,
    Dist,
    Kv,
    Thread,
    Nil,
    Any,
}

impl Ty {
    fn join(self, other: Ty) -> Ty {
        if self == other {
            self
        } else {
            Ty::Any
        }
    }

    fn is_num(self) -> bool {
        matches!(self, Ty::Int | Ty::Float)
    }

    fn name(self) -> &'static str {
        match self {
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Bool => "bool",
            Ty::Str => "string",
            Ty::List => "list",
            Ty::Dist => "dist",
            Ty::Kv => "kv handle",
            Ty::Thread => "thread",
            Ty::Nil => "nil",
            Ty::Any => "unknown",
        }
    }
}

/// What a builtin requires of one argument. Mirrors the `as_*` coercions in
/// [`crate::builtins`]; a concrete type outside the requirement provably
/// faults at runtime.
#[derive(Debug, Clone, Copy)]
enum Req {
    Any,
    Num,
    Int,
    Str,
    List,
    ListOrStr,
    Dist,
    Kv,
    Thread,
    /// `int()` coercion: int, float, bool or string.
    IntLike,
}

impl Req {
    fn allows(self, t: Ty) -> bool {
        match self {
            Req::Any => true,
            Req::Num => t.is_num(),
            Req::Int => t == Ty::Int,
            Req::Str => t == Ty::Str,
            Req::List => t == Ty::List,
            Req::ListOrStr => matches!(t, Ty::List | Ty::Str),
            Req::Dist => t == Ty::Dist,
            Req::Kv => t == Ty::Kv,
            Req::Thread => t == Ty::Thread,
            Req::IntLike => matches!(t, Ty::Int | Ty::Float | Ty::Bool | Ty::Str),
        }
    }

    fn want(self) -> &'static str {
        match self {
            Req::Any => "any value",
            Req::Num => "a number",
            Req::Int => "an int",
            Req::Str => "a string",
            Req::List => "a list",
            Req::ListOrStr => "a list or string",
            Req::Dist => "a dist",
            Req::Kv => "a kv handle",
            Req::Thread => "a thread handle",
            Req::IntLike => "an int, float, bool or string",
        }
    }
}

/// Per-argument requirements for each builtin (empty slice: no typed args).
fn builtin_args_full(name: &str) -> &'static [Req] {
    match name {
        "len" => &[Req::ListOrStr],
        "push" => &[Req::List, Req::Any],
        "slice" => &[Req::ListOrStr, Req::Int, Req::Int],
        "contains" => &[Req::ListOrStr, Req::Any],
        "range" => &[Req::Int, Req::Int],
        "str" | "print" => &[Req::Any],
        "int" => &[Req::IntLike],
        "float" | "abs" => &[Req::Num],
        "min" | "max" => &[Req::Num, Req::Num],
        "join_str" => &[Req::List, Req::Str],
        "split" => &[Req::Str, Req::Str],
        "sample" | "argmax" | "entropy" => &[Req::Dist],
        "sample_t" | "top_p" => &[Req::Dist, Req::Num],
        "prob" | "top_k" => &[Req::Dist, Req::Int],
        "constrain" => &[Req::Dist, Req::List],
        "tokenize" | "kv_open" | "kv_unlink" | "emit" | "lookup" => &[Req::Str],
        "detokenize" | "emit_tokens" | "kv_merge" => &[Req::List],
        "pred" => &[Req::Kv, Req::List, Req::Int],
        "pred_at" => &[Req::Kv, Req::List, Req::List],
        "kv_fork" | "kv_remove" | "kv_len" | "kv_next_pos" | "kv_pin" | "kv_unpin" => &[Req::Kv],
        "kv_truncate" => &[Req::Kv, Req::Int],
        "kv_extract" => &[Req::Kv, Req::Int, Req::Int],
        "kv_link" => &[Req::Kv, Req::Str],
        "emit_token" | "sleep_ms" => &[Req::Int],
        "call_tool" => &[Req::Str, Req::Str],
        "send" => &[Req::Int, Req::Str],
        "spawn" => &[Req::Str, Req::List],
        "join" => &[Req::Thread],
        _ => &[],
    }
}

/// What a builtin returns (abstractly). `Any` where the runtime result type
/// depends on the argument values (`min`, `slice`, `lookup`, ...).
fn builtin_ret(name: &str) -> Ty {
    match name {
        "len" | "sample" | "sample_t" | "argmax" | "eos" | "kv_len" | "kv_next_pos" => Ty::Int,
        "int" => Ty::Int,
        "rand" | "float" | "prob" | "entropy" | "now_ms" => Ty::Float,
        "contains" | "join" => Ty::Bool,
        "str" | "join_str" | "args" | "detokenize" | "call_tool" => Ty::Str,
        "push" | "range" | "split" | "tokenize" | "pred" | "pred_at" | "recv" => Ty::List,
        "top_k" | "top_p" | "constrain" => Ty::Dist,
        "kv_create" | "kv_open" | "kv_fork" | "kv_extract" | "kv_merge" => Ty::Kv,
        "spawn" => Ty::Thread,
        "print" | "kv_remove" | "kv_truncate" | "kv_link" | "kv_unlink" | "kv_pin" | "kv_unpin"
        | "emit" | "emit_token" | "emit_tokens" | "send" | "sleep_ms" => Ty::Nil,
        _ => Ty::Any,
    }
}

/// KV-consuming builtins whose first argument faults if the handle's file
/// was removed (used by the V007 straight-line check).
fn consumes_kv_handle(name: &str) -> bool {
    matches!(
        name,
        "pred"
            | "pred_at"
            | "kv_fork"
            | "kv_remove"
            | "kv_len"
            | "kv_next_pos"
            | "kv_truncate"
            | "kv_extract"
            | "kv_link"
            | "kv_pin"
            | "kv_unpin"
    )
}

// ---------------------------------------------------------------------------
// Binary operator legality (mirrors Interpreter::binop exactly)
// ---------------------------------------------------------------------------

/// `true` when the interpreter provably faults applying `op` to concrete
/// types `l`, `r`. Both must be non-`Any`.
fn binop_faults(op: BinOp, l: Ty, r: Ty) -> bool {
    let num = l.is_num() && r.is_num();
    match op {
        BinOp::And | BinOp::Or => false,
        // Float compares promote; a float against a non-number faults.
        BinOp::Eq | BinOp::Ne => {
            (l == Ty::Float && !r.is_num()) || (r == Ty::Float && !l.is_num())
        }
        BinOp::Add => {
            !(num || l == Ty::Str || r == Ty::Str || (l == Ty::List && r == Ty::List))
        }
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => !num,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            !(num || (l == Ty::Str && r == Ty::Str))
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 1 + 2: resolution, arity, types — one walk per body
// ---------------------------------------------------------------------------

struct Checker<'a> {
    prog: &'a Program,
    /// First-definition arity per function name.
    fn_arity: BTreeMap<&'a str, usize>,
    diags: Vec<Diag>,
    /// When false, no diagnostics are recorded (the definitely-called
    /// discovery pre-pass reuses the walk).
    emit: bool,
    /// User functions called from definite code (collected during walks).
    definite_calls: BTreeSet<String>,
    // Per-body state:
    tyenv: BTreeMap<String, Ty>,
    scopes: Vec<BTreeSet<String>>,
    removed: BTreeSet<String>,
    loops: usize,
}

impl<'a> Checker<'a> {
    fn new(prog: &'a Program) -> Self {
        let mut fn_arity = BTreeMap::new();
        for f in &prog.functions {
            fn_arity.entry(f.name.as_str()).or_insert(f.params.len());
        }
        Checker {
            prog,
            fn_arity,
            diags: Vec::new(),
            emit: true,
            definite_calls: BTreeSet::new(),
            tyenv: BTreeMap::new(),
            scopes: Vec::new(),
            removed: BTreeSet::new(),
            loops: 0,
        }
    }

    fn diag(&mut self, code: DiagCode, definite: bool, span: Span, message: String) {
        if self.emit {
            let severity = if definite {
                Severity::Error
            } else {
                Severity::Warning
            };
            self.diags.push(Diag {
                code,
                severity,
                span,
                message,
            });
        }
    }

    // -- abstract typing helpers -------------------------------------------

    /// Flow-insensitive type of an expression under the current body's
    /// joined assignment environment.
    fn ty_of(&self, e: &Expr) -> Ty {
        match &e.kind {
            ExprKind::Int(_) => Ty::Int,
            ExprKind::Float(_) => Ty::Float,
            ExprKind::Str(_) => Ty::Str,
            ExprKind::Bool(_) => Ty::Bool,
            ExprKind::Nil => Ty::Nil,
            ExprKind::Var(n) => self.tyenv.get(n).copied().unwrap_or(Ty::Any),
            ExprKind::List(_) => Ty::List,
            ExprKind::Un(UnOp::Not, _) => Ty::Bool,
            ExprKind::Un(UnOp::Neg, inner) => match self.ty_of(inner) {
                t @ (Ty::Int | Ty::Float) => t,
                _ => Ty::Any,
            },
            ExprKind::Bin(op, l, r) => self.ty_of_bin(*op, l, r),
            ExprKind::Call(name, _) => {
                if builtins::is_builtin(name) {
                    builtin_ret(name)
                } else {
                    Ty::Any
                }
            }
            ExprKind::Index(base, _) => match self.ty_of(base) {
                Ty::Str => Ty::Str,
                _ => Ty::Any,
            },
        }
    }

    fn ty_of_bin(&self, op: BinOp, l: &Expr, r: &Expr) -> Ty {
        match op {
            BinOp::And
            | BinOp::Or
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge => Ty::Bool,
            BinOp::Add => {
                let (lt, rt) = (self.ty_of(l), self.ty_of(r));
                if lt == Ty::Str || rt == Ty::Str {
                    Ty::Str
                } else if lt == Ty::List && rt == Ty::List {
                    Ty::List
                } else if lt == Ty::Int && rt == Ty::Int {
                    Ty::Int
                } else if lt.is_num() && rt.is_num() {
                    Ty::Float
                } else {
                    Ty::Any
                }
            }
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let (lt, rt) = (self.ty_of(l), self.ty_of(r));
                if lt == Ty::Int && rt == Ty::Int {
                    Ty::Int
                } else if lt.is_num() && rt.is_num() {
                    Ty::Float
                } else {
                    Ty::Any
                }
            }
        }
    }

    /// Builds the body's flow-insensitive type environment: every
    /// assignment's type joined per name, iterated to a fixpoint. Shadowing
    /// is deliberately ignored — joins only widen toward ⊤, which keeps the
    /// result sound.
    fn build_tyenv(&mut self, params: &[String], body: &[Stmt]) {
        self.tyenv = params.iter().map(|p| (p.clone(), Ty::Any)).collect();
        loop {
            let mut changed = false;
            self.collect_block(body, &mut changed);
            if !changed {
                break;
            }
        }
    }

    fn join_into(&mut self, name: &str, t: Ty, changed: &mut bool) {
        let cur = self.tyenv.get(name).copied();
        let next = match cur {
            Some(old) => old.join(t),
            None => t,
        };
        if cur != Some(next) {
            self.tyenv.insert(name.to_string(), next);
            *changed = true;
        }
    }

    fn collect_block(&mut self, stmts: &[Stmt], changed: &mut bool) {
        for s in stmts {
            match &s.kind {
                StmtKind::Let(n, e) | StmtKind::Assign(n, e) => {
                    let t = self.ty_of(e);
                    self.join_into(n, t, changed);
                }
                StmtKind::If(_, t, e) => {
                    self.collect_block(t, changed);
                    self.collect_block(e, changed);
                }
                StmtKind::While(_, b) => self.collect_block(b, changed),
                StmtKind::For(v, it, b) => {
                    let t = self.elem_ty(it);
                    self.join_into(v, t, changed);
                    self.collect_block(b, changed);
                }
                StmtKind::IndexAssign(..)
                | StmtKind::Break
                | StmtKind::Continue
                | StmtKind::Return(_)
                | StmtKind::Expr(_) => {}
            }
        }
    }

    /// Element type for `for x in <iter>`.
    fn elem_ty(&self, iter: &Expr) -> Ty {
        match &iter.kind {
            ExprKind::List(items) => {
                let mut t: Option<Ty> = None;
                for e in items {
                    let et = self.ty_of(e);
                    t = Some(match t {
                        Some(prev) => prev.join(et),
                        None => et,
                    });
                }
                t.unwrap_or(Ty::Any)
            }
            ExprKind::Call(name, _) if name == "range" => Ty::Int,
            _ => Ty::Any,
        }
    }

    // -- the checking walk --------------------------------------------------

    /// Checks one body (top level or a function). `definite` means the body
    /// is on the guaranteed execution path.
    fn check_body(&mut self, params: &[String], body: &[Stmt], definite: bool) {
        self.build_tyenv(params, body);
        self.scopes = vec![params.iter().cloned().collect()];
        self.removed.clear();
        self.loops = 0;
        self.check_block(body, definite);
    }

    fn declared(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name))
    }

    fn declare(&mut self, name: &str) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_string());
        }
        self.removed.remove(name);
    }

    fn check_block(&mut self, stmts: &[Stmt], mut definite: bool) {
        for s in stmts {
            definite = self.check_stmt(s, definite);
        }
    }

    /// Checks one statement; returns whether *subsequent* statements in the
    /// same block remain on the guaranteed path.
    fn check_stmt(&mut self, s: &Stmt, definite: bool) -> bool {
        match &s.kind {
            StmtKind::Let(name, e) => {
                self.check_expr(e, definite);
                self.declare(name);
                definite
            }
            StmtKind::Assign(name, e) => {
                self.check_expr(e, definite);
                if !self.declared(name) {
                    self.diag(
                        DiagCode::UndefinedVar,
                        definite,
                        s.span,
                        format!("assignment to undeclared variable `{name}`"),
                    );
                }
                self.declare(name);
                definite
            }
            StmtKind::IndexAssign(name, idx, e) => {
                self.check_expr(idx, definite);
                self.check_expr(e, definite);
                if !self.declared(name) {
                    self.diag(
                        DiagCode::UndefinedVar,
                        definite,
                        s.span,
                        format!("index-assignment to undeclared variable `{name}`"),
                    );
                    self.declare(name);
                }
                let base = self.tyenv.get(name).copied().unwrap_or(Ty::Any);
                if base != Ty::Any && base != Ty::List {
                    self.diag(
                        DiagCode::TypeMisuse,
                        definite,
                        s.span,
                        format!("cannot index-assign into {} `{name}`", base.name()),
                    );
                }
                let it = self.ty_of(idx);
                if it != Ty::Any && it != Ty::Int {
                    self.diag(
                        DiagCode::TypeMisuse,
                        definite,
                        idx.span,
                        format!("list index must be int, got {}", it.name()),
                    );
                }
                definite
            }
            StmtKind::If(cond, then, els) => {
                self.check_expr(cond, definite);
                let lit = literal_bool(cond);
                self.scopes.push(BTreeSet::new());
                self.check_block(then, definite && lit == Some(true));
                self.scopes.pop();
                self.scopes.push(BTreeSet::new());
                self.check_block(els, definite && lit == Some(false));
                self.scopes.pop();
                // A branch may have removed KV handles or diverged.
                self.removed.clear();
                let diverges = match lit {
                    Some(true) => block_diverges(then),
                    Some(false) => block_diverges(els),
                    None => block_diverges(then) || block_diverges(els),
                };
                definite && !diverges
            }
            StmtKind::While(cond, body) => {
                self.check_expr(cond, definite);
                let lit = literal_bool(cond);
                self.loops += 1;
                self.scopes.push(BTreeSet::new());
                // Only a literal-true loop definitely runs its first
                // iteration.
                self.check_block(body, definite && lit == Some(true));
                self.scopes.pop();
                self.loops -= 1;
                self.removed.clear();
                definite && !block_returns(body)
            }
            StmtKind::For(var, iter, body) => {
                self.check_expr(iter, definite);
                let it = self.ty_of(iter);
                if it != Ty::Any && it != Ty::List {
                    self.diag(
                        DiagCode::TypeMisuse,
                        definite,
                        iter.span,
                        format!("for-loop needs a list, got {}", it.name()),
                    );
                }
                let first_runs = statically_nonempty(iter);
                self.loops += 1;
                self.scopes.push(BTreeSet::new());
                self.declare(var);
                self.check_block(body, definite && first_runs);
                self.scopes.pop();
                self.loops -= 1;
                self.removed.clear();
                definite && !block_returns(body)
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loops == 0 {
                    let what = if matches!(s.kind, StmtKind::Break) {
                        "break"
                    } else {
                        "continue"
                    };
                    self.diag(
                        DiagCode::StrayControlFlow,
                        definite,
                        s.span,
                        format!("`{what}` outside a loop"),
                    );
                }
                // Anything after is dead code.
                false
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.check_expr(e, definite);
                }
                false
            }
            StmtKind::Expr(e) => {
                self.check_expr(e, definite);
                definite
            }
        }
    }

    fn check_expr(&mut self, e: &Expr, definite: bool) {
        match &e.kind {
            ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Nil => {}
            ExprKind::Var(name) => {
                if !self.declared(name) {
                    self.diag(
                        DiagCode::UndefinedVar,
                        definite,
                        e.span,
                        format!("undefined variable `{name}`"),
                    );
                }
            }
            ExprKind::List(items) => {
                for it in items {
                    self.check_expr(it, definite);
                }
            }
            ExprKind::Un(op, inner) => {
                self.check_expr(inner, definite);
                if *op == UnOp::Neg {
                    let t = self.ty_of(inner);
                    if t != Ty::Any && !t.is_num() {
                        self.diag(
                            DiagCode::TypeMisuse,
                            definite,
                            e.span,
                            format!("cannot negate {}", t.name()),
                        );
                    }
                }
            }
            ExprKind::Bin(op, l, r) => {
                self.check_expr(l, definite);
                // The right side of a short-circuit operator may never run.
                let r_definite = if matches!(op, BinOp::And | BinOp::Or) {
                    false
                } else {
                    definite
                };
                self.check_expr(r, r_definite);
                let (lt, rt) = (self.ty_of(l), self.ty_of(r));
                if lt != Ty::Any && rt != Ty::Any && binop_faults(*op, lt, rt) {
                    self.diag(
                        DiagCode::TypeMisuse,
                        definite,
                        e.span,
                        format!(
                            "cannot apply {op:?} to {} and {}",
                            lt.name(),
                            rt.name()
                        ),
                    );
                }
            }
            ExprKind::Index(base, idx) => {
                self.check_expr(base, definite);
                self.check_expr(idx, definite);
                let bt = self.ty_of(base);
                if bt != Ty::Any && bt != Ty::List && bt != Ty::Str {
                    self.diag(
                        DiagCode::TypeMisuse,
                        definite,
                        e.span,
                        format!("cannot index {}", bt.name()),
                    );
                }
                let it = self.ty_of(idx);
                if it != Ty::Any && it != Ty::Int {
                    self.diag(
                        DiagCode::TypeMisuse,
                        definite,
                        idx.span,
                        format!("index must be int, got {}", it.name()),
                    );
                }
            }
            ExprKind::Call(name, call_args) => {
                for a in call_args {
                    self.check_expr(a, definite);
                }
                if let Some(want) = builtins::arity_of(name) {
                    self.check_builtin_call(name, call_args, want, e.span, definite);
                } else if let Some(&want) = self.fn_arity.get(name.as_str()) {
                    if call_args.len() != want {
                        self.diag(
                            DiagCode::BadArity,
                            definite,
                            e.span,
                            format!("{name} expects {want} args, got {}", call_args.len()),
                        );
                    } else if definite {
                        self.definite_calls.insert(name.clone());
                    }
                } else {
                    self.diag(
                        DiagCode::UndefinedFn,
                        definite,
                        e.span,
                        format!("call to undefined function `{name}`"),
                    );
                }
            }
        }
    }

    fn check_builtin_call(
        &mut self,
        name: &str,
        call_args: &[Expr],
        want: usize,
        span: Span,
        definite: bool,
    ) {
        if call_args.len() != want {
            self.diag(
                DiagCode::BadArity,
                definite,
                span,
                format!("{name} expects {want} args, got {}", call_args.len()),
            );
            return;
        }
        for (req, arg) in builtin_args_full(name).iter().zip(call_args) {
            let t = self.ty_of(arg);
            if t != Ty::Any && !req.allows(t) {
                self.diag(
                    DiagCode::TypeMisuse,
                    definite,
                    arg.span,
                    format!("{name} needs {}, got {}", req.want(), t.name()),
                );
            }
        }
        // `contains` on a string needs a string needle.
        if name == "contains" {
            if let (Some(a), Some(b)) = (call_args.first(), call_args.get(1)) {
                let (at, bt) = (self.ty_of(a), self.ty_of(b));
                if at == Ty::Str && bt != Ty::Any && bt != Ty::Str {
                    self.diag(
                        DiagCode::TypeMisuse,
                        definite,
                        b.span,
                        format!("contains on a string needs a string, got {}", bt.name()),
                    );
                }
            }
        }
        // V007: straight-line use of a removed KV binding.
        if consumes_kv_handle(name) {
            if let Some(Expr {
                kind: ExprKind::Var(v),
                ..
            }) = call_args.first()
            {
                if self.removed.contains(v) {
                    self.diag(
                        DiagCode::UseAfterRemove,
                        definite,
                        span,
                        format!("`{v}` used after kv_remove"),
                    );
                }
            }
        }
        if name == "kv_remove" {
            if let Some(Expr {
                kind: ExprKind::Var(v),
                ..
            }) = call_args.first()
            {
                self.removed.insert(v.clone());
            }
        }
        // V004: spawn target resolution (the spawn call itself faults in
        // the *parent* when the target is not a defined function).
        if name == "spawn" {
            if let Some(Expr {
                kind: ExprKind::Str(target),
                ..
            }) = call_args.first()
            {
                if self.prog.function(target).is_none() {
                    self.diag(
                        DiagCode::BadSpawnTarget,
                        definite,
                        span,
                        format!("spawn target `{target}` is not a defined function"),
                    );
                } else if let Some(Expr {
                    kind: ExprKind::List(spawn_args),
                    ..
                }) = call_args.get(1)
                {
                    // Arity mismatch faults inside the spawned thread, and
                    // thread faults never fail the parent: warning only.
                    if let Some(&fwant) = self.fn_arity.get(target.as_str()) {
                        if spawn_args.len() != fwant {
                            self.diag(
                                DiagCode::BadArity,
                                false,
                                span,
                                format!(
                                    "spawn of `{target}` passes {} args, expects {fwant}",
                                    spawn_args.len()
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// `true` when the condition is a literal `true`/`false`.
fn literal_bool(e: &Expr) -> Option<bool> {
    match e.kind {
        ExprKind::Bool(b) => Some(b),
        _ => None,
    }
}

/// `true` when `for x in <iter>` definitely runs at least one iteration.
fn statically_nonempty(iter: &Expr) -> bool {
    match &iter.kind {
        ExprKind::List(items) => !items.is_empty(),
        ExprKind::Call(name, call_args) if name == "range" => {
            match (call_args.first(), call_args.get(1)) {
                (
                    Some(Expr {
                        kind: ExprKind::Int(a),
                        ..
                    }),
                    Some(Expr {
                        kind: ExprKind::Int(b),
                        ..
                    }),
                ) => b > a,
                _ => false,
            }
        }
        _ => false,
    }
}

/// Static trip count of a `for` iterator, when known.
fn static_trip(iter: &Expr) -> Option<u64> {
    match &iter.kind {
        ExprKind::List(items) => Some(items.len() as u64),
        ExprKind::Call(name, call_args) if name == "range" => {
            match (call_args.first(), call_args.get(1)) {
                (
                    Some(Expr {
                        kind: ExprKind::Int(a),
                        ..
                    }),
                    Some(Expr {
                        kind: ExprKind::Int(b),
                        ..
                    }),
                ) => Some(b.saturating_sub(*a).max(0) as u64),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Any `return` anywhere in the block (escapes an enclosing loop).
fn block_returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::If(_, t, e) => block_returns(t) || block_returns(e),
        StmtKind::While(_, b) | StmtKind::For(_, _, b) => block_returns(b),
        _ => false,
    })
}

/// Any `return`/`break`/`continue` anywhere in the block — after executing
/// such a block, following statements are no longer guaranteed to run.
fn block_diverges(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue => true,
        StmtKind::If(_, t, e) => block_diverges(t) || block_diverges(e),
        StmtKind::While(_, b) | StmtKind::For(_, _, b) => block_diverges(b),
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Pass 3: effects & cost
// ---------------------------------------------------------------------------

/// Per-body cost vector, all conservative upper bounds.
#[derive(Debug, Clone, Copy)]
struct Cost {
    fuel: Bound,
    preds: Bound,
    spawns: Bound,
    kv_files: Bound,
}

impl Cost {
    const ZERO: Cost = Cost {
        fuel: Bound::ZERO,
        preds: Bound::ZERO,
        spawns: Bound::ZERO,
        kv_files: Bound::ZERO,
    };

    const UNBOUNDED: Cost = Cost {
        fuel: Bound::Unbounded,
        preds: Bound::Unbounded,
        spawns: Bound::Unbounded,
        kv_files: Bound::Unbounded,
    };

    fn fuel(n: u64) -> Cost {
        Cost {
            fuel: Bound::Finite(n),
            ..Cost::ZERO
        }
    }

    fn add(self, o: Cost) -> Cost {
        Cost {
            fuel: self.fuel + o.fuel,
            preds: self.preds + o.preds,
            spawns: self.spawns + o.spawns,
            kv_files: self.kv_files + o.kv_files,
        }
    }

    fn max(self, o: Cost) -> Cost {
        Cost {
            fuel: self.fuel.max(o.fuel),
            preds: self.preds.max(o.preds),
            spawns: self.spawns.max(o.spawns),
            kv_files: self.kv_files.max(o.kv_files),
        }
    }

    fn mul(self, trips: Bound) -> Cost {
        Cost {
            fuel: self.fuel * trips,
            preds: self.preds * trips,
            spawns: self.spawns * trips,
            kv_files: self.kv_files * trips,
        }
    }
}

struct CostPass<'a> {
    prog: &'a Program,
    cache: BTreeMap<String, Cost>,
    stack: Vec<String>,
    fx: EffectSummary,
    /// Variables of the current body that are let-bound exactly once to a
    /// statically-sized iterable and never rebound: their `for` trip count
    /// is known. Sound because values have copy semantics and
    /// index-assignment preserves list length.
    trips: BTreeMap<String, u64>,
}

/// Computes the single-binding trip map for one body. A name qualifies if
/// it has exactly one `let` in the body, is not a parameter or `for`
/// variable, is never re-assigned, and its initializer has a static trip
/// count.
fn body_trips(params: &[String], body: &[Stmt]) -> BTreeMap<String, u64> {
    #[derive(Default)]
    struct Counts {
        lets: u32,
        other_binds: u32,
        trip: Option<u64>,
    }
    fn scan(stmts: &[Stmt], counts: &mut BTreeMap<String, Counts>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Let(n, e) => {
                    let c = counts.entry(n.clone()).or_default();
                    c.lets += 1;
                    if c.lets == 1 {
                        c.trip = static_trip(e);
                    }
                }
                StmtKind::Assign(n, _) => {
                    counts.entry(n.clone()).or_default().other_binds += 1;
                }
                StmtKind::If(_, t, e) => {
                    scan(t, counts);
                    scan(e, counts);
                }
                StmtKind::While(_, b) => scan(b, counts),
                StmtKind::For(v, _, b) => {
                    counts.entry(v.clone()).or_default().other_binds += 1;
                    scan(b, counts);
                }
                StmtKind::IndexAssign(..)
                | StmtKind::Break
                | StmtKind::Continue
                | StmtKind::Return(_)
                | StmtKind::Expr(_) => {}
            }
        }
    }
    let mut counts: BTreeMap<String, Counts> = BTreeMap::new();
    for p in params {
        counts.entry(p.clone()).or_default().other_binds += 1;
    }
    scan(body, &mut counts);
    counts
        .into_iter()
        .filter_map(|(n, c)| match (c.lets, c.other_binds, c.trip) {
            (1, 0, Some(t)) => Some((n, t)),
            _ => None,
        })
        .collect()
}

impl<'a> CostPass<'a> {
    fn new(prog: &'a Program) -> Self {
        CostPass {
            prog,
            cache: BTreeMap::new(),
            stack: Vec::new(),
            fx: EffectSummary::default(),
            trips: BTreeMap::new(),
        }
    }

    fn run(mut self) -> EffectSummary {
        let prog = self.prog;
        self.trips = body_trips(&[], &prog.top);
        let top = self.block_cost(&prog.top);
        self.fx.fuel_bound = top.fuel;
        self.fx.pred_bound = top.preds;
        self.fx.spawn_bound = top.spawns;
        self.fx.kv_file_bound = top.kv_files;
        if self.fx.dynamic_spawns {
            // A computed spawn target may reach any function: fold every
            // function's effects in and give up on spawn/KV bounds.
            let names: Vec<String> = self.prog.functions.iter().map(|f| f.name.clone()).collect();
            for n in names {
                let _ = self.fn_cost(&n);
            }
            self.fx.spawn_bound = Bound::Unbounded;
            self.fx.kv_file_bound = Bound::Unbounded;
        }
        self.fx
    }

    fn fn_cost(&mut self, name: &str) -> Cost {
        if let Some(c) = self.cache.get(name) {
            return *c;
        }
        if self.stack.iter().any(|n| n == name) {
            return Cost::UNBOUNDED;
        }
        let prog = self.prog;
        let Some(def) = prog.function(name) else {
            return Cost::ZERO;
        };
        self.stack.push(name.to_string());
        let saved = std::mem::replace(&mut self.trips, body_trips(&def.params, &def.body));
        let c = self.block_cost(&def.body);
        self.trips = saved;
        self.stack.pop();
        self.cache.insert(name.to_string(), c);
        c
    }

    fn block_cost(&mut self, stmts: &[Stmt]) -> Cost {
        let mut total = Cost::ZERO;
        for s in stmts {
            total = total.add(self.stmt_cost(s));
        }
        total
    }

    fn stmt_cost(&mut self, s: &Stmt) -> Cost {
        // Every statement burns one fuel on entry.
        let base = Cost::fuel(1);
        match &s.kind {
            StmtKind::Let(_, e) | StmtKind::Assign(_, e) | StmtKind::Expr(e) => {
                base.add(self.expr_cost(e))
            }
            StmtKind::IndexAssign(_, idx, e) => {
                base.add(self.expr_cost(idx)).add(self.expr_cost(e))
            }
            StmtKind::Return(Some(e)) => base.add(self.expr_cost(e)),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => base,
            StmtKind::If(c, t, e) => {
                let branches = match literal_bool(c) {
                    Some(true) => self.block_cost(t),
                    Some(false) => self.block_cost(e),
                    None => {
                        let tc = self.block_cost(t);
                        let ec = self.block_cost(e);
                        tc.max(ec)
                    }
                };
                base.add(self.expr_cost(c)).add(branches)
            }
            StmtKind::While(c, b) => {
                let cond = self.expr_cost(c);
                let body = self.block_cost(b);
                if literal_bool(c) == Some(false) {
                    // One iteration-burn plus one condition evaluation.
                    base.add(Cost::fuel(1)).add(cond)
                } else {
                    let per_iter = cond.add(body).add(Cost::fuel(1));
                    base.add(per_iter.mul(Bound::Unbounded))
                }
            }
            StmtKind::For(_, it, b) => {
                let iter = self.expr_cost(it);
                let body = self.block_cost(b);
                let per_iter = body.add(Cost::fuel(1));
                let known = static_trip(it).or_else(|| match &it.kind {
                    ExprKind::Var(n) => self.trips.get(n).copied(),
                    _ => None,
                });
                let trips = match known {
                    Some(n) => Bound::Finite(n),
                    None => Bound::Unbounded,
                };
                base.add(iter).add(per_iter.mul(trips))
            }
        }
    }

    fn expr_cost(&mut self, e: &Expr) -> Cost {
        // Every evaluated node burns one fuel.
        let base = Cost::fuel(1);
        match &e.kind {
            ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Nil
            | ExprKind::Var(_) => base,
            ExprKind::List(items) => {
                let mut c = base;
                for it in items {
                    c = c.add(self.expr_cost(it));
                }
                c
            }
            ExprKind::Un(_, inner) => base.add(self.expr_cost(inner)),
            ExprKind::Bin(_, l, r) => base.add(self.expr_cost(l)).add(self.expr_cost(r)),
            ExprKind::Index(b, i) => base.add(self.expr_cost(b)).add(self.expr_cost(i)),
            ExprKind::Call(name, call_args) => {
                let mut c = base;
                for a in call_args {
                    c = c.add(self.expr_cost(a));
                }
                if builtins::is_builtin(name) {
                    c.add(self.builtin_cost(name, call_args))
                } else {
                    c.add(self.fn_cost(name))
                }
            }
        }
    }

    fn builtin_cost(&mut self, name: &str, call_args: &[Expr]) -> Cost {
        match name {
            "pred" | "pred_at" => {
                self.fx.uses_pred = true;
                Cost {
                    preds: Bound::Finite(1),
                    ..Cost::ZERO
                }
            }
            "call_tool" => {
                self.fx.uses_tools = true;
                match call_args.first() {
                    Some(Expr {
                        kind: ExprKind::Str(tool),
                        ..
                    }) => {
                        self.fx.tool_names.insert(tool.clone());
                    }
                    _ => self.fx.dynamic_tools = true,
                }
                Cost::ZERO
            }
            "send" | "recv" | "lookup" => {
                self.fx.uses_ipc = true;
                Cost::ZERO
            }
            "kv_create" | "kv_fork" | "kv_extract" | "kv_merge" => Cost {
                kv_files: Bound::Finite(1),
                ..Cost::ZERO
            },
            "kv_open" => {
                match call_args.first() {
                    Some(Expr {
                        kind: ExprKind::Str(path),
                        ..
                    }) => {
                        self.fx.kv_open_paths.insert(path.clone());
                    }
                    _ => self.fx.dynamic_kv_paths = true,
                }
                Cost::ZERO
            }
            "kv_link" => {
                match call_args.get(1) {
                    Some(Expr {
                        kind: ExprKind::Str(path),
                        ..
                    }) => {
                        self.fx.kv_link_paths.insert(path.clone());
                    }
                    _ => self.fx.dynamic_kv_paths = true,
                }
                Cost::ZERO
            }
            "spawn" => {
                self.fx.uses_spawn = true;
                let one = Cost {
                    spawns: Bound::Finite(1),
                    ..Cost::ZERO
                };
                match call_args.first() {
                    Some(Expr {
                        kind: ExprKind::Str(target),
                        ..
                    }) => {
                        self.fx.spawn_targets.insert(target.clone());
                        // Fuel and preds run on the child's own budget;
                        // spawn and KV-file creation are global.
                        let child = self.fn_cost(target);
                        one.add(Cost {
                            spawns: child.spawns,
                            kv_files: child.kv_files,
                            ..Cost::ZERO
                        })
                    }
                    _ => {
                        self.fx.dynamic_spawns = true;
                        Cost {
                            spawns: Bound::Unbounded,
                            kv_files: Bound::Unbounded,
                            ..Cost::ZERO
                        }
                    }
                }
            }
            _ => Cost::ZERO,
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Verifies a parsed program: all three passes, diagnostics in source order.
pub fn verify(prog: &Program) -> VerifyReport {
    let mut checker = Checker::new(prog);

    // Discovery pre-pass: find functions *definitely called* from definite
    // code, to a fixpoint, with diagnostics suppressed.
    checker.emit = false;
    checker.check_body(&[], &prog.top, true);
    let mut marked: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = checker.definite_calls.iter().cloned().collect();
    while let Some(name) = queue.pop() {
        if !marked.insert(name.clone()) {
            continue;
        }
        if let Some(def) = prog.function(&name) {
            checker.definite_calls.clear();
            checker.check_body(&def.params, &def.body, true);
            for callee in checker.definite_calls.iter() {
                if !marked.contains(callee) {
                    queue.push(callee.clone());
                }
            }
        }
    }

    // Real pass: top level is definite; a function body is definite iff the
    // function is definitely called (spawned bodies never are — thread
    // faults don't fail the parent program).
    checker.emit = true;
    checker.definite_calls.clear();
    checker.check_body(&[], &prog.top, true);
    let mut seen_fns: BTreeSet<&str> = BTreeSet::new();
    for def in &prog.functions {
        if builtins::is_builtin(&def.name) {
            checker.diags.push(Diag {
                code: DiagCode::ShadowedBuiltin,
                severity: Severity::Warning,
                span: def.span,
                message: format!("function `{}` is shadowed by the builtin", def.name),
            });
        }
        let duplicate = !seen_fns.insert(def.name.as_str());
        if duplicate {
            checker.diags.push(Diag {
                code: DiagCode::DuplicateFn,
                severity: Severity::Warning,
                span: def.span,
                message: format!("duplicate definition of `{}` (the first wins)", def.name),
            });
        }
        let definite = !duplicate && marked.contains(&def.name);
        checker.check_body(&def.params, &def.body, definite);
    }

    let mut diags = checker.diags;
    diags.sort_by_key(|d| (d.span.line, d.span.col, d.code));

    let effects = CostPass::new(prog).run();
    VerifyReport { diags, effects }
}

/// Parses then verifies source text.
pub fn verify_source(src: &str) -> Result<VerifyReport, LipError> {
    let prog = parse(src)?;
    Ok(verify(&prog))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vet(src: &str) -> VerifyReport {
        match verify_source(src) {
            Ok(r) => r,
            Err(e) => unreachable!("parse failed: {e}"),
        }
    }

    #[test]
    fn clean_program_is_admissible() {
        let r = vet("let x = 1; let y = x + 2; print(str(y));");
        assert!(r.is_admissible(), "{:?}", r.diags);
        assert!(r.diags.is_empty());
        assert_eq!(r.effects.pred_bound, Bound::Finite(0));
        assert!(r.effects.fuel_bound.finite().is_some());
    }

    #[test]
    fn undefined_variable_is_an_error() {
        let r = vet("let x = y + 1;");
        let first = r.first_error().map(|d| d.code);
        assert_eq!(first, Some(DiagCode::UndefinedVar));
    }

    #[test]
    fn dead_branch_demotes_to_warning() {
        let r = vet("if (false) { let x = y + 1; }");
        assert!(r.is_admissible(), "{:?}", r.diags);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].severity, Severity::Warning);
    }

    #[test]
    fn bounds_multiply_through_static_loops() {
        let r = vet("let kv = kv_create();\nfor i in range(0, 4) { let d = pred(kv, [i], i); }");
        assert!(r.is_admissible(), "{:?}", r.diags);
        assert_eq!(r.effects.pred_bound, Bound::Finite(4));
        assert!(r.effects.fuel_bound.finite().is_some());
    }

    #[test]
    fn while_loop_is_unbounded() {
        let r = vet("let n = 0; while (n < 3) { n = n + 1; }");
        assert!(r.is_admissible(), "{:?}", r.diags);
        assert_eq!(r.effects.fuel_bound, Bound::Unbounded);
    }
}
