//! Builtin functions: the standard library plus the system-call surface.

use std::sync::Arc;

use symphony_model::Dist;

use crate::error::{RuntimeError, RuntimeErrorKind, Span};
use crate::host::Host;
use crate::interp::Interpreter;
use crate::value::Value;

/// All builtin names, used both for dispatch and to reject shadowing.
const NAMES: &[&str] = &[
    // Core library.
    "len", "push", "slice", "contains", "range", "str", "int", "float", "abs", "min", "max",
    "join_str", "split", "print", "rand",
    // Distribution operations.
    "sample", "sample_t", "argmax", "prob", "top_k", "top_p", "constrain", "entropy",
    // System calls.
    "args", "eos", "tokenize", "detokenize", "pred", "pred_at", "kv_create", "kv_open",
    "kv_fork", "kv_remove", "kv_len", "kv_next_pos", "kv_truncate", "kv_extract", "kv_merge",
    "kv_link", "kv_unlink", "kv_pin", "kv_unpin", "emit", "emit_token", "emit_tokens",
    "call_tool", "send", "recv", "lookup", "sleep_ms", "now_ms", "spawn", "join",
];

/// Returns `true` if `name` is a builtin.
pub fn is_builtin(name: &str) -> bool {
    NAMES.contains(&name)
}

/// The fixed argument count of a builtin, `None` for non-builtins.
///
/// Single source of truth shared by [`call`] (runtime enforcement via
/// [`RuntimeErrorKind::BadArity`]) and the static verifier
/// (`crate::verify` pass 1), so the two can never disagree.
pub fn arity_of(name: &str) -> Option<usize> {
    Some(match name {
        "rand" | "args" | "eos" | "kv_create" | "recv" | "now_ms" => 0,
        "len" | "str" | "int" | "float" | "abs" | "print" | "sample" | "argmax" | "entropy"
        | "tokenize" | "detokenize" | "kv_open" | "kv_fork" | "kv_remove" | "kv_len"
        | "kv_next_pos" | "kv_merge" | "kv_unlink" | "kv_pin" | "kv_unpin" | "emit"
        | "emit_token" | "emit_tokens" | "lookup" | "sleep_ms" | "join" => 1,
        "push" | "contains" | "range" | "min" | "max" | "join_str" | "split" | "sample_t"
        | "prob" | "top_k" | "top_p" | "constrain" | "kv_truncate" | "kv_link" | "call_tool"
        | "send" | "spawn" => 2,
        "slice" | "pred" | "pred_at" | "kv_extract" => 3,
        _ => return None,
    })
}

fn err(kind: RuntimeErrorKind, span: Span) -> RuntimeError {
    RuntimeError::new(kind, span)
}

fn type_err(msg: impl Into<String>, span: Span) -> RuntimeError {
    err(RuntimeErrorKind::Type(msg.into()), span)
}

fn arity(name: &str, want: usize, got: usize, span: Span) -> Result<(), RuntimeError> {
    if want == got {
        Ok(())
    } else {
        Err(err(
            RuntimeErrorKind::BadArity(format!("{name} expects {want} args, got {got}")),
            span,
        ))
    }
}

fn as_int(v: &Value, what: &str, span: Span) -> Result<i64, RuntimeError> {
    match v {
        Value::Int(i) => Ok(*i),
        other => Err(type_err(format!("{what} must be int, got {}", other.type_name()), span)),
    }
}

fn as_f64(v: &Value, what: &str, span: Span) -> Result<f64, RuntimeError> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        other => Err(type_err(
            format!("{what} must be numeric, got {}", other.type_name()),
            span,
        )),
    }
}

fn as_str<'a>(v: &'a Value, what: &str, span: Span) -> Result<&'a str, RuntimeError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(type_err(
            format!("{what} must be string, got {}", other.type_name()),
            span,
        )),
    }
}

fn as_list<'a>(v: &'a Value, what: &str, span: Span) -> Result<&'a [Value], RuntimeError> {
    match v {
        Value::List(l) => Ok(l),
        other => Err(type_err(
            format!("{what} must be list, got {}", other.type_name()),
            span,
        )),
    }
}

fn as_dist<'a>(v: &'a Value, what: &str, span: Span) -> Result<&'a Dist, RuntimeError> {
    match v {
        Value::Dist(d) => Ok(d),
        other => Err(type_err(
            format!("{what} must be dist, got {}", other.type_name()),
            span,
        )),
    }
}

fn as_handle(v: &Value, what: &str, span: Span) -> Result<u64, RuntimeError> {
    match v {
        Value::Handle(h) => Ok(*h),
        other => Err(type_err(
            format!("{what} must be a kv handle, got {}", other.type_name()),
            span,
        )),
    }
}

fn as_token(v: &Value, span: Span) -> Result<u32, RuntimeError> {
    let i = as_int(v, "token", span)?;
    u32::try_from(i).map_err(|_| type_err(format!("token {i} out of range"), span))
}

fn token_list(v: &Value, span: Span) -> Result<Vec<u32>, RuntimeError> {
    as_list(v, "tokens", span)?
        .iter()
        .map(|t| as_token(t, span))
        .collect()
}

fn host_err(span: Span) -> impl Fn(String) -> RuntimeError {
    move |m| err(RuntimeErrorKind::Host(m), span)
}

/// Invokes a builtin. Callers must check [`is_builtin`] first.
///
/// # Panics
///
/// Panics if `name` is not a builtin.
pub fn call(
    interp: &mut Interpreter,
    host: &mut dyn Host,
    name: &str,
    args: Vec<Value>,
    span: Span,
) -> Result<Value, RuntimeError> {
    let he = host_err(span);
    match name {
        // ---- core library --------------------------------------------------
        "len" => {
            arity(name, 1, args.len(), span)?;
            match &args[0] {
                Value::List(l) => Ok(Value::Int(l.len() as i64)),
                Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                other => Err(type_err(format!("len of {}", other.type_name()), span)),
            }
        }
        "push" => {
            arity(name, 2, args.len(), span)?;
            let mut args = args;
            let v = args.pop().expect("two args");
            match args.pop().expect("two args") {
                Value::List(mut l) => {
                    l.push(v);
                    interp.charge(1 + l.len() as u64, span)?;
                    Ok(Value::List(l))
                }
                other => Err(type_err(format!("push into {}", other.type_name()), span)),
            }
        }
        "slice" => {
            arity(name, 3, args.len(), span)?;
            let a = as_int(&args[1], "start", span)?;
            let b = as_int(&args[2], "end", span)?;
            match &args[0] {
                Value::List(l) => {
                    let n = l.len() as i64;
                    if a < 0 || b < a || b > n {
                        return Err(err(RuntimeErrorKind::IndexOutOfBounds(b, l.len()), span));
                    }
                    let out = l[a as usize..b as usize].to_vec();
                    interp.charge(1 + out.len() as u64, span)?;
                    Ok(Value::List(out))
                }
                Value::Str(s) => {
                    let n = s.len() as i64;
                    if a < 0 || b < a || b > n {
                        return Err(err(RuntimeErrorKind::IndexOutOfBounds(b, s.len()), span));
                    }
                    Ok(Value::Str(s[a as usize..b as usize].to_string()))
                }
                other => Err(type_err(format!("slice of {}", other.type_name()), span)),
            }
        }
        "contains" => {
            arity(name, 2, args.len(), span)?;
            match (&args[0], &args[1]) {
                (Value::List(l), v) => Ok(Value::Bool(l.contains(v))),
                (Value::Str(s), Value::Str(sub)) => Ok(Value::Bool(s.contains(sub.as_str()))),
                (a, _) => Err(type_err(format!("contains on {}", a.type_name()), span)),
            }
        }
        "range" => {
            arity(name, 2, args.len(), span)?;
            let a = as_int(&args[0], "start", span)?;
            let b = as_int(&args[1], "end", span)?;
            let n = (b - a).max(0) as u64;
            interp.charge(1 + n, span)?;
            Ok(Value::List((a..b).map(Value::Int).collect()))
        }
        "str" => {
            arity(name, 1, args.len(), span)?;
            let s = args[0].to_string();
            interp.charge(1 + s.len() as u64 / 8, span)?;
            Ok(Value::Str(s))
        }
        "int" => {
            arity(name, 1, args.len(), span)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Int(*f as i64)),
                Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| type_err(format!("cannot parse {s:?} as int"), span)),
                other => Err(type_err(format!("int of {}", other.type_name()), span)),
            }
        }
        "float" => {
            arity(name, 1, args.len(), span)?;
            Ok(Value::Float(as_f64(&args[0], "value", span)?))
        }
        "abs" => {
            arity(name, 1, args.len(), span)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(type_err(format!("abs of {}", other.type_name()), span)),
            }
        }
        "min" | "max" => {
            arity(name, 2, args.len(), span)?;
            let a = as_f64(&args[0], "a", span)?;
            let b = as_f64(&args[1], "b", span)?;
            let pick_a = if name == "min" { a <= b } else { a >= b };
            Ok(args[usize::from(!pick_a)].clone())
        }
        "join_str" => {
            arity(name, 2, args.len(), span)?;
            let l = as_list(&args[0], "parts", span)?;
            let sep = as_str(&args[1], "separator", span)?;
            let s = l
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(sep);
            interp.charge(1 + s.len() as u64 / 8, span)?;
            Ok(Value::Str(s))
        }
        "split" => {
            arity(name, 2, args.len(), span)?;
            let s = as_str(&args[0], "string", span)?;
            let sep = as_str(&args[1], "separator", span)?;
            let parts: Vec<Value> = s
                .split(sep)
                .map(|p| Value::Str(p.to_string()))
                .collect();
            interp.charge(1 + s.len() as u64 / 8 + parts.len() as u64, span)?;
            Ok(Value::List(parts))
        }
        "print" => {
            arity(name, 1, args.len(), span)?;
            host.emit(&format!("{}\n", args[0])).map_err(he)?;
            Ok(Value::Nil)
        }
        "rand" => {
            arity(name, 0, args.len(), span)?;
            Ok(Value::Float(host.rand_f64()))
        }

        // ---- distribution operations ---------------------------------------
        "sample" => {
            arity(name, 1, args.len(), span)?;
            let d = as_dist(&args[0], "dist", span)?;
            let u = host.rand_f64();
            Ok(Value::Int(d.sample_with(u, host.vocab_hint()) as i64))
        }
        "sample_t" => {
            arity(name, 2, args.len(), span)?;
            let d = as_dist(&args[0], "dist", span)?;
            let t = as_f64(&args[1], "temperature", span)?;
            if !(t.is_finite() && t >= 0.0) {
                return Err(type_err("temperature must be non-negative", span));
            }
            let d = d.with_temperature(t);
            let u = host.rand_f64();
            Ok(Value::Int(d.sample_with(u, host.vocab_hint()) as i64))
        }
        "argmax" => {
            arity(name, 1, args.len(), span)?;
            Ok(Value::Int(as_dist(&args[0], "dist", span)?.argmax() as i64))
        }
        "prob" => {
            arity(name, 2, args.len(), span)?;
            let d = as_dist(&args[0], "dist", span)?;
            let t = as_token(&args[1], span)?;
            Ok(Value::Float(d.prob(t)))
        }
        "top_k" => {
            arity(name, 2, args.len(), span)?;
            let d = as_dist(&args[0], "dist", span)?;
            let k = as_int(&args[1], "k", span)?;
            if k < 1 {
                return Err(type_err("k must be >= 1", span));
            }
            Ok(Value::Dist(d.top_k(k as usize)))
        }
        "top_p" => {
            arity(name, 2, args.len(), span)?;
            let d = as_dist(&args[0], "dist", span)?;
            let p = as_f64(&args[1], "p", span)?;
            Ok(Value::Dist(d.top_p(p)))
        }
        "constrain" => {
            arity(name, 2, args.len(), span)?;
            let d = as_dist(&args[0], "dist", span)?;
            let allowed = token_list(&args[1], span)?;
            match d.constrain(&allowed) {
                Some(c) => Ok(Value::Dist(c)),
                None => Err(type_err("constrain with empty allowed set", span)),
            }
        }
        "entropy" => {
            arity(name, 1, args.len(), span)?;
            Ok(Value::Float(as_dist(&args[0], "dist", span)?.entropy()))
        }

        // ---- system calls ---------------------------------------------------
        "args" => {
            arity(name, 0, args.len(), span)?;
            let s = host.args();
            interp.charge(1 + s.len() as u64 / 8, span)?;
            Ok(Value::Str(s))
        }
        "eos" => {
            arity(name, 0, args.len(), span)?;
            Ok(Value::Int(host.eos() as i64))
        }
        "tokenize" => {
            arity(name, 1, args.len(), span)?;
            let toks = host.tokenize(as_str(&args[0], "text", span)?).map_err(he)?;
            interp.charge(1 + toks.len() as u64, span)?;
            Ok(Value::List(toks.into_iter().map(|t| Value::Int(t as i64)).collect()))
        }
        "detokenize" => {
            arity(name, 1, args.len(), span)?;
            let toks = token_list(&args[0], span)?;
            let s = host.detokenize(&toks).map_err(he)?;
            interp.charge(1 + s.len() as u64 / 8, span)?;
            Ok(Value::Str(s))
        }
        "pred" => {
            arity(name, 3, args.len(), span)?;
            let kv = as_handle(&args[0], "kv", span)?;
            let toks = token_list(&args[1], span)?;
            let start = as_int(&args[2], "start position", span)?;
            if start < 0 {
                return Err(type_err("start position must be >= 0", span));
            }
            let pairs: Vec<(u32, u32)> = toks
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, start as u32 + i as u32))
                .collect();
            let dists = host.pred(kv, &pairs).map_err(he)?;
            interp.charge(
                1 + dists.iter().map(|d| 1 + d.entries().len() as u64).sum::<u64>(),
                span,
            )?;
            Ok(Value::List(dists.into_iter().map(Value::Dist).collect()))
        }
        "pred_at" => {
            arity(name, 3, args.len(), span)?;
            let kv = as_handle(&args[0], "kv", span)?;
            let toks = token_list(&args[1], span)?;
            let positions: Vec<u32> = as_list(&args[2], "positions", span)?
                .iter()
                .map(|p| as_token(p, span))
                .collect::<Result<_, _>>()?;
            if toks.len() != positions.len() {
                return Err(type_err("tokens and positions must have equal length", span));
            }
            let pairs: Vec<(u32, u32)> = toks.into_iter().zip(positions).collect();
            let dists = host.pred(kv, &pairs).map_err(he)?;
            interp.charge(
                1 + dists.iter().map(|d| 1 + d.entries().len() as u64).sum::<u64>(),
                span,
            )?;
            Ok(Value::List(dists.into_iter().map(Value::Dist).collect()))
        }
        "kv_create" => {
            arity(name, 0, args.len(), span)?;
            Ok(Value::Handle(host.kv_create().map_err(he)?))
        }
        "kv_open" => {
            arity(name, 1, args.len(), span)?;
            Ok(Value::Handle(
                host.kv_open(as_str(&args[0], "path", span)?).map_err(he)?,
            ))
        }
        "kv_fork" => {
            arity(name, 1, args.len(), span)?;
            let kv = as_handle(&args[0], "kv", span)?;
            Ok(Value::Handle(host.kv_fork(kv).map_err(he)?))
        }
        "kv_remove" => {
            arity(name, 1, args.len(), span)?;
            host.kv_remove(as_handle(&args[0], "kv", span)?).map_err(he)?;
            Ok(Value::Nil)
        }
        "kv_len" => {
            arity(name, 1, args.len(), span)?;
            let n = host.kv_len(as_handle(&args[0], "kv", span)?).map_err(he)?;
            Ok(Value::Int(n as i64))
        }
        "kv_next_pos" => {
            arity(name, 1, args.len(), span)?;
            let p = host
                .kv_next_pos(as_handle(&args[0], "kv", span)?)
                .map_err(he)?;
            Ok(Value::Int(p as i64))
        }
        "kv_truncate" => {
            arity(name, 2, args.len(), span)?;
            let kv = as_handle(&args[0], "kv", span)?;
            let n = as_int(&args[1], "length", span)?;
            if n < 0 {
                return Err(type_err("length must be >= 0", span));
            }
            host.kv_truncate(kv, n as usize).map_err(he)?;
            Ok(Value::Nil)
        }
        "kv_extract" => {
            arity(name, 3, args.len(), span)?;
            let kv = as_handle(&args[0], "kv", span)?;
            let a = as_int(&args[1], "start", span)?;
            let b = as_int(&args[2], "end", span)?;
            if a < 0 || b < a {
                return Err(type_err("bad extract range", span));
            }
            Ok(Value::Handle(
                host.kv_extract(kv, a as usize, b as usize).map_err(he)?,
            ))
        }
        "kv_merge" => {
            arity(name, 1, args.len(), span)?;
            let handles: Vec<u64> = as_list(&args[0], "files", span)?
                .iter()
                .map(|h| as_handle(h, "file", span))
                .collect::<Result<_, _>>()?;
            Ok(Value::Handle(host.kv_merge(&handles).map_err(he)?))
        }
        "kv_link" => {
            arity(name, 2, args.len(), span)?;
            let kv = as_handle(&args[0], "kv", span)?;
            host.kv_link(kv, as_str(&args[1], "path", span)?).map_err(he)?;
            Ok(Value::Nil)
        }
        "kv_unlink" => {
            arity(name, 1, args.len(), span)?;
            host.kv_unlink(as_str(&args[0], "path", span)?).map_err(he)?;
            Ok(Value::Nil)
        }
        "kv_pin" => {
            arity(name, 1, args.len(), span)?;
            host.kv_pin(as_handle(&args[0], "kv", span)?).map_err(he)?;
            Ok(Value::Nil)
        }
        "kv_unpin" => {
            arity(name, 1, args.len(), span)?;
            host.kv_unpin(as_handle(&args[0], "kv", span)?).map_err(he)?;
            Ok(Value::Nil)
        }
        "emit" => {
            arity(name, 1, args.len(), span)?;
            host.emit(as_str(&args[0], "text", span)?).map_err(he)?;
            Ok(Value::Nil)
        }
        "emit_token" => {
            arity(name, 1, args.len(), span)?;
            let t = as_token(&args[0], span)?;
            host.emit_tokens(&[t]).map_err(he)?;
            Ok(Value::Nil)
        }
        "emit_tokens" => {
            arity(name, 1, args.len(), span)?;
            let toks = token_list(&args[0], span)?;
            host.emit_tokens(&toks).map_err(he)?;
            Ok(Value::Nil)
        }
        "call_tool" => {
            arity(name, 2, args.len(), span)?;
            let tool = as_str(&args[0], "tool name", span)?;
            let targs = as_str(&args[1], "tool args", span)?;
            let out = host.call_tool(tool, targs).map_err(he)?;
            interp.charge(1 + out.len() as u64 / 8, span)?;
            Ok(Value::Str(out))
        }
        "send" => {
            arity(name, 2, args.len(), span)?;
            let pid = as_int(&args[0], "pid", span)?;
            if pid < 0 {
                return Err(type_err("pid must be >= 0", span));
            }
            host.send_msg(pid as u64, as_str(&args[1], "data", span)?)
                .map_err(he)?;
            Ok(Value::Nil)
        }
        "recv" => {
            arity(name, 0, args.len(), span)?;
            let (from, data) = host.recv_msg().map_err(he)?;
            interp.charge(1 + data.len() as u64 / 8, span)?;
            Ok(Value::List(vec![Value::Int(from as i64), Value::Str(data)]))
        }
        "lookup" => {
            arity(name, 1, args.len(), span)?;
            let found = host.lookup(as_str(&args[0], "name", span)?).map_err(he)?;
            Ok(match found {
                Some(p) => Value::Int(p as i64),
                None => Value::Nil,
            })
        }
        "sleep_ms" => {
            arity(name, 1, args.len(), span)?;
            let ms = as_int(&args[0], "milliseconds", span)?;
            if ms < 0 {
                return Err(type_err("sleep duration must be >= 0", span));
            }
            host.sleep_ms(ms as u64).map_err(he)?;
            Ok(Value::Nil)
        }
        "now_ms" => {
            arity(name, 0, args.len(), span)?;
            Ok(Value::Float(host.now_ms().map_err(he)?))
        }
        "spawn" => {
            arity(name, 2, args.len(), span)?;
            let func = as_str(&args[0], "function name", span)?.to_string();
            let call_args = as_list(&args[1], "arguments", span)?.to_vec();
            if interp.program.function(&func).is_none() {
                return Err(err(RuntimeErrorKind::Undefined(func), span));
            }
            let program = Arc::clone(&interp.program);
            let limits = interp.limits;
            let tid = host.spawn_fn(program, func, call_args, limits).map_err(he)?;
            Ok(Value::Thread(tid))
        }
        "join" => {
            arity(name, 1, args.len(), span)?;
            match &args[0] {
                Value::Thread(t) => Ok(Value::Bool(host.join_thread(*t).map_err(he)?)),
                other => Err(type_err(
                    format!("join needs a thread handle, got {}", other.type_name()),
                    span,
                )),
            }
        }
        other => unreachable!("not a builtin: {other}"),
    }
}
