//! Runtime values.

use core::fmt;

use symphony_model::Dist;

/// A LipScript runtime value.
///
/// Values have *copy semantics*: assignment and argument passing clone.
/// This keeps the sandbox simple (no aliasing, `Send` across spawned
/// threads) at the cost of O(n) list copies, which the memory meter charges.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// List.
    List(Vec<Value>),
    /// A next-token distribution returned by `pred`.
    Dist(Dist),
    /// A KV file handle.
    Handle(u64),
    /// A thread handle returned by `spawn`.
    Thread(u64),
    /// Absent value.
    Nil,
}

impl Value {
    /// The value's type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Dist(_) => "dist",
            Value::Handle(_) => "kv_handle",
            Value::Thread(_) => "thread",
            Value::Nil => "nil",
        }
    }

    /// Truthiness: `false`, `0`, `0.0`, `""`, `[]` and `nil` are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Nil => false,
            Value::Dist(_) | Value::Handle(_) | Value::Thread(_) => true,
        }
    }

    /// Approximate heap footprint in abstract cells (memory metering).
    pub fn cells(&self) -> u64 {
        match self {
            Value::Str(s) => 1 + s.len() as u64 / 8,
            Value::List(l) => 1 + l.iter().map(Value::cells).sum::<u64>(),
            Value::Dist(d) => 1 + d.entries().len() as u64,
            _ => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "{s:?}")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "]")
            }
            Value::Dist(d) => write!(f, "<dist argmax={}>", d.argmax()),
            Value::Handle(h) => write!(f, "<kv:{h}>"),
            Value::Thread(t) => write!(f, "<thread:{t}>"),
            Value::Nil => write!(f, "nil"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Handle(0).truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, \"a\"]"
        );
        assert_eq!(Value::Nil.to_string(), "nil");
    }

    #[test]
    fn cells_scale_with_size() {
        let small = Value::Int(1).cells();
        let big = Value::List(vec![Value::Int(1); 100]).cells();
        assert!(big > small * 50);
        let s = Value::Str("x".repeat(800)).cells();
        assert!(s >= 100);
    }
}
