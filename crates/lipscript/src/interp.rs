//! The tree-walking interpreter with fuel, memory and depth metering.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};
use crate::builtins;
use crate::error::{LipError, RuntimeError, RuntimeErrorKind, Span};
use crate::host::Host;
use crate::parse::parse;
use crate::value::Value;

/// Resource limits for one program (§6: "resource accounting").
#[derive(Debug, Clone, Copy)]
pub struct InterpLimits {
    /// Maximum AST-node evaluations.
    pub fuel: u64,
    /// Total allocation budget in abstract cells (monotonic: frees are not
    /// credited back, bounding total work a program can cause).
    pub memory_cells: u64,
    /// Maximum function-call depth.
    pub max_depth: u32,
}

impl Default for InterpLimits {
    fn default() -> Self {
        InterpLimits {
            fuel: 10_000_000,
            memory_cells: 4_000_000,
            max_depth: 64,
        }
    }
}

/// Statement outcome (control flow).
pub(crate) enum Flow {
    Normal,
    Break(Span),
    Continue(Span),
    Return(Value),
}

/// Lexical environment: a stack of scopes.
pub(crate) struct Env {
    scopes: Vec<BTreeMap<String, Value>>,
}

impl Env {
    fn new() -> Self {
        Env {
            scopes: vec![BTreeMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), v);
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn set(&mut self, name: &str, v: Value) -> bool {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(name) {
                *slot = v;
                return true;
            }
        }
        false
    }

    fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }
}

/// The interpreter state for one program execution.
pub struct Interpreter {
    pub(crate) program: Arc<Program>,
    pub(crate) limits: InterpLimits,
    fuel_used: u64,
    mem_used: u64,
    depth: u32,
}

impl Interpreter {
    /// Creates an interpreter over a parsed program.
    pub fn new(program: Arc<Program>, limits: InterpLimits) -> Self {
        Interpreter {
            program,
            limits,
            fuel_used: 0,
            mem_used: 0,
            depth: 0,
        }
    }

    /// Fuel consumed so far.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Memory cells charged so far.
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    fn burn(&mut self, span: Span) -> Result<(), RuntimeError> {
        self.fuel_used += 1;
        if self.fuel_used > self.limits.fuel {
            Err(RuntimeError::new(RuntimeErrorKind::OutOfFuel, span))
        } else {
            Ok(())
        }
    }

    /// Charges an allocation against the memory budget.
    pub(crate) fn charge(&mut self, cells: u64, span: Span) -> Result<(), RuntimeError> {
        self.mem_used += cells;
        if self.mem_used > self.limits.memory_cells {
            Err(RuntimeError::new(RuntimeErrorKind::OutOfMemory, span))
        } else {
            Ok(())
        }
    }

    /// Runs the program's top-level statements. Returns the value of a
    /// top-level `return`, or [`Value::Nil`].
    pub fn run(&mut self, host: &mut dyn Host) -> Result<Value, RuntimeError> {
        let program = self.program.clone();
        let mut env = Env::new();
        match self.exec_block(&program.top, &mut env, host)? {
            Flow::Return(v) => Ok(v),
            Flow::Break(span) | Flow::Continue(span) => {
                Err(RuntimeError::new(RuntimeErrorKind::BadControlFlow, span))
            }
            Flow::Normal => Ok(Value::Nil),
        }
    }

    /// Calls a named top-level function with arguments (thread entry point).
    pub fn call_named(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        self.call_function(name, args, Span::default(), host)
    }

    pub(crate) fn call_function(
        &mut self,
        name: &str,
        args: Vec<Value>,
        span: Span,
        host: &mut dyn Host,
    ) -> Result<Value, RuntimeError> {
        let program = self.program.clone();
        let Some(def) = program.function(name) else {
            return Err(RuntimeError::new(
                RuntimeErrorKind::Undefined(name.to_string()),
                span,
            ));
        };
        if def.params.len() != args.len() {
            return Err(RuntimeError::new(
                RuntimeErrorKind::BadArity(format!(
                    "{name} expects {} args, got {}",
                    def.params.len(),
                    args.len()
                )),
                span,
            ));
        }
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            self.depth -= 1;
            return Err(RuntimeError::new(RuntimeErrorKind::DepthExceeded, span));
        }
        let mut env = Env::new();
        for (p, a) in def.params.iter().zip(args) {
            env.declare(p, a);
        }
        let result = self.exec_block(&def.body, &mut env, host);
        self.depth -= 1;
        match result? {
            Flow::Return(v) => Ok(v),
            Flow::Break(s) | Flow::Continue(s) => {
                Err(RuntimeError::new(RuntimeErrorKind::BadControlFlow, s))
            }
            Flow::Normal => Ok(Value::Nil),
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        host: &mut dyn Host,
    ) -> Result<Flow, RuntimeError> {
        for s in stmts {
            match self.exec_stmt(s, env, host)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut Env,
        host: &mut dyn Host,
    ) -> Result<Flow, RuntimeError> {
        self.burn(stmt.span)?;
        match &stmt.kind {
            StmtKind::Let(name, e) => {
                let v = self.eval(e, env, host)?;
                env.declare(name, v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign(name, e) => {
                let v = self.eval(e, env, host)?;
                if env.set(name, v) {
                    Ok(Flow::Normal)
                } else {
                    Err(RuntimeError::new(
                        RuntimeErrorKind::Undefined(name.clone()),
                        stmt.span,
                    ))
                }
            }
            StmtKind::IndexAssign(name, idx, e) => {
                let i = self.eval(idx, env, host)?;
                let v = self.eval(e, env, host)?;
                let Value::Int(i) = i else {
                    return Err(RuntimeError::new(
                        RuntimeErrorKind::Type(format!(
                            "list index must be int, got {}",
                            i.type_name()
                        )),
                        stmt.span,
                    ));
                };
                let Some(slot) = env.get_mut(name) else {
                    return Err(RuntimeError::new(
                        RuntimeErrorKind::Undefined(name.clone()),
                        stmt.span,
                    ));
                };
                match slot {
                    Value::List(items) => {
                        if i < 0 || i as usize >= items.len() {
                            return Err(RuntimeError::new(
                                RuntimeErrorKind::IndexOutOfBounds(i, items.len()),
                                stmt.span,
                            ));
                        }
                        items[i as usize] = v;
                        Ok(Flow::Normal)
                    }
                    other => Err(RuntimeError::new(
                        RuntimeErrorKind::Type(format!(
                            "cannot index-assign into {}",
                            other.type_name()
                        )),
                        stmt.span,
                    )),
                }
            }
            StmtKind::If(cond, then, els) => {
                let c = self.eval(cond, env, host)?;
                env.push();
                let flow = if c.truthy() {
                    self.exec_block(then, env, host)
                } else {
                    self.exec_block(els, env, host)
                };
                env.pop();
                flow
            }
            StmtKind::While(cond, body) => {
                loop {
                    self.burn(stmt.span)?;
                    if !self.eval(cond, env, host)?.truthy() {
                        break;
                    }
                    env.push();
                    let flow = self.exec_block(body, env, host);
                    env.pop();
                    match flow? {
                        Flow::Normal | Flow::Continue(_) => {}
                        Flow::Break(_) => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For(var, iter, body) => {
                let items = match self.eval(iter, env, host)? {
                    Value::List(items) => items,
                    other => {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::Type(format!(
                                "for-loop needs a list, got {}",
                                other.type_name()
                            )),
                            stmt.span,
                        ))
                    }
                };
                for item in items {
                    self.burn(stmt.span)?;
                    env.push();
                    env.declare(var, item);
                    let flow = self.exec_block(body, env, host);
                    env.pop();
                    match flow? {
                        Flow::Normal | Flow::Continue(_) => {}
                        Flow::Break(_) => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break(stmt.span)),
            StmtKind::Continue => Ok(Flow::Continue(stmt.span)),
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, host)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Expr(e) => {
                self.eval(e, env, host)?;
                Ok(Flow::Normal)
            }
        }
    }

    pub(crate) fn eval(
        &mut self,
        expr: &Expr,
        env: &mut Env,
        host: &mut dyn Host,
    ) -> Result<Value, RuntimeError> {
        self.burn(expr.span)?;
        match &expr.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Bool(v) => Ok(Value::Bool(*v)),
            ExprKind::Nil => Ok(Value::Nil),
            ExprKind::Str(s) => {
                self.charge(1 + s.len() as u64 / 8, expr.span)?;
                Ok(Value::Str(s.clone()))
            }
            ExprKind::Var(name) => env.get(name).cloned().ok_or_else(|| {
                RuntimeError::new(RuntimeErrorKind::Undefined(name.clone()), expr.span)
            }),
            ExprKind::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e, env, host)?);
                }
                self.charge(1 + out.len() as u64, expr.span)?;
                Ok(Value::List(out))
            }
            ExprKind::Un(op, e) => {
                let v = self.eval(e, env, host)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                    (UnOp::Not, v) => Ok(Value::Bool(!v.truthy())),
                    (UnOp::Neg, v) => Err(RuntimeError::new(
                        RuntimeErrorKind::Type(format!("cannot negate {}", v.type_name())),
                        expr.span,
                    )),
                }
            }
            ExprKind::Bin(op, l, r) => {
                // Short-circuit logicals.
                if *op == BinOp::And {
                    let lv = self.eval(l, env, host)?;
                    if !lv.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(self.eval(r, env, host)?.truthy()));
                }
                if *op == BinOp::Or {
                    let lv = self.eval(l, env, host)?;
                    if lv.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(self.eval(r, env, host)?.truthy()));
                }
                let lv = self.eval(l, env, host)?;
                let rv = self.eval(r, env, host)?;
                self.binop(*op, lv, rv, expr.span)
            }
            ExprKind::Index(e, idx) => {
                let base = self.eval(e, env, host)?;
                let i = self.eval(idx, env, host)?;
                let Value::Int(i) = i else {
                    return Err(RuntimeError::new(
                        RuntimeErrorKind::Type(format!(
                            "index must be int, got {}",
                            i.type_name()
                        )),
                        expr.span,
                    ));
                };
                match base {
                    Value::List(items) => {
                        if i < 0 || i as usize >= items.len() {
                            Err(RuntimeError::new(
                                RuntimeErrorKind::IndexOutOfBounds(i, items.len()),
                                expr.span,
                            ))
                        } else {
                            Ok(items[i as usize].clone())
                        }
                    }
                    Value::Str(s) => {
                        let bytes = s.as_bytes();
                        if i < 0 || i as usize >= bytes.len() {
                            Err(RuntimeError::new(
                                RuntimeErrorKind::IndexOutOfBounds(i, bytes.len()),
                                expr.span,
                            ))
                        } else {
                            Ok(Value::Str((bytes[i as usize] as char).to_string()))
                        }
                    }
                    other => Err(RuntimeError::new(
                        RuntimeErrorKind::Type(format!("cannot index {}", other.type_name())),
                        expr.span,
                    )),
                }
            }
            ExprKind::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, host)?);
                }
                if builtins::is_builtin(name) {
                    builtins::call(self, host, name, vals, expr.span)
                } else {
                    self.call_function(name, vals, expr.span, host)
                }
            }
        }
    }

    fn binop(
        &mut self,
        op: BinOp,
        l: Value,
        r: Value,
        span: Span,
    ) -> Result<Value, RuntimeError> {
        use Value::{Float, Int, Str};
        let type_err = |l: &Value, r: &Value| {
            RuntimeError::new(
                RuntimeErrorKind::Type(format!(
                    "cannot apply {op:?} to {} and {}",
                    l.type_name(),
                    r.type_name()
                )),
                span,
            )
        };
        Ok(match (op, &l, &r) {
            (BinOp::Add, Int(a), Int(b)) => Int(a.wrapping_add(*b)),
            (BinOp::Sub, Int(a), Int(b)) => Int(a.wrapping_sub(*b)),
            (BinOp::Mul, Int(a), Int(b)) => Int(a.wrapping_mul(*b)),
            (BinOp::Div, Int(a), Int(b)) => {
                if *b == 0 {
                    return Err(RuntimeError::new(RuntimeErrorKind::DivisionByZero, span));
                }
                Int(a.wrapping_div(*b))
            }
            (BinOp::Mod, Int(a), Int(b)) => {
                if *b == 0 {
                    return Err(RuntimeError::new(RuntimeErrorKind::DivisionByZero, span));
                }
                Int(a.wrapping_rem(*b))
            }
            (BinOp::Add, Str(a), b) => {
                let s = format!("{a}{b}");
                self.charge(1 + s.len() as u64 / 8, span)?;
                Str(s)
            }
            (BinOp::Add, a, Str(b)) => {
                let s = format!("{a}{b}");
                self.charge(1 + s.len() as u64 / 8, span)?;
                Str(s)
            }
            (BinOp::Add, Value::List(a), Value::List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                self.charge(1 + out.len() as u64, span)?;
                Value::List(out)
            }
            (_, Float(_), _) | (_, _, Float(_)) => {
                let (a, b) = match (&l, &r) {
                    (Int(a), Float(b)) => (*a as f64, *b),
                    (Float(a), Int(b)) => (*a, *b as f64),
                    (Float(a), Float(b)) => (*a, *b),
                    _ => return Err(type_err(&l, &r)),
                };
                match op {
                    BinOp::Add => Float(a + b),
                    BinOp::Sub => Float(a - b),
                    BinOp::Mul => Float(a * b),
                    BinOp::Div => Float(a / b),
                    BinOp::Mod => Float(a % b),
                    BinOp::Eq => Value::Bool(a == b),
                    BinOp::Ne => Value::Bool(a != b),
                    BinOp::Lt => Value::Bool(a < b),
                    BinOp::Le => Value::Bool(a <= b),
                    BinOp::Gt => Value::Bool(a > b),
                    BinOp::Ge => Value::Bool(a >= b),
                    BinOp::And | BinOp::Or => unreachable!("short-circuited"),
                }
            }
            (BinOp::Eq, a, b) => Value::Bool(a == b),
            (BinOp::Ne, a, b) => Value::Bool(a != b),
            (BinOp::Lt, Int(a), Int(b)) => Value::Bool(a < b),
            (BinOp::Le, Int(a), Int(b)) => Value::Bool(a <= b),
            (BinOp::Gt, Int(a), Int(b)) => Value::Bool(a > b),
            (BinOp::Ge, Int(a), Int(b)) => Value::Bool(a >= b),
            (BinOp::Lt, Str(a), Str(b)) => Value::Bool(a < b),
            (BinOp::Le, Str(a), Str(b)) => Value::Bool(a <= b),
            (BinOp::Gt, Str(a), Str(b)) => Value::Bool(a > b),
            (BinOp::Ge, Str(a), Str(b)) => Value::Bool(a >= b),
            _ => return Err(type_err(&l, &r)),
        })
    }
}

/// Parses and runs a LipScript program against an arbitrary host.
pub fn run_with_host(
    src: &str,
    host: &mut dyn Host,
    limits: InterpLimits,
) -> Result<Value, LipError> {
    let program = Arc::new(parse(src)?);
    let mut interp = Interpreter::new(program, limits);
    interp.run(host).map_err(LipError::from)
}

/// Parses and runs a LipScript program inside a Symphony LIP thread.
///
/// This is what a "program-accepting server" calls on a received program
/// string: the whole execution is sandboxed by `limits`.
pub fn run_lip(
    src: &str,
    ctx: &mut symphony::Ctx,
    limits: InterpLimits,
) -> Result<Value, LipError> {
    run_with_host(src, ctx, limits)
}
