//! Property test: the pretty-printer is a fixpoint under re-parsing for
//! arbitrary generated programs.

use proptest::prelude::*;
use symphony_lipscript::ast::{BinOp, Expr, ExprKind, FnDef, Program, Stmt, StmtKind, UnOp};
use symphony_lipscript::parse::parse;
use symphony_lipscript::printer::print_program;

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid keywords and builtin collisions by prefixing.
    "[a-z]{1,6}".prop_map(|s| format!("v_{s}"))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|v| ExprKind::Int(v as i64)),
        (-1000i32..1000).prop_map(|v| ExprKind::Float(v as f64 / 8.0)),
        "[ -~]{0,12}".prop_map(ExprKind::Str),
        any::<bool>().prop_map(ExprKind::Bool),
        Just(ExprKind::Nil),
        arb_ident().prop_map(ExprKind::Var),
    ]
    .prop_map(|kind| Expr {
        kind,
        span: Default::default(),
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| ExprKind::Bin(op, Box::new(l), Box::new(r))),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone())
                .prop_map(|(op, e)| ExprKind::Un(op, Box::new(e))),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(ExprKind::List),
            (arb_ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(n, args)| ExprKind::Call(n, args)),
            (inner.clone(), inner).prop_map(|(b, i)| ExprKind::Index(Box::new(b), Box::new(i))),
        ]
        .prop_map(|kind| Expr {
            kind,
            span: Default::default(),
        })
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (arb_ident(), arb_expr()).prop_map(|(n, e)| StmtKind::Let(n, e)),
        (arb_ident(), arb_expr()).prop_map(|(n, e)| StmtKind::Assign(n, e)),
        (arb_ident(), arb_expr(), arb_expr())
            .prop_map(|(n, i, e)| StmtKind::IndexAssign(n, i, e)),
        Just(StmtKind::Break),
        Just(StmtKind::Continue),
        arb_expr().prop_map(|e| StmtKind::Return(Some(e))),
        Just(StmtKind::Return(None)),
        arb_expr().prop_map(StmtKind::Expr),
    ]
    .prop_map(|kind| Stmt {
        kind,
        span: Default::default(),
    });
    simple.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (
                arb_expr(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| StmtKind::If(c, t, e)),
            (arb_expr(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, b)| StmtKind::While(c, b)),
            (arb_ident(), arb_expr(), proptest::collection::vec(inner, 0..3))
                .prop_map(|(v, it, b)| StmtKind::For(v, it, b)),
        ]
        .prop_map(|kind| Stmt {
            kind,
            span: Default::default(),
        })
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(
            (
                arb_ident(),
                proptest::collection::vec(arb_ident(), 0..3),
                proptest::collection::vec(arb_stmt(), 0..4),
            ),
            0..3,
        ),
        proptest::collection::vec(arb_stmt(), 0..6),
    )
        .prop_map(|(fns, top)| Program {
            functions: fns
                .into_iter()
                .map(|(name, params, body)| FnDef {
                    name,
                    params,
                    body,
                    span: Default::default(),
                })
                .collect(),
            top,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse ∘ print = print: the printed form is stable, i.e. the
    /// printer emits exactly the syntax the parser reads.
    #[test]
    fn printer_parse_fixpoint(p in arb_program()) {
        let printed1 = print_program(&p);
        let reparsed = match parse(&printed1) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("reparse: {e}\n{printed1}"))),
        };
        let printed2 = print_program(&reparsed);
        prop_assert_eq!(printed1, printed2);
    }
}
