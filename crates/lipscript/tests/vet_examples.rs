//! The shipped examples must pass the verifier with zero errors, and their
//! effect summaries are pinned as goldens — a drift here means either an
//! example changed or the cost/effect analysis changed, and both deserve a
//! deliberate review.

use symphony_lipscript::verify::verify_source;

fn vet(path: &str) -> symphony_lipscript::verify::VerifyReport {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    verify_source(&src).unwrap_or_else(|e| panic!("{}", e.render(path)))
}

#[test]
fn examples_verify_with_zero_errors() {
    for path in [
        "../../examples/lipscript/agent.lip",
        "../../examples/lipscript/completion.lip",
        "../../examples/lipscript/parallel.lip",
    ] {
        let report = vet(path);
        assert!(
            report.is_admissible(),
            "{path} has verifier errors: {:?}",
            report.diags
        );
        assert!(
            report.diags.is_empty(),
            "{path} has verifier warnings: {:?}",
            report.diags
        );
    }
}

#[test]
fn agent_effect_summary_golden() {
    let report = vet("../../examples/lipscript/agent.lip");
    assert_eq!(
        report.effects.render(),
        "\
pred: yes
tools: \"echo\"
ipc: no
spawn targets: none
kv open: none
kv link: none
fuel: unbounded
preds: unbounded
spawns: <=0
kv files: <=1
"
    );
}

#[test]
fn completion_effect_summary_golden() {
    let report = vet("../../examples/lipscript/completion.lip");
    assert_eq!(
        report.effects.render(),
        "\
pred: yes
tools: none
ipc: no
spawn targets: none
kv open: none
kv link: none
fuel: unbounded
preds: unbounded
spawns: <=0
kv files: <=1
"
    );
}

#[test]
fn parallel_effect_summary_golden() {
    let report = vet("../../examples/lipscript/parallel.lip");
    assert_eq!(
        report.effects.render(),
        "\
pred: yes
tools: none
ipc: no
spawn targets: \"branch\"
kv open: \"sys_msg.kv\"
kv link: none
fuel: unbounded
preds: <=0
spawns: <=3
kv files: <=3
"
    );
}
