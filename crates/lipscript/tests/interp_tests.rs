//! Interpreter semantics, sandboxing, and kernel integration tests.

use symphony_lipscript::host::MockHost;
use symphony_lipscript::{run_with_host, InterpLimits, LipError, RuntimeError, Value};

fn run(src: &str) -> Result<(Value, MockHost), LipError> {
    let mut host = MockHost::new("the args");
    let v = run_with_host(src, &mut host, InterpLimits::default())?;
    Ok((v, host))
}

fn run_value(src: &str) -> Value {
    run(src).unwrap().0
}

fn runtime_err(src: &str) -> RuntimeError {
    match run(src).unwrap_err() {
        LipError::Runtime(e) => e,
        other => panic!("expected runtime error, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_value("return 1 + 2 * 3;"), Value::Int(7));
    assert_eq!(run_value("return (1 + 2) * 3;"), Value::Int(9));
    assert_eq!(run_value("return 7 % 3;"), Value::Int(1));
    assert_eq!(run_value("return 7 / 2;"), Value::Int(3));
    assert_eq!(run_value("return 7.0 / 2;"), Value::Float(3.5));
    assert_eq!(run_value("return 1 + 2.5;"), Value::Float(3.5));
    assert_eq!(run_value("return -5;"), Value::Int(-5));
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(run_value("return 1 < 2 && 3 >= 3;"), Value::Bool(true));
    assert_eq!(run_value("return 1 == 2 || false;"), Value::Bool(false));
    assert_eq!(run_value("return !0;"), Value::Bool(true));
    assert_eq!(run_value(r#"return "a" < "b";"#), Value::Bool(true));
    assert_eq!(run_value(r#"return "x" == "x";"#), Value::Bool(true));
}

#[test]
fn short_circuit_does_not_eval_rhs() {
    // The rhs would be a division by zero if evaluated.
    assert_eq!(
        run_value("let x = 0; return x != 0 && 1 / x > 0;"),
        Value::Bool(false)
    );
    assert_eq!(
        run_value("let x = 0; return x == 0 || 1 / x > 0;"),
        Value::Bool(true)
    );
}

#[test]
fn strings_and_lists() {
    assert_eq!(
        run_value(r#"return "a" + "b" + str(3);"#),
        Value::Str("ab3".into())
    );
    assert_eq!(
        run_value("return [1, 2] + [3];"),
        Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
    );
    assert_eq!(run_value("return len([1, 2, 3]);"), Value::Int(3));
    assert_eq!(run_value("let xs = push([1], 2); return xs[1];"), Value::Int(2));
    assert_eq!(run_value("return slice([1,2,3,4], 1, 3);"),
        Value::List(vec![Value::Int(2), Value::Int(3)]));
    assert_eq!(run_value("return contains([1,2], 2);"), Value::Bool(true));
    assert_eq!(run_value("return range(2, 5);"),
        Value::List(vec![Value::Int(2), Value::Int(3), Value::Int(4)]));
    assert_eq!(run_value(r#"return split("a,b", ",");"#),
        Value::List(vec![Value::Str("a".into()), Value::Str("b".into())]));
    assert_eq!(run_value(r#"return join_str([1, 2], "-");"#), Value::Str("1-2".into()));
}

#[test]
fn index_assignment_mutates() {
    assert_eq!(
        run_value("let xs = [1, 2, 3]; xs[1] = 9; return xs[1];"),
        Value::Int(9)
    );
}

#[test]
fn control_flow() {
    assert_eq!(
        run_value(
            "let n = 0; let i = 0;
             while (i < 10) { i = i + 1; if (i % 2 == 0) { continue; } n = n + i; }
             return n;"
        ),
        Value::Int(25)
    );
    assert_eq!(
        run_value("let n = 0; for x in [1, 2, 3, 4] { if (x == 3) { break; } n = n + x; } return n;"),
        Value::Int(3)
    );
    assert_eq!(
        run_value("if (1 < 2) { return 10; } else { return 20; }"),
        Value::Int(10)
    );
}

#[test]
fn functions_and_recursion() {
    assert_eq!(
        run_value("fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } return fib(12);"),
        Value::Int(144)
    );
    assert_eq!(
        run_value("fn add(a, b) { return a + b; } return add(40, 2);"),
        Value::Int(42)
    );
    // Functions see only their own scope.
    let e = runtime_err("let g = 1; fn f() { return g; } return f();");
    assert!(e.to_string().contains("undefined name `g`"));
}

#[test]
fn scoping() {
    // Block scopes shadow and disappear.
    assert_eq!(
        run_value("let x = 1; if (true) { let x = 2; } return x;"),
        Value::Int(1)
    );
    // Assignment reaches outer scopes.
    assert_eq!(
        run_value("let x = 1; if (true) { x = 2; } return x;"),
        Value::Int(2)
    );
}

#[test]
fn runtime_errors_have_kinds() {
    assert!(runtime_err("return 1 / 0;").to_string().contains("division by zero"));
    assert!(runtime_err("return [1][5];").to_string().contains("out of bounds"));
    assert!(runtime_err("return y;").to_string().contains("undefined"));
    assert!(runtime_err("return 1 + [];").to_string().contains("type error"));
    assert!(runtime_err("f(1);").to_string().contains("undefined"));
    assert!(runtime_err("fn f(a) { return a; } return f();").to_string().contains("arity"));
    assert!(runtime_err("break;").to_string().contains("outside a loop"));
}

#[test]
fn fuel_exhaustion_stops_infinite_loops() {
    let mut host = MockHost::new("");
    let limits = InterpLimits {
        fuel: 10_000,
        ..Default::default()
    };
    let err = run_with_host("while (true) { let x = 1; }", &mut host, limits).unwrap_err();
    assert!(err.to_string().contains("out of fuel"), "{err}");
}

#[test]
fn memory_exhaustion_stops_allocation_bombs() {
    let mut host = MockHost::new("");
    let limits = InterpLimits {
        memory_cells: 10_000,
        ..Default::default()
    };
    let err = run_with_host(
        "let xs = [0]; while (true) { xs = xs + xs; }",
        &mut host,
        limits,
    )
    .unwrap_err();
    assert!(err.to_string().contains("out of memory"), "{err}");
}

#[test]
fn depth_limit_stops_runaway_recursion() {
    let mut host = MockHost::new("");
    let limits = InterpLimits {
        max_depth: 16,
        ..Default::default()
    };
    let err = run_with_host(
        "fn f(n) { return f(n + 1); } return f(0);",
        &mut host,
        limits,
    )
    .unwrap_err();
    assert!(err.to_string().contains("call depth"), "{err}");
}

#[test]
fn host_args_emit_and_tools() {
    let (_, host) = run(r#"emit(args()); emit("!");"#).unwrap();
    assert_eq!(host.emitted, "the args!");

    let mut host = MockHost::new("");
    host.tools.insert("weather".into(), "sunny in {args}".into());
    let v = run_with_host(
        r#"return call_tool("weather", "banff");"#,
        &mut host,
        InterpLimits::default(),
    )
    .unwrap();
    assert_eq!(v, Value::Str("sunny in banff".into()));

    // Unknown tool is a runtime error, not a crash.
    let err = run_with_host(
        r#"call_tool("nope", "");"#,
        &mut host,
        InterpLimits::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("syscall failed"));
}

#[test]
fn generation_loop_against_mock_model() {
    let src = r#"
        let kv = kv_create();
        let prompt = tokenize(args());
        let dists = pred(kv, prompt, 0);
        let d = dists[len(dists) - 1];
        let pos = len(prompt);
        let out = [];
        while (len(out) < 32) {
            let t = argmax(d);
            if (t == eos()) { break; }
            out = push(out, t);
            d = pred(kv, [t], pos)[0];
            pos = pos + 1;
        }
        emit_tokens(out);
        return len(out);
    "#;
    let (v, host) = run(src).unwrap();
    let Value::Int(n) = v else { panic!("{v:?}") };
    assert!(n > 0, "should generate something");
    assert!(!host.emitted.is_empty());
    // The mock's EOS gate fires every 13th entry, so the loop ended early.
    assert!(n < 32, "mock model should have emitted EOS, got {n}");
}

#[test]
fn kv_operations_roundtrip() {
    let src = r#"
        let a = kv_create();
        pred(a, [1, 2, 3, 4], 0);
        let b = kv_fork(a);
        pred(b, [5], 4);
        kv_link(a, "shared.kv");
        let c = kv_open("shared.kv");
        let lens = [kv_len(a), kv_len(b), kv_len(c)];
        kv_truncate(b, 2);
        lens = push(lens, kv_len(b));
        let d = kv_extract(a, 1, 3);
        lens = push(lens, kv_len(d));
        let m = kv_merge([a, d]);
        lens = push(lens, kv_len(m));
        return lens;
    "#;
    let (v, _) = run(src).unwrap();
    assert_eq!(
        v,
        Value::List(vec![
            Value::Int(4),
            Value::Int(5),
            Value::Int(4),
            Value::Int(2),
            Value::Int(2),
            Value::Int(6)
        ])
    );
}

#[test]
fn dist_operations() {
    let src = r#"
        let kv = kv_create();
        let d = pred(kv, [7], 0)[0];
        let t = argmax(d);
        let p = prob(d, t);
        let k = top_k(d, 1);
        let c = constrain(d, [t, t + 1]);
        return [p > 0.0, argmax(k) == t, argmax(c) == t, entropy(d) > 0.0, sample(top_k(d,1)) == t];
    "#;
    let (v, _) = run(src).unwrap();
    assert_eq!(v, Value::List(vec![Value::Bool(true); 5]));
}

#[test]
fn spawn_and_join_inline() {
    let src = r#"
        fn worker(n) { emit("w" + str(n)); return n; }
        let t1 = spawn("worker", [1]);
        let t2 = spawn("worker", [2]);
        return [join(t1), join(t2)];
    "#;
    let (v, host) = run(src).unwrap();
    assert_eq!(v, Value::List(vec![Value::Bool(true), Value::Bool(true)]));
    assert_eq!(host.emitted, "w1w2");
    // Spawning an unknown function is an error.
    let e = runtime_err(r#"spawn("nope", []);"#);
    assert!(e.to_string().contains("undefined"));
}

#[test]
fn sleep_and_now() {
    let (v, _) = run("sleep_ms(250); return now_ms();").unwrap();
    assert_eq!(v, Value::Float(250.0));
}

#[test]
fn builtin_names_cannot_be_called_as_user_fns() {
    // A user function shadowing a builtin is simply never reached; builtins
    // win. Document via behaviour: `len` still works on lists.
    let v = run_value("fn len(x) { return 99; } return len([1, 2]);");
    assert_eq!(v, Value::Int(2));
}

#[test]
fn kernel_integration_end_to_end() {
    use symphony::{Kernel, KernelConfig};

    let src = r#"
        // Parallel branch generation with a shared forked prefix (Fig. 2).
        fn branch(kv, seed) {
            let d = pred(kv, [seed], kv_next_pos(kv))[0];
            let n = 0;
            while (n < 6) {
                let t = argmax(d);
                if (t == eos()) { break; }
                d = pred(kv, [t], kv_next_pos(kv))[0];
                n = n + 1;
            }
            emit("[done " + str(seed) + "]");
            return n;
        }
        let prefix = kv_create();
        pred(prefix, tokenize(args()), 0);
        let t1 = spawn("branch", [kv_fork(prefix), 11]);
        let t2 = spawn("branch", [kv_fork(prefix), 12]);
        let ok1 = join(t1);
        let ok2 = join(t2);
        if (ok1 && ok2) { emit("all ok"); }
    "#
    .to_string();

    let mut kernel = Kernel::new(KernelConfig::for_tests());
    let pid = kernel.spawn_process("lipscript", "the shared prefix", move |ctx| {
        symphony_lipscript::run_lip(&src, ctx, InterpLimits::default())
            .map(|_| ())
            .map_err(|e| symphony::SysError::ToolFailed(e.to_string()))
    });
    kernel.run();
    let rec = kernel.record(pid).unwrap();
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    assert!(rec.output.contains("[done 11]"));
    assert!(rec.output.contains("[done 12]"));
    assert!(rec.output.contains("all ok"));
    kernel.store().verify().unwrap();
}

#[test]
fn kernel_sandbox_kills_hostile_program_not_server() {
    use symphony::{Kernel, KernelConfig};

    let hostile = "while (true) { let x = [1, 2, 3]; }".to_string();
    let mut kernel = Kernel::new(KernelConfig::for_tests());
    let evil = kernel.spawn_process("evil", "", move |ctx| {
        symphony_lipscript::run_lip(
            &hostile,
            ctx,
            InterpLimits {
                fuel: 50_000,
                ..Default::default()
            },
        )
        .map(|_| ())
        .map_err(|e| symphony::SysError::ToolFailed(e.to_string()))
    });
    // An innocent program runs alongside.
    let good = kernel.spawn_process("good", "", |ctx| ctx.emit("fine"));
    kernel.run();
    let evil_rec = kernel.record(evil).unwrap();
    assert!(!evil_rec.status.is_ok());
    assert!(format!("{:?}", evil_rec.status).contains("out of fuel"));
    assert!(kernel.record(good).unwrap().status.is_ok());
    assert_eq!(kernel.live_threads(), 0);
}
