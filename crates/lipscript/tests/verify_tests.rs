//! Unit coverage for the admission-time verifier: every pass, every
//! diagnostic code, the severity policy, and the cost algebra.

use symphony_lipscript::ast::Program;
use symphony_lipscript::verify::{
    verify, verify_source, Bound, DiagCode, Severity, VerifyReport,
};

fn vet(src: &str) -> VerifyReport {
    verify_source(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"))
}

fn codes(r: &VerifyReport) -> Vec<(DiagCode, Severity)> {
    r.diags.iter().map(|d| (d.code, d.severity)).collect()
}

// ---------------------------------------------------------------------------
// Pass 1: resolution & arity
// ---------------------------------------------------------------------------

#[test]
fn undefined_variable_in_straight_line_code_is_error() {
    let r = vet("let x = missing + 1;");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Error)]
    );
    assert!(!r.is_admissible());
}

#[test]
fn assignment_to_undeclared_variable_is_error() {
    let r = vet("x = 1;");
    assert_eq!(codes(&r), vec![(DiagCode::UndefinedVar, Severity::Error)]);
}

#[test]
fn branch_local_declaration_does_not_leak() {
    // `let` inside a branch is popped with the scope; the later use is
    // exactly the "assigned on some paths only" case from the issue.
    let r = vet("let c = 1; if (c) { let x = 2; } let y = x;");
    assert_eq!(codes(&r), vec![(DiagCode::UndefinedVar, Severity::Error)]);
}

#[test]
fn undefined_function_is_error() {
    let r = vet("let x = nope(1);");
    assert_eq!(codes(&r), vec![(DiagCode::UndefinedFn, Severity::Error)]);
}

#[test]
fn builtin_arity_mismatch_is_error() {
    let r = vet("let x = len();");
    assert_eq!(codes(&r), vec![(DiagCode::BadArity, Severity::Error)]);
}

#[test]
fn user_fn_arity_mismatch_is_error() {
    let r = vet("fn f(a, b) { return a; } let x = f(1);");
    assert_eq!(codes(&r), vec![(DiagCode::BadArity, Severity::Error)]);
}

#[test]
fn unresolved_spawn_target_is_error() {
    let r = vet("let t = spawn(\"ghost\", []);");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::BadSpawnTarget, Severity::Error)]
    );
}

#[test]
fn spawn_arity_mismatch_is_only_a_warning() {
    // The fault happens inside the spawned thread, and thread faults never
    // fail the parent program — must not reject.
    let r = vet("fn f(a) { return a; } let t = spawn(\"f\", []); join(t);");
    assert_eq!(codes(&r), vec![(DiagCode::BadArity, Severity::Warning)]);
    assert!(r.is_admissible());
}

#[test]
fn break_outside_loop_is_error() {
    let r = vet("break;");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::StrayControlFlow, Severity::Error)]
    );
}

#[test]
fn continue_inside_loop_is_fine() {
    let r = vet("for i in [1, 2] { continue; }");
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn break_in_function_without_loop_is_flagged() {
    let r = vet("fn f() { break; } f();");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::StrayControlFlow, Severity::Error)]
    );
}

// ---------------------------------------------------------------------------
// Severity policy: only the guaranteed path errors
// ---------------------------------------------------------------------------

#[test]
fn dead_branch_issue_is_warning() {
    let r = vet("if (false) { let x = missing; }");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Warning)]
    );
    assert!(r.is_admissible());
}

#[test]
fn literal_true_branch_is_definite() {
    let r = vet("if (true) { let x = missing; }");
    assert_eq!(codes(&r), vec![(DiagCode::UndefinedVar, Severity::Error)]);
}

#[test]
fn non_literal_condition_demotes_to_warning() {
    let r = vet("let c = 1; if (c) { let x = missing; }");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Warning)]
    );
}

#[test]
fn uncalled_function_body_is_warning_only() {
    let r = vet("fn dead() { let x = missing; } let y = 1;");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Warning)]
    );
    assert!(r.is_admissible());
}

#[test]
fn definitely_called_function_body_errors() {
    let r = vet("fn f() { let x = missing; } f();");
    assert_eq!(codes(&r), vec![(DiagCode::UndefinedVar, Severity::Error)]);
}

#[test]
fn transitively_called_function_body_errors() {
    let r = vet("fn g() { let x = missing; } fn f() { g(); } f();");
    assert_eq!(codes(&r), vec![(DiagCode::UndefinedVar, Severity::Error)]);
}

#[test]
fn spawned_function_body_is_never_definite() {
    // Spawned-thread faults are swallowed by the parent.
    let r = vet("fn f() { let x = missing; } let t = spawn(\"f\", []); join(t);");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Warning)]
    );
    assert!(r.is_admissible());
}

#[test]
fn code_after_definite_break_is_not_definite() {
    // `while (true) { if (c) { break; } missing; }` can succeed when the
    // break is taken on the first iteration.
    let r = vet("let c = 1; while (true) { if (c) { break; } let x = missing; }");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Warning)]
    );
    assert!(r.is_admissible());
}

#[test]
fn first_iteration_of_literal_for_is_definite() {
    let r = vet("for i in [1, 2] { let x = missing; }");
    assert_eq!(codes(&r), vec![(DiagCode::UndefinedVar, Severity::Error)]);
}

#[test]
fn loop_over_unknown_list_demotes() {
    let r = vet("fn f(xs) { for i in xs { let y = missing; } } f([]);");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Warning)]
    );
}

#[test]
fn short_circuit_right_side_is_not_definite() {
    let r = vet("let c = 0; let x = c && missing;");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UndefinedVar, Severity::Warning)]
    );
    assert!(r.is_admissible());
}

// ---------------------------------------------------------------------------
// Pass 2: abstract typing
// ---------------------------------------------------------------------------

#[test]
fn indexing_an_int_is_error() {
    let r = vet("let x = 5; let y = x[0];");
    assert_eq!(codes(&r), vec![(DiagCode::TypeMisuse, Severity::Error)]);
}

#[test]
fn join_on_non_thread_is_error() {
    let r = vet("let x = 5; join(x);");
    assert_eq!(codes(&r), vec![(DiagCode::TypeMisuse, Severity::Error)]);
}

#[test]
fn pred_on_non_kv_is_error() {
    let r = vet("let d = pred(\"not a kv\", [1], 0);");
    assert_eq!(codes(&r), vec![(DiagCode::TypeMisuse, Severity::Error)]);
}

#[test]
fn arithmetic_on_list_and_int_is_error() {
    let r = vet("let x = [1] - 2;");
    assert_eq!(codes(&r), vec![(DiagCode::TypeMisuse, Severity::Error)]);
}

#[test]
fn string_concat_with_anything_is_fine() {
    let r = vet("let x = \"n=\" + 5 + nil + [1] + 1.5;");
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn widened_types_do_not_error() {
    // x is int on one path and list on another: joined to ⊤, no diagnostic
    // — the verifier must not reject what the interpreter might run.
    let r = vet("let c = 1; let x = 5; if (c) { x = [1]; } let y = x[0];");
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn kv_use_after_remove_is_error() {
    let r = vet("let kv = kv_create(); kv_remove(kv); let n = kv_len(kv);");
    assert_eq!(
        codes(&r),
        vec![(DiagCode::UseAfterRemove, Severity::Error)]
    );
}

#[test]
fn kv_rebind_after_remove_is_fine() {
    let r = vet("let kv = kv_create(); kv_remove(kv); kv = kv_create(); let n = kv_len(kv);");
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn kv_remove_in_branch_does_not_poison_after() {
    let r = vet(
        "let c = 1; let kv = kv_create(); if (c) { kv_remove(kv); } let n = kv_next_pos(kv);",
    );
    assert!(r.is_admissible(), "{:?}", r.diags);
}

#[test]
fn shadowed_builtin_and_duplicate_fn_warn() {
    let r = vet("fn len(x) { return 0; } fn f() { return 1; } fn f() { return 2; } f();");
    let mut cs: Vec<DiagCode> = r.diags.iter().map(|d| d.code).collect();
    cs.sort();
    assert_eq!(cs, vec![DiagCode::ShadowedBuiltin, DiagCode::DuplicateFn]);
    assert!(r.is_admissible());
}

// ---------------------------------------------------------------------------
// Pass 3: effects & cost
// ---------------------------------------------------------------------------

#[test]
fn straight_line_cost_is_finite_and_small() {
    let r = vet("let kv = kv_create(); let d = pred(kv, [1, 2], 0);");
    assert_eq!(r.effects.pred_bound, Bound::Finite(1));
    assert_eq!(r.effects.kv_file_bound, Bound::Finite(1));
    assert_eq!(r.effects.spawn_bound, Bound::Finite(0));
    assert!(r.effects.uses_pred);
    let fuel = r.effects.fuel_bound.finite().unwrap_or(u64::MAX);
    assert!(fuel < 100, "fuel bound too loose: {fuel}");
}

#[test]
fn for_over_range_multiplies_bounds() {
    let r = vet("let kv = kv_create(); for i in range(0, 8) { let d = pred(kv, [i], i); }");
    assert_eq!(r.effects.pred_bound, Bound::Finite(8));
}

#[test]
fn for_over_single_let_list_variable_is_bounded() {
    let r = vet(
        "let kv = kv_create(); let xs = [1, 2, 3];\n\
         for x in xs { let d = pred(kv, [x], x); }",
    );
    assert_eq!(r.effects.pred_bound, Bound::Finite(3));
}

#[test]
fn reassigned_list_variable_is_unbounded() {
    let r = vet(
        "let kv = kv_create(); let xs = [1]; xs = [1, 2];\n\
         for x in xs { let d = pred(kv, [x], x); }",
    );
    assert_eq!(r.effects.pred_bound, Bound::Unbounded);
}

#[test]
fn while_loop_makes_fuel_unbounded() {
    let r = vet("let n = 0; while (n < 2) { n = n + 1; }");
    assert_eq!(r.effects.fuel_bound, Bound::Unbounded);
    // But nothing in the loop touches pred: that bound stays zero.
    assert_eq!(r.effects.pred_bound, Bound::Finite(0));
}

#[test]
fn recursion_is_unbounded() {
    let r = vet("fn f(n) { let kv = kv_create(); return f(n); } f(1);");
    assert_eq!(r.effects.kv_file_bound, Bound::Unbounded);
    assert_eq!(r.effects.fuel_bound, Bound::Unbounded);
}

#[test]
fn spawn_counts_child_kv_files_but_not_child_preds() {
    let r = vet(
        "fn worker(kv) { let d = pred(kv, [1], 0); let x = kv_fork(kv); return 0; }\n\
         let kv = kv_create();\n\
         let t = spawn(\"worker\", [kv]);\n\
         join(t);",
    );
    // Child preds run on the child's budget.
    assert_eq!(r.effects.pred_bound, Bound::Finite(0));
    // Child thread + child's kv_fork are global resources.
    assert_eq!(r.effects.spawn_bound, Bound::Finite(1));
    assert_eq!(r.effects.kv_file_bound, Bound::Finite(2));
    assert_eq!(
        r.effects.spawn_targets.iter().collect::<Vec<_>>(),
        vec!["worker"]
    );
}

#[test]
fn dynamic_spawn_target_gives_up_bounds() {
    let r = vet(
        "fn a() { let kv = kv_create(); return 0; }\n\
         let name = \"a\";\n\
         let t = spawn(name, []);",
    );
    assert!(r.effects.dynamic_spawns);
    assert_eq!(r.effects.spawn_bound, Bound::Unbounded);
    assert_eq!(r.effects.kv_file_bound, Bound::Unbounded);
}

#[test]
fn effect_set_collects_tools_ipc_and_paths() {
    let r = vet(
        "let out = call_tool(\"search\", \"q\");\n\
         send(1, \"hello\");\n\
         let kv = kv_open(\"doc0.kv\");\n\
         kv_link(kv, \"shared.kv\");",
    );
    assert!(r.effects.uses_tools);
    assert!(r.effects.uses_ipc);
    assert_eq!(
        r.effects.tool_names.iter().collect::<Vec<_>>(),
        vec!["search"]
    );
    assert_eq!(
        r.effects.kv_open_paths.iter().collect::<Vec<_>>(),
        vec!["doc0.kv"]
    );
    assert_eq!(
        r.effects.kv_link_paths.iter().collect::<Vec<_>>(),
        vec!["shared.kv"]
    );
}

#[test]
fn service_estimate_matches_pred_bound() {
    let r = vet("let kv = kv_create(); for i in range(0, 5) { let d = pred(kv, [i], i); }");
    assert_eq!(r.effects.service_estimate(), Some(5));
    let r = vet("let kv = kv_create(); let n = 0; while (n < 9) { let d = pred(kv, [n], n); n = n + 1; }");
    assert_eq!(r.effects.service_estimate(), None);
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

#[test]
fn first_error_skips_warnings_and_renders_position() {
    let r = vet("if (false) { let a = missing; }\nlet b = missing2;");
    let e = r.first_error().expect("one error");
    assert_eq!(e.code, DiagCode::UndefinedVar);
    assert_eq!(e.span.line, 2);
    let rendered = e.render("prog.lip");
    assert!(
        rendered.starts_with("prog.lip:2:"),
        "bad render: {rendered}"
    );
    assert!(rendered.contains("missing2"), "bad render: {rendered}");
}

#[test]
fn diagnostics_come_out_in_source_order() {
    let r = vet("let a = m1;\nlet b = m2;\nlet c = m3;");
    let lines: Vec<u32> = r.diags.iter().map(|d| d.span.line).collect();
    assert_eq!(lines, vec![1, 2, 3]);
}

#[test]
fn empty_program_is_admissible_and_free() {
    let r = verify(&Program::default());
    assert!(r.is_admissible());
    assert_eq!(r.effects.fuel_bound, Bound::Finite(0));
}

#[test]
fn parse_error_from_verify_source_renders_with_position() {
    let e = verify_source("let = broken syntax here").expect_err("must not parse");
    let rendered = e.render("bad.lip");
    assert!(rendered.starts_with("bad.lip:1:"), "bad render: {rendered}");
}
