//! Property test: the verifier has no false positives.
//!
//! The admission door rejects a program only on `Severity::Error`
//! diagnostics, so the contract that matters is: **any program the
//! interpreter runs to completion under default limits is admissible**.
//! Warnings are allowed (they don't shed), errors are not.

use proptest::prelude::*;
use symphony_lipscript::ast::{BinOp, Expr, ExprKind, FnDef, Program, Stmt, StmtKind, UnOp};
use symphony_lipscript::host::MockHost;
use symphony_lipscript::printer::print_program;
use symphony_lipscript::verify::verify;
use symphony_lipscript::{run_with_host, InterpLimits};

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid keywords and builtin collisions by prefixing.
    "[a-z]{1,4}".prop_map(|s| format!("v_{s}"))
}

/// A small pool of builtin names so generated calls sometimes hit real
/// builtins (with usually-wrong arities/types) instead of only undefined
/// functions.
fn arb_callee() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_ident(),
        prop_oneof![
            Just("len".to_string()),
            Just("str".to_string()),
            Just("push".to_string()),
            Just("range".to_string()),
            Just("min".to_string()),
            Just("contains".to_string()),
            Just("abs".to_string()),
            Just("print".to_string()),
            Just("spawn".to_string()),
            Just("kv_create".to_string()),
            Just("kv_remove".to_string()),
            Just("kv_len".to_string()),
        ],
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(ExprKind::Int),
        (-1000i32..1000).prop_map(|v| ExprKind::Float(v as f64 / 8.0)),
        "[ -~]{0,8}".prop_map(ExprKind::Str),
        any::<bool>().prop_map(ExprKind::Bool),
        Just(ExprKind::Nil),
        arb_ident().prop_map(ExprKind::Var),
    ]
    .prop_map(|kind| Expr {
        kind,
        span: Default::default(),
    });
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| ExprKind::Bin(op, Box::new(l), Box::new(r))),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone())
                .prop_map(|(op, e)| ExprKind::Un(op, Box::new(e))),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(ExprKind::List),
            (arb_callee(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(n, args)| ExprKind::Call(n, args)),
            (inner.clone(), inner).prop_map(|(b, i)| ExprKind::Index(Box::new(b), Box::new(i))),
        ]
        .prop_map(|kind| Expr {
            kind,
            span: Default::default(),
        })
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (arb_ident(), arb_expr()).prop_map(|(n, e)| StmtKind::Let(n, e)),
        (arb_ident(), arb_expr()).prop_map(|(n, e)| StmtKind::Assign(n, e)),
        (arb_ident(), arb_expr(), arb_expr())
            .prop_map(|(n, i, e)| StmtKind::IndexAssign(n, i, e)),
        Just(StmtKind::Break),
        Just(StmtKind::Continue),
        arb_expr().prop_map(|e| StmtKind::Return(Some(e))),
        Just(StmtKind::Return(None)),
        arb_expr().prop_map(StmtKind::Expr),
    ]
    .prop_map(|kind| Stmt {
        kind,
        span: Default::default(),
    });
    simple.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (
                arb_expr(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| StmtKind::If(c, t, e)),
            (arb_expr(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, b)| StmtKind::While(c, b)),
            (arb_ident(), arb_expr(), proptest::collection::vec(inner, 0..3))
                .prop_map(|(v, it, b)| StmtKind::For(v, it, b)),
        ]
        .prop_map(|kind| Stmt {
            kind,
            span: Default::default(),
        })
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(
            (
                arb_ident(),
                proptest::collection::vec(arb_ident(), 0..3),
                proptest::collection::vec(arb_stmt(), 0..4),
            ),
            0..3,
        ),
        proptest::collection::vec(arb_stmt(), 0..6),
    )
        .prop_map(|(fns, top)| Program {
            functions: fns
                .into_iter()
                .map(|(name, params, body)| FnDef {
                    name,
                    params,
                    body,
                    span: Default::default(),
                })
                .collect(),
            top,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    ))]

    /// Soundness of admission: if the interpreter runs the program to
    /// completion, the verifier must not report any error-severity
    /// diagnostic. (The reverse — rejecting programs that would fault — is
    /// covered by unit tests; it is intentionally incomplete.)
    #[test]
    fn successful_programs_are_admissible(p in arb_program()) {
        // Round-trip through the printer so the verifier sees exactly what
        // a submitted source string would parse to (with real spans).
        let src = print_program(&p);
        let mut host = MockHost::new("prop test");
        let ran = run_with_host(&src, &mut host, InterpLimits::default());
        if ran.is_ok() {
            let report = match symphony_lipscript::parse::parse(&src) {
                Ok(prog) => verify(&prog),
                Err(e) => return Err(TestCaseError::fail(format!("reparse failed: {e}\n{src}"))),
            };
            if let Some(err) = report.first_error() {
                return Err(TestCaseError::fail(format!(
                    "interpreter succeeded but verifier rejected:\n  {}\nprogram:\n{src}",
                    err.render("<prop>"),
                )));
            }
        }
    }
}
