//! BPE trainer, encoder and decoder.
//!
//! Training operates on a word histogram (each distinct pre-token trained
//! once, weighted by count) which keeps it fast enough to train the default
//! vocabulary at first use. Encoding splits text into pre-tokens (a run of
//! whitespace is glued to the following word, GPT-style) and applies merges
//! greedily in rank order; per-word results are memoised.

use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot_shim::Mutex;

use crate::corpus::CorpusGen;
use crate::vocab::{SpecialTokens, TokenId, Vocab, BYTE_TOKENS};

/// Minimal internal shim so this crate stays dependency-free: a tiny wrapper
/// over `std::sync::Mutex` with the `parking_lot`-style infallible `lock`.
mod parking_lot_shim {
    /// A mutex whose `lock` never returns a poisoned error.
    #[derive(Debug, Default)]
    pub(super) struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub(super) fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }

        /// Locks, recovering from poisoning (state is a plain cache here).
        pub(super) fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }
    }
}

/// A trained byte-pair encoder.
#[derive(Debug)]
pub struct Bpe {
    vocab: Vocab,
    /// Merge rank by pair: lower rank merges first.
    ranks: HashMap<(TokenId, TokenId), (u32, TokenId)>,
    /// Encoded-word memo; keyed by the raw pre-token bytes.
    cache: Mutex<HashMap<Vec<u8>, Vec<TokenId>>>,
}

impl Bpe {
    /// Trains a BPE model on `text`, learning up to `num_merges` merges.
    ///
    /// Training is deterministic: ties in pair frequency break on the
    /// lexicographically smaller pair.
    pub fn train(text: &str, num_merges: usize) -> Self {
        // Histogram of pre-tokens.
        let mut word_counts: HashMap<Vec<u8>, u64> = HashMap::new();
        for word in pretokenize(text.as_bytes()) {
            *word_counts.entry(word.to_vec()).or_insert(0) += 1;
        }
        // Each distinct word as a mutable symbol sequence.
        let mut words: Vec<(Vec<TokenId>, u64)> = word_counts
            .into_iter()
            .map(|(w, c)| (w.iter().map(|&b| b as TokenId).collect(), c))
            .collect();
        // Deterministic iteration order.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        let mut merge_expansions: Vec<Vec<u8>> = Vec::with_capacity(num_merges);
        let mut ranks: HashMap<(TokenId, TokenId), (u32, TokenId)> = HashMap::new();
        let expansion_of = |id: TokenId, merges: &Vec<Vec<u8>>| -> Vec<u8> {
            if (id as usize) < BYTE_TOKENS {
                vec![id as u8]
            } else {
                merges[id as usize - BYTE_TOKENS].clone()
            }
        };

        for rank in 0..num_merges {
            // Count adjacent pairs across all words.
            let mut pair_counts: HashMap<(TokenId, TokenId), u64> = HashMap::new();
            for (sym, count) in &words {
                for w in sym.windows(2) {
                    *pair_counts.entry((w[0], w[1])).or_insert(0) += count;
                }
            }
            let best = pair_counts
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some((pair, _)) = best else { break };

            let new_id = (BYTE_TOKENS + merge_expansions.len()) as TokenId;
            let mut bytes = expansion_of(pair.0, &merge_expansions);
            bytes.extend(expansion_of(pair.1, &merge_expansions));
            merge_expansions.push(bytes);
            ranks.insert(pair, (rank as u32, new_id));

            // Apply the merge to every word.
            for (sym, _) in &mut words {
                let mut i = 0;
                while i + 1 < sym.len() {
                    if sym[i] == pair.0 && sym[i + 1] == pair.1 {
                        sym[i] = new_id;
                        sym.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }

        Bpe {
            vocab: Vocab::new(merge_expansions),
            ranks,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The shared default tokenizer, trained once on the synthetic corpus.
    pub fn default_tokenizer() -> &'static Bpe {
        static DEFAULT: OnceLock<Bpe> = OnceLock::new();
        DEFAULT.get_or_init(|| {
            let corpus = CorpusGen::new(0xC0FFEE).training_corpus(400);
            Bpe::train(&corpus, 1500)
        })
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Convenience accessor for the special tokens.
    pub fn specials(&self) -> SpecialTokens {
        self.vocab.specials()
    }

    /// Encodes text into token IDs (never emits special tokens).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::new();
        for word in pretokenize(text.as_bytes()) {
            if let Some(hit) = self.cache.lock().get(word) {
                out.extend_from_slice(hit);
                continue;
            }
            let ids = self.encode_word(word);
            self.cache.lock().insert(word.to_vec(), ids.clone());
            out.extend(ids);
        }
        out
    }

    /// Applies merges to a single pre-token.
    fn encode_word(&self, word: &[u8]) -> Vec<TokenId> {
        let mut sym: Vec<TokenId> = word.iter().map(|&b| b as TokenId).collect();
        loop {
            // Find the lowest-rank applicable merge.
            let mut best: Option<(u32, usize, TokenId)> = None;
            for (i, w) in sym.windows(2).enumerate() {
                if let Some(&(rank, id)) = self.ranks.get(&(w[0], w[1])) {
                    if best.is_none_or(|(r, _, _)| rank < r) {
                        best = Some((rank, i, id));
                    }
                }
            }
            let Some((_, i, id)) = best else { break };
            sym[i] = id;
            sym.remove(i + 1);
        }
        sym
    }

    /// Decodes token IDs back into a string (lossy only on invalid UTF-8
    /// boundaries, which cannot arise from `encode` output).
    pub fn decode(&self, tokens: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &t in tokens {
            if let Some(b) = self.vocab.get(t) {
                if !self.vocab.is_special(t) {
                    bytes.extend_from_slice(b);
                }
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Decodes a single token for streaming output, rendering specials as
    /// their `<|name|>` placeholder.
    pub fn decode_token(&self, token: TokenId) -> String {
        match self.vocab.get(token) {
            Some(b) => String::from_utf8_lossy(b).into_owned(),
            None => format!("<|invalid:{token}|>"),
        }
    }
}

/// Splits bytes into pre-tokens: each pre-token is an optional whitespace run
/// followed by a maximal non-whitespace run (or a trailing whitespace run).
fn pretokenize(bytes: &[u8]) -> impl Iterator<Item = &[u8]> {
    let mut i = 0;
    std::iter::from_fn(move || {
        if i >= bytes.len() {
            return None;
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        Some(&bytes[start..i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Bpe {
        Bpe::train("the cat sat on the mat the cat sat on the mat the theme", 50)
    }

    #[test]
    fn roundtrip_basic() {
        let bpe = small();
        for s in [
            "the cat sat",
            "  leading spaces",
            "trailing  ",
            "unicode: héllo wörld 模型",
            "",
            "\n\t mixed\nwhitespace ",
        ] {
            assert_eq!(bpe.decode(&bpe.encode(s)), s, "roundtrip failed for {s:?}");
        }
    }

    #[test]
    fn merges_compress_common_words() {
        let bpe = small();
        let with_merges = bpe.encode("the cat sat on the mat").len();
        let raw_bytes = "the cat sat on the mat".len();
        assert!(
            with_merges < raw_bytes,
            "expected compression: {with_merges} tokens vs {raw_bytes} bytes"
        );
    }

    #[test]
    fn encoding_is_deterministic_and_cached() {
        let bpe = small();
        let a = bpe.encode("the cat sat on the mat");
        let b = bpe.encode("the cat sat on the mat");
        assert_eq!(a, b);
    }

    #[test]
    fn training_is_deterministic() {
        let a = Bpe::train("abc abc abd abd abe", 20);
        let b = Bpe::train("abc abc abd abd abe", 20);
        assert_eq!(a.vocab().len(), b.vocab().len());
        assert_eq!(a.encode("abc abd"), b.encode("abc abd"));
    }

    #[test]
    fn never_emits_specials() {
        let bpe = small();
        let s = bpe.specials();
        let ids = bpe.encode("<|eos|> the <|bos|>");
        assert!(ids.iter().all(|&t| t < s.bos));
        // Specials survive as literal text.
        assert_eq!(bpe.decode(&ids), "<|eos|> the <|bos|>");
    }

    #[test]
    fn decode_skips_specials_but_decode_token_renders_them() {
        let bpe = small();
        let s = bpe.specials();
        assert_eq!(bpe.decode(&[s.eos]), "");
        assert_eq!(bpe.decode_token(s.eos), "<|eos|>");
        assert_eq!(bpe.decode_token(9_999_999), "<|invalid:9999999|>");
    }

    #[test]
    fn zero_merges_is_byte_fallback() {
        let bpe = Bpe::train("anything", 0);
        let ids = bpe.encode("hi");
        assert_eq!(ids, vec![b'h' as TokenId, b'i' as TokenId]);
    }

    #[test]
    fn default_tokenizer_trains_and_roundtrips() {
        let bpe = Bpe::default_tokenizer();
        assert!(bpe.vocab().merge_count() > 500);
        let text = "retrieval augmented generation with cached context";
        assert_eq!(bpe.decode(&bpe.encode(text)), text);
        // Common corpus words should compress well below byte length.
        assert!(bpe.encode(text).len() < text.len() / 2);
    }

    #[test]
    fn pretokenize_partitions_input() {
        let input = b"  ab cd \t e ";
        let parts: Vec<&[u8]> = pretokenize(input).collect();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, input.len());
        let joined: Vec<u8> = parts.concat();
        assert_eq!(joined, input);
    }
}
