//! Vocabulary: token IDs, their byte expansions, and special tokens.
//!
//! Layout: IDs `0..256` are the raw byte tokens, `256..256+M` are learned BPE
//! merges in rank order, and the last few IDs are special control tokens.
//! This fixed layout keeps encodings stable and lets other crates reason
//! about IDs (e.g. the surrogate model never emits specials except EOS).

use serde::{Deserialize, Serialize};

/// A token identifier.
pub type TokenId = u32;

/// The reserved control tokens appended after all learned merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecialTokens {
    /// Beginning-of-sequence.
    pub bos: TokenId,
    /// End-of-sequence; generation loops stop on this.
    pub eos: TokenId,
    /// Padding.
    pub pad: TokenId,
    /// Marks the start of a function/tool call in agent transcripts.
    pub call: TokenId,
    /// Marks the end of a function/tool call.
    pub end_call: TokenId,
}

/// A token vocabulary mapping IDs to byte expansions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    /// Byte expansion per token ID; specials expand to display placeholders.
    expansions: Vec<Vec<u8>>,
    /// Number of learned merges (IDs `256..256+merges` are merge tokens).
    merges: usize,
    specials: SpecialTokens,
}

/// Number of base byte tokens.
pub const BYTE_TOKENS: usize = 256;

/// Number of special tokens appended after the merges.
pub const NUM_SPECIALS: usize = 5;

impl Vocab {
    /// Builds a vocabulary from merge expansions (in rank order).
    ///
    /// `merge_expansions[i]` is the full byte expansion of merge token
    /// `256 + i`.
    pub fn new(merge_expansions: Vec<Vec<u8>>) -> Self {
        let merges = merge_expansions.len();
        let mut expansions = Vec::with_capacity(BYTE_TOKENS + merges + NUM_SPECIALS);
        for b in 0..BYTE_TOKENS {
            expansions.push(vec![b as u8]);
        }
        expansions.extend(merge_expansions);
        let first_special = (BYTE_TOKENS + merges) as TokenId;
        let specials = SpecialTokens {
            bos: first_special,
            eos: first_special + 1,
            pad: first_special + 2,
            call: first_special + 3,
            end_call: first_special + 4,
        };
        for name in ["<|bos|>", "<|eos|>", "<|pad|>", "<|call|>", "<|end_call|>"] {
            expansions.push(name.as_bytes().to_vec());
        }
        Vocab {
            expansions,
            merges,
            specials,
        }
    }

    /// Total vocabulary size including byte tokens and specials.
    pub fn len(&self) -> usize {
        self.expansions.len()
    }

    /// Returns `true` if the vocabulary is empty (never; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.expansions.is_empty()
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// The special tokens.
    pub fn specials(&self) -> SpecialTokens {
        self.specials
    }

    /// Returns `true` if `id` is one of the special tokens.
    pub fn is_special(&self, id: TokenId) -> bool {
        id >= self.specials.bos && (id as usize) < self.len()
    }

    /// Byte expansion of a token.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn bytes(&self, id: TokenId) -> &[u8] {
        &self.expansions[id as usize]
    }

    /// Checked byte expansion of a token.
    pub fn get(&self, id: TokenId) -> Option<&[u8]> {
        self.expansions.get(id as usize).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_bytes_then_merges_then_specials() {
        let v = Vocab::new(vec![b"th".to_vec(), b"the".to_vec()]);
        assert_eq!(v.len(), 256 + 2 + NUM_SPECIALS);
        assert_eq!(v.bytes(65), b"A");
        assert_eq!(v.bytes(256), b"th");
        assert_eq!(v.bytes(257), b"the");
        assert_eq!(v.specials().bos, 258);
        assert_eq!(v.specials().eos, 259);
        assert_eq!(v.merge_count(), 2);
    }

    #[test]
    fn special_detection() {
        let v = Vocab::new(vec![]);
        let s = v.specials();
        assert!(v.is_special(s.bos));
        assert!(v.is_special(s.eos));
        assert!(v.is_special(s.end_call));
        assert!(!v.is_special(0));
        assert!(!v.is_special(255));
        assert!(!v.is_special(s.end_call + 1));
    }

    #[test]
    fn get_checked() {
        let v = Vocab::new(vec![]);
        assert_eq!(v.get(97), Some(b"a".as_slice()));
        assert_eq!(v.get(10_000), None);
    }
}
