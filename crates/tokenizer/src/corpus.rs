//! Deterministic synthetic text corpus.
//!
//! The paper's RAG experiment uses "100 documents, each containing 3,000
//! tokens". We do not have that private corpus, so the workload generators
//! synthesise documents from a fixed technical vocabulary with a seeded
//! generator: same seed, same documents, same token counts — everywhere in
//! the workspace.

/// Word pool for synthetic documents (plain technical English, so learned
/// BPE merges resemble real subword statistics).
const WORDS: &[&str] = &[
    "the", "a", "of", "and", "to", "in", "is", "that", "for", "with", "as", "on", "are", "by",
    "this", "be", "an", "or", "from", "at", "it", "can", "which", "each", "when", "into", "more",
    "system", "model", "cache", "token", "memory", "request", "server", "latency", "throughput",
    "batch", "schedule", "thread", "process", "kernel", "program", "inference", "generation",
    "prompt", "context", "document", "retrieval", "function", "call", "state", "page", "file",
    "virtual", "compute", "gpu", "device", "bandwidth", "capacity", "policy", "eviction",
    "prefix", "reuse", "application", "workload", "design", "interface", "abstraction", "layer",
    "data", "index", "query", "result", "response", "stream", "buffer", "queue", "pool",
    "allocation", "management", "control", "execution", "runtime", "performance", "efficiency",
    "overhead", "cost", "resource", "utilization", "parallel", "concurrent", "distributed",
    "network", "storage", "disk", "transfer", "copy", "read", "write", "load", "store",
    "operation", "instruction", "pipeline", "stage", "phase", "step", "loop", "branch",
    "sample", "distribution", "probability", "weight", "parameter", "attention", "transformer",
    "decode", "encode", "sequence", "position", "embedding", "vector", "matrix", "tensor",
    "value", "key", "entry", "record", "table", "structure", "algorithm", "method", "approach",
    "technique", "strategy", "optimization", "improvement", "reduction", "increase", "decrease",
    "measurement", "evaluation", "benchmark", "experiment", "analysis", "comparison", "baseline",
    "implementation", "architecture", "component", "module", "subsystem", "service", "client",
    "user", "developer", "code", "logic", "behavior", "pattern", "semantics", "guarantee",
    "consistency", "isolation", "durability", "availability", "reliability", "scalability",
    "fairness", "priority", "deadline", "timeout", "interval", "frequency", "rate", "ratio",
];

/// A deterministic generator of synthetic words, sentences and documents.
#[derive(Debug, Clone)]
pub struct CorpusGen {
    state: u64,
}

impl CorpusGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        CorpusGen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 pseudo-random bits (splitmix64; internal to stay dep-free).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Picks a uniform word from the pool.
    pub fn word(&mut self) -> &'static str {
        WORDS[(self.next_u64() % WORDS.len() as u64) as usize]
    }

    /// Generates a sentence of `len` words, capitalised with a final period.
    pub fn sentence(&mut self, len: usize) -> String {
        let mut s = String::new();
        for i in 0..len.max(1) {
            let w = self.word();
            if i == 0 {
                let mut c = w.chars();
                if let Some(first) = c.next() {
                    s.extend(first.to_uppercase());
                    s.push_str(c.as_str());
                }
            } else {
                s.push(' ');
                s.push_str(w);
            }
        }
        s.push('.');
        s
    }

    /// Generates a paragraph of about `words` words.
    pub fn paragraph(&mut self, words: usize) -> String {
        let mut out = String::new();
        let mut remaining = words;
        while remaining > 0 {
            let len = 6 + (self.next_u64() % 10) as usize;
            let len = len.min(remaining.max(3));
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&self.sentence(len));
            remaining = remaining.saturating_sub(len);
        }
        out
    }

    /// Generates a document with approximately `target_tokens` BPE tokens
    /// when encoded with `bpe`, by growing paragraphs until the target is
    /// reached and trimming the final excess at a word boundary.
    pub fn document_with_tokens(
        &mut self,
        bpe: &crate::bpe::Bpe,
        target_tokens: usize,
    ) -> String {
        let mut doc = String::new();
        loop {
            let para = self.paragraph(120);
            if !doc.is_empty() {
                doc.push('\n');
            }
            doc.push_str(&para);
            if bpe.encode(&doc).len() >= target_tokens {
                break;
            }
        }
        // Trim words until we are at or just under the target.
        while bpe.encode(&doc).len() > target_tokens {
            match doc.rfind(' ') {
                Some(i) => doc.truncate(i),
                None => break,
            }
        }
        doc
    }

    /// A plain training corpus of `paragraphs` paragraphs for BPE training.
    pub fn training_corpus(&mut self, paragraphs: usize) -> String {
        let mut out = String::new();
        for _ in 0..paragraphs {
            out.push_str(&self.paragraph(80));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpe::Bpe;

    #[test]
    fn deterministic_given_seed() {
        let a = CorpusGen::new(7).paragraph(50);
        let b = CorpusGen::new(7).paragraph(50);
        assert_eq!(a, b);
        let c = CorpusGen::new(8).paragraph(50);
        assert_ne!(a, c);
    }

    #[test]
    fn sentence_shape() {
        let s = CorpusGen::new(1).sentence(5);
        assert!(s.ends_with('.'));
        assert!(s.chars().next().unwrap().is_uppercase());
        assert_eq!(s.split_whitespace().count(), 5);
    }

    #[test]
    fn paragraph_word_count_close() {
        let p = CorpusGen::new(2).paragraph(100);
        let words = p.split_whitespace().count();
        assert!((90..=120).contains(&words), "words={words}");
    }

    #[test]
    fn document_hits_token_target() {
        let bpe = Bpe::default_tokenizer();
        let mut g = CorpusGen::new(3);
        let doc = g.document_with_tokens(bpe, 300);
        let n = bpe.encode(&doc).len();
        assert!(
            (280..=300).contains(&n),
            "expected ~300 tokens, got {n}"
        );
    }

    #[test]
    fn training_corpus_nonempty_lines() {
        let c = CorpusGen::new(4).training_corpus(5);
        assert_eq!(c.lines().count(), 5);
        assert!(c.lines().all(|l| !l.is_empty()));
    }
}
