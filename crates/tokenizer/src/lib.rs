//! A byte-level BPE tokenizer built from scratch.
//!
//! Symphony's `pred` system call operates on token IDs, so the reproduction
//! needs a real tokenizer: this crate implements byte-pair encoding with a
//! trainer, a greedy rank-based encoder, and a lossless decoder. Byte-level
//! base tokens (one per byte value) guarantee that *any* string round-trips
//! through `encode` → `decode`, which the property tests assert.
//!
//! The default tokenizer is trained deterministically on the synthetic corpus
//! in [`corpus`], mirroring how the workload generators produce documents, so
//! document token counts in the experiments are realistic rather than
//! hand-waved.
//!
//! # Examples
//!
//! ```
//! use symphony_tokenizer::Bpe;
//!
//! let bpe = Bpe::default_tokenizer();
//! let ids = bpe.encode("the system design of the system");
//! assert_eq!(bpe.decode(&ids), "the system design of the system");
//! ```

pub mod bpe;
pub mod corpus;
pub mod vocab;

pub use bpe::Bpe;
pub use corpus::CorpusGen;
pub use vocab::{SpecialTokens, TokenId, Vocab};
