//! Property tests: byte-level BPE must round-trip arbitrary strings.

use proptest::prelude::*;
use symphony_tokenizer::Bpe;

proptest! {
    /// Any string round-trips through encode → decode (byte-level base
    /// tokens guarantee losslessness regardless of learned merges).
    #[test]
    fn encode_decode_roundtrip(s in "\\PC*") {
        let bpe = Bpe::default_tokenizer();
        prop_assert_eq!(bpe.decode(&bpe.encode(&s)), s);
    }

    /// ASCII-heavy text (the common case) round-trips too, and encoding is
    /// deterministic.
    #[test]
    fn ascii_roundtrip_and_determinism(s in "[ -~\\n\\t]{0,400}") {
        let bpe = Bpe::default_tokenizer();
        let a = bpe.encode(&s);
        let b = bpe.encode(&s);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(bpe.decode(&a), s);
    }

    /// Token IDs never leave the vocabulary and never name specials.
    #[test]
    fn tokens_stay_in_vocab(s in "\\PC{0,200}") {
        let bpe = Bpe::default_tokenizer();
        let specials = bpe.specials();
        for t in bpe.encode(&s) {
            prop_assert!(bpe.vocab().get(t).is_some());
            prop_assert!(t < specials.bos, "content token {t} in special range");
        }
    }

    /// Concatenating two encoded pretoken-aligned strings equals encoding
    /// the concatenation when the boundary is whitespace-aligned (the
    /// property the RAG harness relies on for doc+query prompts).
    #[test]
    fn whitespace_boundary_composes(a in "[a-z ]{0,100}", b in "[a-z]{1,50}") {
        let bpe = Bpe::default_tokenizer();
        let joined = format!("{a}\n{b}");
        let mut parts = bpe.encode(&a);
        parts.extend(bpe.encode(&format!("\n{b}")));
        prop_assert_eq!(bpe.encode(&joined), parts);
    }

    /// Freshly trained tokenizers are lossless on their own corpus family.
    #[test]
    fn trained_tokenizer_roundtrips(seed in 0u64..50, merges in 0usize..200) {
        let corpus = symphony_tokenizer::CorpusGen::new(seed).training_corpus(5);
        let bpe = Bpe::train(&corpus, merges);
        let sample = symphony_tokenizer::CorpusGen::new(seed ^ 1).paragraph(30);
        prop_assert_eq!(bpe.decode(&bpe.encode(&sample)), sample);
    }
}
