//! Warm-restart persistence tests: journal snapshot at shutdown, replay at
//! boot, golden-trace equivalence against a cold kernel, and torn-tail
//! recovery under fault injection.

use symphony::sampling::{self, GenOpts};
use symphony::{FaultPlan, Kernel, KernelConfig, Mode};
use symphony_kvfs::KvError;

/// Unique-per-process temp path so parallel test runs don't collide.
fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("symphony-persist-{}-{}", std::process::id(), name))
}

const SYS_TEXT: &str = "system prompt shared by every request in the fleet ";

fn preload(k: &mut Kernel) -> usize {
    let tokens = k.tokenizer().encode(&SYS_TEXT.repeat(8));
    k.preload_kv("sys.kv", &tokens, Mode::SHARED_READ, true).unwrap();
    tokens.len()
}

/// The same RAG-style workload run against either kernel: fork the shared
/// prefix, generate a short answer, drop the fork.
fn rag_workload(k: &mut Kernel) -> (String, u64) {
    let mut pids = Vec::new();
    for i in 0..3 {
        let args = format!("question number {i}");
        pids.push(k.spawn_process(&format!("rag{i}"), &args, |ctx| {
            let prefix = ctx.kv_open("sys.kv")?;
            let kv = ctx.kv_fork(prefix)?;
            let q = ctx.tokenize(&ctx.args())?;
            sampling::generate(ctx, kv, &q, &GenOpts { max_tokens: 16, ..Default::default() })?;
            ctx.kv_remove(kv)?;
            Ok(())
        }));
    }
    k.run();
    for &p in &pids {
        assert!(k.record(p).unwrap().status.is_ok());
    }
    (k.export_chrome_trace(), k.trace().fingerprint())
}

#[test]
fn warm_restart_restores_pinned_prefix() {
    let path = tmp("warm.journal");
    let n_sys = {
        let mut cold = Kernel::new(KernelConfig::for_tests());
        let n = preload(&mut cold);
        assert!(cold.restored().is_none(), "cold start has no restore report");
        assert!(cold.persist_kv(&path).unwrap(), "unfaulted journal lands complete");
        n
    };

    let mut cfg = KernelConfig::for_tests();
    cfg.journal_path = Some(path.clone());
    let mut warm = Kernel::new(cfg);
    let report = *warm.restored().expect("journal replayed at boot");
    assert_eq!(report.files, 1);
    assert_eq!(report.links, 1);
    assert_eq!(report.tokens, n_sys);
    assert_eq!(report.torn, None);
    let f = warm.store().lookup("sys.kv").expect("namespace restored");
    assert!(warm.store().stat(f).unwrap().pinned, "pin survives restart");
    warm.store().verify().unwrap();

    // The restored prefix is live: a fork starts at the full prefix length.
    let n = n_sys as u32;
    let pid = warm.spawn_process("reuse", "the question", move |ctx| {
        let prefix = ctx.kv_open("sys.kv")?;
        let kv = ctx.kv_fork(prefix)?;
        assert_eq!(ctx.kv_next_pos(kv)?, n);
        let q = ctx.tokenize(&ctx.args())?;
        sampling::generate(ctx, kv, &q, &GenOpts { max_tokens: 8, ..Default::default() })?;
        Ok(())
    });
    warm.run();
    assert!(warm.record(pid).unwrap().status.is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn restored_kernel_matches_fresh_kernel_trace() {
    // Acceptance criterion: the golden trace of a post-restore run is
    // byte-identical to a no-restart run for the same workload suffix.
    let path = tmp("golden.journal");
    {
        let mut seed = Kernel::new(KernelConfig::for_tests());
        preload(&mut seed);
        assert!(seed.persist_kv(&path).unwrap());
    }

    let mut cfg = KernelConfig::for_tests();
    cfg.telemetry = true;
    let mut fresh = Kernel::new(cfg.clone());
    preload(&mut fresh);

    let mut warm_cfg = cfg;
    warm_cfg.journal_path = Some(path.clone());
    let mut warm = Kernel::new(warm_cfg);
    assert!(warm.restored().is_some());

    let (fresh_trace, fresh_fp) = rag_workload(&mut fresh);
    let (warm_trace, warm_fp) = rag_workload(&mut warm);
    assert_eq!(fresh_trace, warm_trace, "chrome traces must be byte-identical");
    assert_eq!(fresh_fp, warm_fp, "trace fingerprints must match");
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_journal_write_is_recovered_on_replay() {
    let path = tmp("torn.journal");
    let mut cfg = KernelConfig::for_tests();
    cfg.faults = FaultPlan { journal_write_fault_rate: 1.0, ..FaultPlan::none() };
    cfg.telemetry = true;
    let mut k = Kernel::new(cfg);
    preload(&mut k);
    assert!(!k.persist_kv(&path).unwrap(), "injected fault must tear the tail");
    assert_eq!(k.fault_stats().journal_write_failures, 1);
    assert!(
        k.export_chrome_trace().contains("journal_write"),
        "fault site must be visible in telemetry"
    );

    // Replay of the torn file: no panic, typed tear detail, valid prefix
    // only, and the kernel still boots and serves.
    let mut warm_cfg = KernelConfig::for_tests();
    warm_cfg.journal_path = Some(path.clone());
    let mut warm = Kernel::new(warm_cfg);
    if let Some(report) = warm.restored() {
        assert_eq!(report.torn, Some(KvError::JournalTorn));
        assert!(report.files <= 1);
    }
    warm.store().verify().unwrap();
    let pid = warm.spawn_process("after-tear", "still serving", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        sampling::generate(ctx, kv, &prompt, &GenOpts { max_tokens: 8, ..Default::default() })?;
        ctx.kv_remove(kv)?;
        Ok(())
    });
    warm.run();
    assert!(warm.record(pid).unwrap().status.is_ok());
    std::fs::remove_file(&path).ok();
}
