//! Failure injection and resource-limit edge cases: the kernel must contain
//! every failure to the offending process.

use symphony::{
    ExitStatus, Kernel, KernelConfig, Limits, SimDuration, SysError, ToolOutcome, ToolSpec,
};

fn kernel() -> Kernel {
    Kernel::new(KernelConfig::for_tests())
}

#[test]
fn syscall_limit_cuts_off_runaway_process() {
    let mut k = kernel();
    let limits = Limits {
        max_syscalls: Some(10),
        ..Default::default()
    };
    let pid = k.spawn_process_with_limits("runaway", "", limits, |ctx| {
        for i in 0..100 {
            if let Err(e) = ctx.emit(&format!("{i}")) {
                return Err(e);
            }
        }
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert_eq!(
        rec.status,
        ExitStatus::Error(SysError::LimitExceeded("syscalls"))
    );
    // The first 10 syscalls went through.
    assert_eq!(rec.output, "0123456789");
}

#[test]
fn tool_call_limit() {
    let mut k = kernel();
    k.register_tool(
        "t",
        ToolSpec::fixed(SimDuration::from_millis(1), |_| ToolOutcome::Ok("ok".into())),
    );
    let limits = Limits {
        max_tool_calls: Some(2),
        ..Default::default()
    };
    let pid = k.spawn_process_with_limits("tools", "", limits, |ctx| {
        ctx.call_tool("t", "")?;
        ctx.call_tool("t", "")?;
        let err = ctx.call_tool("t", "").unwrap_err();
        assert_eq!(err, SysError::LimitExceeded("tool_calls"));
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
}

#[test]
fn send_to_finished_process_errors() {
    let mut k = kernel();
    let dead = k.spawn_process("dies-first", "", |_| Ok(()));
    k.run();
    assert!(k.record(dead).unwrap().exited_at.is_some());
    let sender = k.spawn_process("sender", "", move |ctx| {
        assert_eq!(ctx.send_msg(dead, "hello?"), Err(SysError::NotFound));
        // Lookup by name also reports it gone.
        assert_eq!(ctx.lookup_process("dies-first")?, None);
        Ok(())
    });
    k.run();
    assert!(k.record(sender).unwrap().status.is_ok());
}

#[test]
fn crashed_child_surfaces_through_join() {
    let mut k = kernel();
    let pid = k.spawn_process("parent", "", |ctx| {
        let t = ctx.spawn(|_| panic!("child bug"))?;
        let status = ctx.join(t)?;
        assert_eq!(status, ExitStatus::Crashed);
        // The parent carries on fine.
        ctx.emit("survived")?;
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok());
    assert_eq!(rec.output, "survived");
}

#[test]
fn process_lives_until_last_thread_exits() {
    let mut k = kernel();
    let pid = k.spawn_process("main-exits-early", "", |ctx| {
        ctx.spawn(|tctx| {
            tctx.sleep(SimDuration::from_secs(2))?;
            tctx.emit("late child output")?;
            Ok(())
        })?;
        Ok(()) // Main returns immediately; the child still runs.
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok(), "main thread status is the process status");
    assert_eq!(rec.output, "late child output");
    assert!(
        rec.exited_at.unwrap() >= symphony::SimTime::ZERO + SimDuration::from_secs(2),
        "exit time is the LAST thread's exit"
    );
    // Anonymous files of the late child are reclaimed at process end.
    assert_eq!(k.store().gpu_pages_used(), 0);
}

#[test]
fn error_in_one_thread_does_not_kill_siblings() {
    let mut k = kernel();
    let pid = k.spawn_process("mixed", "", |ctx| {
        let bad = ctx.spawn(|c| c.kv_open("missing.kv").map(|_| ()))?;
        let good = ctx.spawn(|c| c.emit("good ran"))?;
        assert!(matches!(ctx.join(bad)?, ExitStatus::Error(_)));
        assert!(ctx.join(good)?.is_ok());
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok());
    assert!(rec.output.contains("good ran"));
}

#[test]
fn join_on_unknown_tid_is_not_found() {
    let mut k = kernel();
    let pid = k.spawn_process("joiner", "", |ctx| {
        assert_eq!(ctx.join(symphony::Tid(9999)).unwrap_err(), SysError::NotFound);
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
}

#[test]
fn double_join_returns_same_status() {
    let mut k = kernel();
    let pid = k.spawn_process("double-join", "", |ctx| {
        let t = ctx.spawn(|_| Ok(()))?;
        let s1 = ctx.join(t)?;
        let s2 = ctx.join(t)?;
        assert_eq!(s1, s2);
        assert!(s1.is_ok());
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
}

#[test]
fn preload_duplicate_path_fails_cleanly() {
    let mut k = kernel();
    let toks = k.tokenizer().encode("x");
    k.preload_kv("dup.kv", &toks, symphony::Mode::SHARED_READ, false)
        .unwrap();
    let err = k
        .preload_kv("dup.kv", &toks, symphony::Mode::SHARED_READ, false)
        .unwrap_err();
    assert!(matches!(err, SysError::Kv(symphony_kvfs::KvError::AlreadyExists)));
}

#[test]
fn run_returns_number_of_exited_processes() {
    let mut k = kernel();
    k.spawn_process("a", "", |_| Ok(()));
    k.spawn_process("b", "", |_| Ok(()));
    assert_eq!(k.run(), 2);
    k.spawn_process("c", "", |_| Ok(()));
    assert_eq!(k.run(), 1);
}

#[test]
fn tool_failure_mid_parallel_search_is_contained() {
    // A ToT-style LIP where one branch's tool fails: the LIP inspects join
    // results and completes with the surviving branches.
    let mut k = kernel();
    let n = std::cell::Cell::new(0u32);
    k.register_tool(
        "flaky",
        ToolSpec::fixed(SimDuration::from_millis(5), move |_| {
            // Fails on every second invocation (stateful via closure).
            n.set(n.get() + 1);
            if n.get() % 2 == 0 {
                ToolOutcome::Failed("transient".into())
            } else {
                ToolOutcome::Ok("data".into())
            }
        }),
    );
    let pid = k.spawn_process("search", "", |ctx| {
        let mut tids = Vec::new();
        for i in 0..4 {
            tids.push(ctx.spawn(move |c| {
                let data = c.call_tool("flaky", &i.to_string())?;
                c.emit(&format!("[{i}:{data}]"))?;
                Ok(())
            })?);
        }
        let ok = tids
            .into_iter()
            .filter(|&t| ctx.join(t).map(|s| s.is_ok()).unwrap_or(false))
            .count();
        ctx.emit(&format!(" ok={ok}"))?;
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok());
    assert!(rec.output.contains("ok=2"), "half the branches survive: {}", rec.output);
}
