//! Property tests for the kernel WAL: recovery from an arbitrarily
//! truncated log never panics, and whatever valid frame-prefix survives the
//! cut recovers a *consistent* state — every program that completes after
//! resume produces byte-identical output to the uninterrupted run.
//!
//! An arbitrary byte cut models a torn write: the reader truncates to the
//! longest valid frame prefix, and frames are appended in causal order
//! (a delivery's `IpcSend` precedes its `IpcRecv`; a spawn precedes the
//! process's effects), so any prefix is a state some slower crash could
//! have produced — just with a longer live tail to re-execute.

use std::sync::Arc;

use proptest::prelude::*;
use symphony::sampling::{self, GenOpts};
use symphony::{
    FaultPlan, Kernel, KernelConfig, ProgramImage, SimDuration, SysError, ToolOutcome, ToolSpec,
    WalConfig, WalError,
};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("symphony-propwal-{}-{}", std::process::id(), name))
}

fn tool() -> ToolSpec {
    ToolSpec::fixed(SimDuration::from_millis(2), |args| ToolOutcome::Ok(format!("hit:{args}")))
}

/// Pair of LIPs: a worker that decodes, calls the tool and reports, and a
/// collector that echoes what it received. Deterministic data, no clock
/// values in outputs.
fn worker_image() -> ProgramImage {
    Arc::new(|ctx| {
        let args = ctx.args();
        let prompt = ctx.tokenize(&format!("query {args}"))?;
        let kv = ctx.kv_create()?;
        let gen = sampling::generate(
            ctx,
            kv,
            &prompt,
            &GenOpts { max_tokens: 4, temperature: 0.0, ..Default::default() },
        )?;
        let doc = ctx.call_tool("lookup", &args)?;
        ctx.emit(&format!("{args}={}|{doc}", ctx.detokenize(&gen.tokens)?))?;
        let to = ctx.lookup_process("collector")?.ok_or(SysError::NotFound)?;
        ctx.send_msg(to, &format!("w{args}"))?;
        ctx.kv_remove(kv)?;
        Ok(())
    })
}

fn collector_image() -> ProgramImage {
    Arc::new(|ctx| {
        let mut got = Vec::new();
        for _ in 0..2 {
            got.push(ctx.recv_msg()?.data);
        }
        got.sort();
        ctx.emit(&got.join("+"))?;
        Ok(())
    })
}

fn resolver(name: &str) -> Option<ProgramImage> {
    match name {
        "collector" => Some(collector_image()),
        n if n.starts_with("worker") => Some(worker_image()),
        _ => None,
    }
}

fn config(path: &std::path::Path, crash_at: Option<u64>) -> KernelConfig {
    let mut cfg = KernelConfig::for_tests();
    cfg.wal = Some(WalConfig::new(path).with_checkpoint_every(SimDuration::from_millis(2)));
    cfg.faults = FaultPlan { crash_at_boundary: crash_at, ..FaultPlan::default() };
    cfg
}

fn run_workload(k: &mut Kernel) {
    k.register_tool("lookup", tool());
    k.spawn_durable("collector", "", collector_image());
    k.spawn_durable("worker0", "0", worker_image());
    k.spawn_durable("worker1", "1", worker_image());
    k.run();
}

/// One full-run WAL plus the uninterrupted outputs, computed once.
fn baseline() -> (Vec<u8>, std::collections::BTreeMap<String, String>) {
    let path = tmp("baseline.wal");
    let mut k = Kernel::new(config(&path, None));
    run_workload(&mut k);
    let outputs = k
        .records()
        .filter(|r| r.status.is_ok())
        .map(|r| (r.name.clone(), r.output.clone()))
        .collect();
    let bytes = std::fs::read(&path).expect("wal written");
    std::fs::remove_file(&path).ok();
    (bytes, outputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cut the WAL at any byte; recovery must never panic, must reject
    /// cuts inside the header with a typed error, and must otherwise
    /// resume into a run whose finished programs match the uninterrupted
    /// outputs exactly.
    #[test]
    fn truncated_wal_recovers_a_consistent_prefix(frac in 0.0f64..1.0, case in 0u64..u64::MAX) {
        let (bytes, expected) = baseline();
        let cut = (bytes.len() as f64 * frac) as usize;
        let path = tmp(&format!("cut-{case}"));
        std::fs::write(&path, &bytes[..cut]).unwrap();

        match Kernel::recover(config(&path, None)) {
            Err(WalError::Unreadable | WalError::Incompatible) => {
                // Only a cut inside the fixed-size header is unreadable.
                prop_assert!(cut < 20, "cut {cut} of {} rejected", bytes.len());
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?} at cut {cut}"),
            Ok((mut k, report)) => {
                prop_assert!(cut >= 20);
                prop_assert!(report.wal_bytes as usize <= cut);
                let resumed = k.resume_programs(resolver);
                prop_assert_eq!(resumed.lost, 0);
                k.register_tool("lookup", tool());
                k.run();
                prop_assert!(k.crashed().is_none());
                for r in k.records() {
                    if r.exited_at.is_some() {
                        prop_assert!(r.status.is_ok(), "{} failed after cut {cut}", r.name);
                        prop_assert_eq!(
                            Some(&r.output),
                            expected.get(&r.name),
                            "{} diverged after cut {}", r.name, cut
                        );
                    }
                }
                // A cut past the final frame loses nothing: everything
                // must finish (possibly restored as already-finished).
                if cut == bytes.len() {
                    let done = k.records().filter(|r| r.exited_at.is_some()).count();
                    prop_assert_eq!(done, expected.len());
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// A crash mid-run followed by truncating the *tail* of the WAL (torn
    /// final write) still recovers: the torn flag is surfaced and the
    /// resumed run completes consistently.
    #[test]
    fn torn_tail_after_crash_recovers(drop_tail in 1usize..64, boundary in 5u64..40) {
        let path = tmp(&format!("torn-{boundary}-{drop_tail}"));
        {
            let mut k = Kernel::new(config(&path, Some(boundary)));
            run_workload(&mut k);
            prop_assume!(k.crashed() == Some(boundary));
        }
        let bytes = std::fs::read(&path).unwrap();
        prop_assume!(bytes.len() > 20 + drop_tail);
        std::fs::write(&path, &bytes[..bytes.len() - drop_tail]).unwrap();

        let (mut k, _report) = Kernel::recover(config(&path, None)).unwrap();
        let resumed = k.resume_programs(resolver);
        prop_assert_eq!(resumed.lost, 0);
        k.register_tool("lookup", tool());
        k.run();
        prop_assert!(k.crashed().is_none());
        for r in k.records() {
            if r.exited_at.is_some() {
                prop_assert!(r.status.is_ok());
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
