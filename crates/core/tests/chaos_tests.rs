//! Chaos suite for the fault-injection & resilience subsystem.
//!
//! Three properties are asserted throughout:
//!
//! 1. **Containment** — injected faults fail the offending operation (or
//!    process) with a *typed* [`SysError`]; siblings keep running and no
//!    panic escapes a LIP.
//! 2. **Determinism** — two kernels with identical seeds and fault plans
//!    produce byte-identical outputs, trace fingerprints and stats, and an
//!    all-zero plan is byte-identical to the resilience machinery being
//!    switched off entirely.
//! 3. **Exact accounting** — a retried tool call occupies exactly the sum
//!    of its per-attempt charges plus backoff delays on the virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use symphony::{
    AdmissionPolicy, BreakerPolicy, ExitStatus, FaultPlan, Kernel, KernelConfig, Limits,
    RetryPolicy, SimDuration, SysError, ToolOutcome, ToolSpec,
};

// ---- exact virtual-time accounting -----------------------------------------

#[test]
fn exhausted_retries_charge_exact_virtual_time() {
    let mut cfg = KernelConfig::for_tests();
    // 3 attempts, backoffs 10 ms then 20 ms, no jitter: exact arithmetic.
    cfg.tool_retry = Some(RetryPolicy::exponential(3, SimDuration::from_millis(10)).without_jitter());
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "down",
        ToolSpec::fixed(SimDuration::from_millis(7), |_| {
            ToolOutcome::Failed("503".into())
        }),
    );
    let pid = k.spawn_process("caller", "", |ctx| {
        let before = ctx.now()?;
        let err = ctx.call_tool("down", "").unwrap_err();
        assert_eq!(err, SysError::ToolFailed("503".into()));
        let elapsed = ctx.now()?.duration_since(before);
        // 3 × 7 ms attempts + (10 + 20) ms backoff = 51 ms, exactly.
        assert_eq!(elapsed, SimDuration::from_millis(51), "elapsed={elapsed}");
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
    let rs = k.resilience_stats();
    assert_eq!(rs.tool_retries, 2);
    assert_eq!(rs.tool_calls_exhausted, 1);
    assert_eq!(rs.tool_timeouts, 0);
}

#[test]
fn successful_retry_charges_failed_attempts_too() {
    let mut cfg = KernelConfig::for_tests();
    cfg.tool_retry = Some(RetryPolicy::exponential(5, SimDuration::from_millis(4)).without_jitter());
    let mut k = Kernel::new(cfg);
    // Fails twice, then succeeds.
    let calls = Arc::new(AtomicU64::new(0));
    let c = calls.clone();
    k.register_tool(
        "flaky",
        ToolSpec::fixed(SimDuration::from_millis(3), move |_| {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                ToolOutcome::Failed("503".into())
            } else {
                ToolOutcome::Ok("finally".into())
            }
        }),
    );
    let pid = k.spawn_process("caller", "", |ctx| {
        let before = ctx.now()?;
        assert_eq!(ctx.call_tool("flaky", "")?, "finally");
        let elapsed = ctx.now()?.duration_since(before);
        // 3 × 3 ms attempts + (4 + 8) ms backoff = 21 ms.
        assert_eq!(elapsed, SimDuration::from_millis(21), "elapsed={elapsed}");
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
    assert_eq!(calls.load(Ordering::SeqCst), 3);
    let rs = k.resilience_stats();
    assert_eq!(rs.tool_retries, 2);
    assert_eq!(rs.tool_calls_exhausted, 0, "the call ultimately succeeded");
}

#[test]
fn tool_timeout_clamps_each_attempt() {
    let mut k = Kernel::new(KernelConfig::for_tests());
    k.register_tool(
        "slow",
        ToolSpec::fixed(SimDuration::from_millis(500), |_| ToolOutcome::Ok("late".into())),
    );
    let limits = Limits {
        tool_timeout: Some(SimDuration::from_millis(20)),
        ..Default::default()
    };
    let pid = k.spawn_process_with_limits("impatient", "", limits, |ctx| {
        let before = ctx.now()?;
        assert_eq!(ctx.call_tool("slow", "").unwrap_err(), SysError::Timeout);
        // Charged the timeout, not the full 500 ms latency.
        assert_eq!(
            ctx.now()?.duration_since(before),
            SimDuration::from_millis(20)
        );
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
    assert_eq!(k.resilience_stats().tool_timeouts, 1);
}

// ---- deadlines --------------------------------------------------------------

#[test]
fn deadline_wakes_blocked_receiver_with_typed_error() {
    let mut k = Kernel::new(KernelConfig::for_tests());
    let limits = Limits {
        deadline: Some(SimDuration::from_millis(10)),
        ..Default::default()
    };
    // Nobody ever sends to this process: without a deadline it would be a
    // deadlock the kernel merely reports; with one it is woken and killed.
    let doomed = k.spawn_process_with_limits("doomed", "", limits, |ctx| {
        ctx.recv_msg()?;
        Ok(())
    });
    let healthy = k.spawn_process("healthy", "", |ctx| {
        ctx.sleep(SimDuration::from_millis(50))?;
        ctx.emit("fine")?;
        Ok(())
    });
    k.run();
    let rec = k.record(doomed).unwrap();
    assert_eq!(rec.status, ExitStatus::Error(SysError::DeadlineExceeded));
    assert_eq!(
        rec.exited_at.unwrap().duration_since(rec.spawned_at),
        SimDuration::from_millis(10)
    );
    assert!(k.record(healthy).unwrap().status.is_ok());
    assert_eq!(k.resilience_stats().deadline_kills, 1);
    assert_eq!(k.live_threads(), 0, "no thread left behind");
}

#[test]
fn deadline_fails_syscalls_after_expiry() {
    let mut k = Kernel::new(KernelConfig::for_tests());
    let limits = Limits {
        deadline: Some(SimDuration::from_millis(5)),
        ..Default::default()
    };
    let pid = k.spawn_process_with_limits("slowpoke", "", limits, |ctx| {
        ctx.emit("started;")?;
        ctx.sleep(SimDuration::from_millis(20))?;
        // Past the deadline: every further syscall fails.
        assert_eq!(ctx.emit("too late").unwrap_err(), SysError::DeadlineExceeded);
        Err(SysError::DeadlineExceeded)
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert_eq!(rec.status, ExitStatus::Error(SysError::DeadlineExceeded));
    assert_eq!(rec.output, "started;");
}

// ---- circuit breaker ---------------------------------------------------------

#[test]
fn breaker_opens_fast_fails_then_recovers() {
    let mut cfg = KernelConfig::for_tests();
    cfg.breaker = Some(BreakerPolicy::new(3, SimDuration::from_millis(100)));
    let mut k = Kernel::new(cfg);
    // Down for the first 3 calls that reach it, healthy afterwards.
    let calls = Arc::new(AtomicU64::new(0));
    let c = calls.clone();
    k.register_tool(
        "api",
        ToolSpec::fixed(SimDuration::from_millis(2), move |_| {
            if c.fetch_add(1, Ordering::SeqCst) < 3 {
                ToolOutcome::Failed("503".into())
            } else {
                ToolOutcome::Ok("200".into())
            }
        }),
    );
    let pid = k.spawn_process("client", "", |ctx| {
        // Three failures trip the breaker.
        for _ in 0..3 {
            assert!(matches!(
                ctx.call_tool("api", "").unwrap_err(),
                SysError::ToolFailed(_)
            ));
        }
        // Now fast-failed without touching the tool.
        assert_eq!(ctx.call_tool("api", "").unwrap_err(), SysError::Unavailable);
        assert_eq!(ctx.call_tool("api", "").unwrap_err(), SysError::Unavailable);
        // Wait out the cooldown: the half-open trial goes through and the
        // (now healthy) tool closes the breaker again.
        ctx.sleep(SimDuration::from_millis(150))?;
        assert_eq!(ctx.call_tool("api", "")?, "200");
        assert_eq!(ctx.call_tool("api", "")?, "200");
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok(), "{:?}", k.record(pid).unwrap().status);
    assert_eq!(calls.load(Ordering::SeqCst), 5, "two calls never reached the tool");
    let rs = k.resilience_stats();
    assert_eq!(rs.breaker_trips, 1);
    assert_eq!(rs.breaker_rejections, 2);
}

// ---- admission control -------------------------------------------------------

#[test]
fn kv_pressure_requeues_then_succeeds() {
    let mut cfg = KernelConfig::for_tests();
    // Pool of 16 pages × 4 tokens: one hog can exhaust it.
    cfg.gpu_kv_bytes_override =
        Some(16 * 4 * cfg.model.kv_bytes_per_token());
    cfg.admission = Some(AdmissionPolicy {
        max_queue: 64,
        retry_delay: SimDuration::from_millis(5),
        max_retries: 40,
    });
    let mut k = Kernel::new(cfg);
    // The hog fills most of the pool, holds it briefly, then exits (its
    // files are reclaimed).
    k.spawn_process("hog", "", |ctx| {
        let kv = ctx.kv_create()?;
        let tokens: Vec<(u32, u32)> = (0..56).map(|i| (i + 1, i)).collect();
        ctx.pred(kv, &tokens)?;
        ctx.sleep(SimDuration::from_millis(60))?;
        Ok(())
    });
    // The victim arrives during the squeeze and needs more than remains.
    let victim = k.spawn_process("victim", "", |ctx| {
        ctx.sleep(SimDuration::from_millis(1))?;
        let kv = ctx.kv_create()?;
        let tokens: Vec<(u32, u32)> = (0..16).map(|i| (i + 1, i)).collect();
        ctx.pred(kv, &tokens)?;
        ctx.emit("made it")?;
        Ok(())
    });
    k.run();
    let rec = k.record(victim).unwrap();
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    assert_eq!(rec.output, "made it");
    assert!(
        k.resilience_stats().preds_requeued > 0,
        "the victim must have been backed off at least once: {:?}",
        k.resilience_stats()
    );
}

#[test]
fn exhausted_requeues_shed_with_busy() {
    let mut cfg = KernelConfig::for_tests();
    cfg.gpu_kv_bytes_override =
        Some(16 * 4 * cfg.model.kv_bytes_per_token());
    cfg.admission = Some(AdmissionPolicy {
        max_queue: 64,
        retry_delay: SimDuration::from_millis(2),
        max_retries: 3,
    });
    let mut k = Kernel::new(cfg);
    // The hog pins the pool and never lets go (until exit at 500 ms).
    k.spawn_process("hog", "", |ctx| {
        let kv = ctx.kv_create()?;
        let tokens: Vec<(u32, u32)> = (0..56).map(|i| (i + 1, i)).collect();
        ctx.pred(kv, &tokens)?;
        ctx.sleep(SimDuration::from_millis(500))?;
        Ok(())
    });
    let victim = k.spawn_process("victim", "", |ctx| {
        ctx.sleep(SimDuration::from_millis(1))?;
        let kv = ctx.kv_create()?;
        let tokens: Vec<(u32, u32)> = (0..16).map(|i| (i + 1, i)).collect();
        assert_eq!(ctx.pred(kv, &tokens).unwrap_err(), SysError::Busy);
        Ok(())
    });
    k.run();
    assert!(k.record(victim).unwrap().status.is_ok());
    let rs = k.resilience_stats();
    assert_eq!(rs.preds_requeued, 3, "all requeue budget used: {rs:?}");
    assert!(rs.preds_shed >= 1, "then shed: {rs:?}");
}

// ---- fault containment -------------------------------------------------------

#[test]
fn pred_faults_are_contained_and_retryable() {
    let mut cfg = KernelConfig::for_tests();
    cfg.faults = FaultPlan {
        pred_fault_rate: 0.05,
        ..FaultPlan::default()
    };
    let mut k = Kernel::new(cfg);
    // A defensive LIP retries transient pred faults; with 60 preds at 5%
    // and 5 tries each, it survives with overwhelming probability (and the
    // run is seeded, so "overwhelming" means "always, for this seed").
    let tough = k.spawn_process("tough", "", |ctx| {
        let kv = ctx.kv_create()?;
        let mut pos = 0u32;
        for i in 0..60u32 {
            let tok = (i % 50) + 1;
            let mut tries = 0;
            loop {
                match ctx.pred(kv, &[(tok, pos)]) {
                    Ok(_) => break,
                    Err(SysError::Fault(site)) if tries < 5 => {
                        assert_eq!(site, "gpu.pred");
                        tries += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
            pos += 1;
        }
        assert_eq!(ctx.kv_len(kv)?, 60, "every token eventually landed");
        Ok(())
    });
    k.run();
    let rec = k.record(tough).unwrap();
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    let fs = k.fault_stats();
    assert!(fs.pred_faults > 0, "faults must actually fire: {fs:?}");
    assert_eq!(
        k.gpu_metrics().requests_faulted,
        fs.pred_faults,
        "injector and GPU agree"
    );
    // Faulted work left no partial KV state behind.
    k.store().verify().unwrap();
}

#[test]
fn swap_in_faults_surface_typed_and_are_retryable() {
    let mut cfg = KernelConfig::for_tests();
    cfg.faults = FaultPlan {
        swap_in_fault_rate: 0.5,
        ..FaultPlan::default()
    };
    let mut k = Kernel::new(cfg);
    let pid = k.spawn_process("swapper", "", |ctx| {
        let kv = ctx.kv_create()?;
        let tokens: Vec<(u32, u32)> = (0..12).map(|i| (i + 1, i)).collect();
        ctx.pred(kv, &tokens)?;
        for _ in 0..10 {
            ctx.kv_swap_out(kv)?;
            let mut tries = 0;
            loop {
                match ctx.kv_swap_in(kv) {
                    Ok(()) => break,
                    Err(SysError::Fault("kv.swap_in")) if tries < 20 => tries += 1,
                    Err(e) => return Err(e),
                }
            }
            // Swapped back in: pred works again.
            ctx.pred(kv, &[(99, ctx.kv_next_pos(kv)?)])?;
        }
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok(), "{:?}", k.record(pid).unwrap().status);
    assert!(k.fault_stats().swap_in_failures > 0);
    k.store().verify().unwrap();
}

#[test]
fn unprotected_process_fails_typed_while_siblings_survive() {
    let mut cfg = KernelConfig::for_tests();
    cfg.faults = FaultPlan::tools_only(1.0); // every tool attempt faults
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "api",
        ToolSpec::fixed(SimDuration::from_millis(1), |_| ToolOutcome::Ok("ok".into())),
    );
    // No retry policy: the very first injected fault kills this call.
    let naive = k.spawn_process("naive", "", |ctx| {
        ctx.call_tool("api", "")?;
        Ok(())
    });
    let sibling = k.spawn_process("sibling", "", |ctx| {
        let kv = ctx.kv_create()?;
        ctx.pred(kv, &[(1, 0), (2, 1), (3, 2)])?;
        ctx.emit("untouched")?;
        Ok(())
    });
    k.run();
    assert_eq!(
        k.record(naive).unwrap().status,
        ExitStatus::Error(SysError::Fault("tool"))
    );
    let rec = k.record(sibling).unwrap();
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    assert_eq!(rec.output, "untouched");
    // The failed process's resources were reclaimed.
    assert_eq!(k.store().gpu_pages_used(), 0);
}

// ---- determinism -------------------------------------------------------------

/// A mixed workload exercising preds, tool calls with retries, swaps and
/// IPC under an aggressive fault plan. Returns everything observable.
fn chaos_run(seed: u64) -> (u64, Vec<(String, String, bool)>, String) {
    let mut cfg = KernelConfig::for_tests();
    cfg.seed = seed;
    cfg.faults = FaultPlan {
        tool_fault_rate: 0.15,
        tool_hang_fraction: 0.3,
        tool_stall_factor: 20.0,
        pred_fault_rate: 0.02,
        swap_in_fault_rate: 0.1,
        ipc_drop_rate: 0.2,
        journal_write_fault_rate: 0.0,
        ..FaultPlan::default()
    };
    cfg.tool_retry =
        Some(RetryPolicy::exponential(4, SimDuration::from_millis(5)));
    cfg.breaker = Some(BreakerPolicy::new(5, SimDuration::from_millis(50)));
    cfg.admission = Some(AdmissionPolicy::bounded(128));
    cfg.default_limits = Limits {
        tool_timeout: Some(SimDuration::from_millis(200)),
        deadline: Some(SimDuration::from_secs(30)),
        ..Default::default()
    };
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "search",
        ToolSpec::new(SimDuration::from_millis(20), |args| {
            ToolOutcome::Ok(format!("results:{args}"))
        }),
    );
    for i in 0..10u64 {
        let name = format!("worker-{i}");
        k.spawn_process(&name, &i.to_string(), |ctx| {
            let kv = ctx.kv_create()?;
            let mut pos = 0u32;
            for round in 0..8u32 {
                // Generation with LIP-level fault retry.
                let tok = (round % 40) + 1;
                let mut tries = 0;
                loop {
                    match ctx.pred(kv, &[(tok, pos)]) {
                        Ok(_) => break,
                        Err(SysError::Fault(_)) | Err(SysError::Busy) if tries < 8 => tries += 1,
                        Err(e) => return Err(e),
                    }
                }
                pos += 1;
                // Server-side tool call under kernel retry + breaker.
                match ctx.call_tool("search", "q") {
                    Ok(_) | Err(SysError::Fault(_)) | Err(SysError::Timeout)
                    | Err(SysError::Unavailable) | Err(SysError::ToolFailed(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            ctx.emit(&format!("done pos={pos}"))?;
            Ok(())
        });
    }
    k.run();
    let procs: Vec<(String, String, bool)> = k
        .records()
        .map(|r| (r.name.clone(), r.output.clone(), r.status.is_ok()))
        .collect();
    let fs = k.fault_stats();
    let rs = k.resilience_stats();
    let summary = format!(
        "{fs:?} {rs:?} gpu_faulted={} tools={}",
        k.gpu_metrics().requests_faulted,
        k.gpu_metrics().requests_ok,
    );
    (k.trace().fingerprint(), procs, summary)
}

#[test]
fn chaos_same_seed_runs_are_byte_identical() {
    let (fp1, procs1, stats1) = chaos_run(0xC4A05);
    let (fp2, procs2, stats2) = chaos_run(0xC4A05);
    assert_eq!(fp1, fp2, "trace fingerprints diverged");
    assert_eq!(procs1, procs2, "per-process outputs diverged");
    assert_eq!(stats1, stats2, "stats diverged");
    // The chaos actually happened (tool faults fired) and was recorded.
    assert!(!stats1.contains("tool_failures: 0"), "{stats1}");
}

#[test]
fn chaos_run_contains_all_failures() {
    let (_, procs, summary) = chaos_run(7);
    assert_eq!(procs.len(), 10);
    let survivors = procs.iter().filter(|(_, _, ok)| *ok).count();
    assert!(
        survivors >= 8,
        "defensive LIPs should mostly survive: {survivors}/10 ({summary})"
    );
}

#[test]
fn different_seeds_diverge() {
    let (fp1, ..) = chaos_run(1);
    let (fp2, ..) = chaos_run(2);
    assert_ne!(fp1, fp2, "fault schedule must depend on the seed");
}

#[test]
fn zero_rate_plan_is_identical_to_machinery_off() {
    fn run(resilience_on: bool) -> (u64, Vec<String>) {
        let mut cfg = KernelConfig::for_tests();
        if resilience_on {
            // Machinery armed, but nothing ever fails or queues deep
            // enough to engage it: must be byte-identical to off.
            cfg.faults = FaultPlan::none();
            cfg.tool_retry =
                Some(RetryPolicy::exponential(5, SimDuration::from_millis(10)));
            cfg.breaker = Some(BreakerPolicy::new(3, SimDuration::from_millis(50)));
            cfg.admission = Some(AdmissionPolicy::bounded(1024));
        }
        let mut k = Kernel::new(cfg);
        k.register_tool(
            "echo",
            ToolSpec::new(SimDuration::from_millis(10), |a| ToolOutcome::Ok(a.into())),
        );
        for i in 0..4u64 {
            k.spawn_process(&format!("p{i}"), "", |ctx| {
                let kv = ctx.kv_create()?;
                let mut dist = ctx
                    .pred_positions(kv, &[1, 2, 3, 4], 0)?
                    .pop()
                    .ok_or(SysError::BadArgument)?;
                for pos in 4..12u32 {
                    let t = ctx.sample(&dist);
                    dist = ctx.pred(kv, &[(t, pos)])?.remove(0);
                    ctx.emit_tokens(&[t])?;
                }
                ctx.call_tool("echo", "ping")?;
                Ok(())
            });
        }
        k.run();
        (
            k.trace().fingerprint(),
            k.records().map(|r| r.output.clone()).collect(),
        )
    }
    assert_eq!(run(false), run(true));
}
