//! Kernel crash/recovery chaos tests.
//!
//! The centrepiece kills the kernel at *every* syscall boundary of a small
//! agent workload (pred loops, a deterministic tool, IPC to a collector,
//! `now`/`lookup` effects), recovers from the WAL, and asserts the union of
//! crashed + recovered execution is indistinguishable from an uninterrupted
//! run: byte-equal per-program outputs, equal exit statuses, and — via a
//! shared side-effect counter inside the tool handler — **zero duplicated
//! tool effects** (exactly-once).
//!
//! Workload constraints these tests respect (documented in
//! `docs/RESILIENCE.md`): single main thread per LIP, args-deterministic
//! tool handlers, no admission shedding, and the collector sorts received
//! messages so live-tail delivery order (which may legally differ during
//! replay, when journalled tool calls complete instantly) cannot leak into
//! outputs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use symphony::sampling::{self, GenOpts};
use symphony::{
    ExitStatus, FaultPlan, Kernel, KernelConfig, ProgramImage, SimDuration, SimTime, SysError,
    ToolOutcome, ToolSpec, WalConfig,
};

/// Unique-per-process temp path so parallel test runs don't collide.
fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("symphony-recovery-{}-{}", std::process::id(), name))
}

const AGENTS: usize = 3;

/// Deterministic tool: output depends only on args; latency is fixed. The
/// shared counter observes real handler firings (replayed calls must not
/// re-fire it).
fn search_tool(fired: Arc<AtomicU64>) -> ToolSpec {
    ToolSpec::fixed(SimDuration::from_millis(4), move |args| {
        fired.fetch_add(1, Ordering::SeqCst);
        ToolOutcome::Ok(format!("doc({args})"))
    })
}

/// Research-agent LIP: greedy-decode a few tokens, consult the tool, stamp
/// the virtual clock, and report to the collector.
fn agent_image() -> ProgramImage {
    Arc::new(|ctx| {
        let args = ctx.args();
        let prompt = ctx.tokenize(&format!("investigate topic {args} thoroughly"))?;
        let kv = ctx.kv_create()?;
        let gen = sampling::generate(
            ctx,
            kv,
            &prompt,
            &GenOpts { max_tokens: 5, temperature: 0.0, ..Default::default() },
        )?;
        let answer = ctx.detokenize(&gen.tokens)?;
        let doc = ctx.call_tool("search", &args)?;
        // Exercise the `now` effect class, but keep the observed value out
        // of the output: virtual timing is NOT part of the equivalence
        // contract (a live tail runs on a clock that skipped replayed
        // latencies), only control flow and data are.
        let t = ctx.now()?;
        assert!(t >= SimTime::ZERO);
        ctx.emit(&format!("{args}:{answer}|{doc}"))?;
        let sink = ctx.lookup_process("sink")?.ok_or(SysError::NotFound)?;
        ctx.send_msg(sink, &format!("done-{args}"))?;
        ctx.kv_remove(kv)?;
        Ok(())
    })
}

/// Collector LIP: receives one report per agent, sorts (delivery order is
/// not part of the equivalence contract), and emits the digest.
fn sink_image() -> ProgramImage {
    Arc::new(|ctx| {
        let mut got = Vec::new();
        for _ in 0..AGENTS {
            got.push(ctx.recv_msg()?.data);
        }
        got.sort();
        ctx.emit(&got.join(","))?;
        Ok(())
    })
}

/// Late-arriving LIP used by the scheduled-durability tests.
fn late_image() -> ProgramImage {
    Arc::new(|ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        let gen = sampling::generate(
            ctx,
            kv,
            &prompt,
            &GenOpts { max_tokens: 4, temperature: 0.0, ..Default::default() },
        )?;
        ctx.emit(&format!("late:{}", ctx.detokenize(&gen.tokens)?))?;
        ctx.kv_remove(kv)?;
        Ok(())
    })
}

fn resolver(name: &str) -> Option<ProgramImage> {
    match name {
        "sink" => Some(sink_image()),
        "late" => Some(late_image()),
        n if n.starts_with("agent") => Some(agent_image()),
        _ => None,
    }
}

fn config(wal: &std::path::Path, crash_at: Option<u64>) -> KernelConfig {
    let mut cfg = KernelConfig::for_tests();
    cfg.wal = Some(WalConfig::new(wal).with_checkpoint_every(SimDuration::from_millis(3)));
    cfg.faults = FaultPlan { crash_at_boundary: crash_at, ..FaultPlan::default() };
    cfg
}

/// Spawns the fleet: the collector first (agents look it up by name), then
/// the agents, then a scheduled program that arrives late in the run.
fn spawn_fleet(k: &mut Kernel) {
    k.spawn_durable("sink", "", sink_image());
    for i in 0..AGENTS {
        k.spawn_durable(&format!("agent{i}"), &format!("{i}"), agent_image());
    }
    k.schedule_durable(
        SimTime::ZERO + SimDuration::from_millis(20),
        "late",
        "a question that arrives later",
        late_image(),
    );
}

/// (name → (output, ok)) for every finished program.
fn outcomes(k: &Kernel) -> BTreeMap<String, (String, bool)> {
    k.records()
        .filter(|r| r.exited_at.is_some())
        .map(|r| (r.name.clone(), (r.output.clone(), r.status.is_ok())))
        .collect()
}

struct Baseline {
    outcomes: BTreeMap<String, (String, bool)>,
    boundaries: u64,
    invocations: u64,
    fired: u64,
}

fn run_baseline(path: &std::path::Path) -> Baseline {
    let fired = Arc::new(AtomicU64::new(0));
    let mut k = Kernel::new(config(path, None));
    k.register_tool("search", search_tool(fired.clone()));
    spawn_fleet(&mut k);
    k.run();
    assert!(k.crashed().is_none());
    let b = Baseline {
        outcomes: outcomes(&k),
        boundaries: k.syscall_boundaries(),
        invocations: k.tool_invocations(),
        fired: fired.load(Ordering::SeqCst),
    };
    assert_eq!(b.outcomes.len(), AGENTS + 2, "fleet + sink + late all finish");
    assert!(b.outcomes.values().all(|(_, ok)| *ok));
    b
}

/// The tentpole chaos sweep: for every syscall boundary `b`, crash there,
/// recover, and demand full equivalence with the uninterrupted run.
#[test]
fn kill_at_every_syscall_boundary_recovers_equivalently() {
    let base_path = tmp("sweep-base.wal");
    let baseline = run_baseline(&base_path);
    assert!(baseline.boundaries > 20, "workload exercises a real kill-point space");

    for b in 1..=baseline.boundaries {
        let path = tmp(&format!("sweep-{b}.wal"));
        let fired = Arc::new(AtomicU64::new(0));

        // Run until the injected crash.
        let crashed_invocations = {
            let mut k = Kernel::new(config(&path, Some(b)));
            k.register_tool("search", search_tool(fired.clone()));
            spawn_fleet(&mut k);
            k.run();
            assert_eq!(k.crashed(), Some(b), "kill-point {b} fires");
            k.tool_invocations()
        };

        // Recover: journalled effects replay, the tail re-executes live.
        let (mut k, report) = Kernel::recover(config(&path, None)).expect("recoverable WAL");
        k.register_tool("search", search_tool(fired.clone()));
        let resumed = k.resume_programs(resolver);
        assert_eq!(resumed.lost, 0, "boundary {b}: every image resolves");
        assert_eq!(report.frames, resumed.frames);
        k.run();
        assert!(k.crashed().is_none());

        assert_eq!(
            outcomes(&k),
            baseline.outcomes,
            "boundary {b}: outputs and statuses match the uninterrupted run"
        );
        assert_eq!(
            crashed_invocations + k.tool_invocations(),
            baseline.invocations,
            "boundary {b}: exactly-once tool invocations across crash + recovery"
        );
        assert_eq!(
            fired.load(Ordering::SeqCst),
            baseline.fired,
            "boundary {b}: no tool handler fired twice"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&base_path).ok();
}

/// Two independent crash+recover sequences with identical configs are
/// byte-identical — recovery itself is deterministic.
#[test]
fn recovery_is_deterministic() {
    let run = |tag: &str| {
        let path = tmp(&format!("det-{tag}.wal"));
        {
            let mut k = Kernel::new(config(&path, Some(17)));
            k.register_tool("search", search_tool(Arc::new(AtomicU64::new(0))));
            spawn_fleet(&mut k);
            k.run();
            assert_eq!(k.crashed(), Some(17));
        }
        let (mut k, _) = Kernel::recover(config(&path, None)).unwrap();
        k.register_tool("search", search_tool(Arc::new(AtomicU64::new(0))));
        k.resume_programs(resolver);
        k.run();
        let out = (outcomes(&k), k.trace().fingerprint());
        std::fs::remove_file(&path).ok();
        out
    };
    assert_eq!(run("a"), run("b"));
}

/// A clean shutdown leaves a WAL from which recovery restores every record
/// as *finished* — nothing re-executes, and the records survive verbatim.
#[test]
fn clean_run_recovers_as_finished_records() {
    let path = tmp("clean.wal");
    let baseline = run_baseline(&path);

    let (mut k, report) = Kernel::recover(config(&path, None)).unwrap();
    k.register_tool("search", search_tool(Arc::new(AtomicU64::new(0))));
    let resumed = k.resume_programs(resolver);
    assert_eq!(resumed.resumed, 0, "nothing was in flight");
    assert_eq!(resumed.finished, AGENTS + 2);
    assert_eq!(resumed.lost, 0);
    assert!(!report.torn);
    k.run();
    assert_eq!(outcomes(&k), baseline.outcomes);
    assert_eq!(k.tool_invocations(), 0, "finished programs never re-execute");
    std::fs::remove_file(&path).ok();
}

/// A durable program *scheduled* for a future arrival survives a crash that
/// lands before it starts: the journalled schedule re-admits it with its
/// pre-assigned thread id, so its output matches the crash-free run.
#[test]
fn scheduled_program_survives_crash_before_arrival() {
    let base_path = tmp("sched-base.wal");
    let baseline = run_baseline(&base_path);
    let late_baseline = baseline.outcomes.get("late").cloned().expect("late ran");

    let path = tmp("sched-crash.wal");
    {
        // Boundary 2 lands well before the 20ms arrival of "late".
        let mut k = Kernel::new(config(&path, Some(2)));
        k.register_tool("search", search_tool(Arc::new(AtomicU64::new(0))));
        spawn_fleet(&mut k);
        k.run();
        assert_eq!(k.crashed(), Some(2));
        assert!(k.records().all(|r| r.name != "late" || r.exited_at.is_none()));
    }
    let (mut k, _) = Kernel::recover(config(&path, None)).unwrap();
    k.register_tool("search", search_tool(Arc::new(AtomicU64::new(0))));
    k.resume_programs(resolver);
    k.run();
    assert_eq!(outcomes(&k).get("late"), Some(&late_baseline));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&base_path).ok();
}

/// An unresolvable image cannot be re-executed: recovery records the
/// program as crashed rather than silently dropping it, and everything
/// else still completes.
#[test]
fn unresolvable_image_is_recorded_as_crashed() {
    let path = tmp("lost.wal");
    {
        let mut k = Kernel::new(config(&path, Some(30)));
        k.register_tool("search", search_tool(Arc::new(AtomicU64::new(0))));
        spawn_fleet(&mut k);
        k.run();
        assert_eq!(k.crashed(), Some(30));
    }
    let (mut k, _) = Kernel::recover(config(&path, None)).unwrap();
    k.register_tool("search", search_tool(Arc::new(AtomicU64::new(0))));
    let resumed =
        k.resume_programs(|name| if name == "sink" { None } else { resolver(name) });
    assert_eq!(resumed.lost, 1, "the sink's image is gone");
    let lost = k
        .records()
        .find(|r| r.name == "sink")
        .expect("lost program still has a record");
    assert!(matches!(lost.status, ExitStatus::Crashed));
    std::fs::remove_file(&path).ok();
}

/// Recovering without a WAL config, or from a missing file, fails with the
/// typed errors rather than panicking.
#[test]
fn recover_error_paths_are_typed() {
    let cfg = KernelConfig::for_tests();
    assert!(matches!(Kernel::recover(cfg), Err(symphony::WalError::Disabled)));

    let cfg = config(&tmp("never-created.wal"), None);
    assert!(matches!(Kernel::recover(cfg), Err(symphony::WalError::Unreadable)));
}
