//! End-to-end kernel tests: LIPs exercising the full syscall surface on the
//! virtual clock.

use symphony::sampling::{self, Constraint, GenOpts, JsonConstraint, TrieConstraint};
use symphony::{
    BatchPolicy, ExitStatus, Kernel, KernelConfig, Limits, Mode, SimDuration, SysError,
    ToolOutcome, ToolSpec,
};

fn kernel() -> Kernel {
    Kernel::new(KernelConfig::for_tests())
}

#[test]
fn basic_completion_lip() {
    let mut k = kernel();
    let pid = k.spawn_process("basic", "hello world", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        let out = sampling::generate(ctx, kv, &prompt, &GenOpts::default())?;
        assert!(out.tokens.len() <= 256);
        ctx.kv_remove(kv)?;
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok());
    assert!(rec.exited_at.is_some());
    assert!(rec.usage.pred_calls > 0);
    assert!(rec.usage.emitted_tokens > 0);
    assert!(!rec.output.is_empty());
    // All process-local files were reclaimed.
    assert_eq!(k.store().gpu_pages_used(), 0);
    k.store().verify().unwrap();
}

#[test]
fn generation_advances_virtual_time() {
    let mut k = kernel();
    let pid = k.spawn_process("timed", "a b c", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        sampling::generate(ctx, kv, &prompt, &GenOpts { max_tokens: 10, ..Default::default() })?;
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    let latency = rec.latency().unwrap();
    assert!(
        latency.as_nanos() > 0,
        "pred batches must consume virtual time"
    );
    assert!(k.gpu_metrics().batches > 0);
}

#[test]
fn deterministic_across_runs() {
    fn run_once() -> (u64, String) {
        let mut k = kernel();
        let mut pids = Vec::new();
        for i in 0..4 {
            let args = format!("request number {i}");
            pids.push(k.spawn_process(&format!("p{i}"), &args, |ctx| {
                let prompt = ctx.tokenize(&ctx.args())?;
                let kv = ctx.kv_create()?;
                sampling::generate(
                    ctx,
                    kv,
                    &prompt,
                    &GenOpts {
                        temperature: 0.8,
                        max_tokens: 20,
                        ..Default::default()
                    },
                )?;
                Ok(())
            }));
        }
        k.run();
        let outputs: String = pids
            .iter()
            .map(|&p| k.record(p).unwrap().output.clone())
            .collect();
        (k.trace().fingerprint(), outputs)
    }
    let (fp1, out1) = run_once();
    let (fp2, out2) = run_once();
    assert_eq!(fp1, fp2, "trace fingerprints must match across runs");
    assert_eq!(out1, out2);
}

#[test]
fn shared_prefix_fork_equivalence() {
    // The central KV-reuse property at the system level: generating after a
    // preloaded + forked prefix equals generating after recomputing the
    // prefix from scratch.
    let mut k = kernel();
    let sys_text = "system prompt about the cache design ".repeat(12);
    let sys_tokens = k.tokenizer().encode(&sys_text);
    k.preload_kv("sys.kv", &sys_tokens, Mode::SHARED_READ, true).unwrap();
    let n_sys = sys_tokens.len() as u32;

    let cached = k.spawn_process("cached", "the question", move |ctx| {
        let prefix = ctx.kv_open("sys.kv")?;
        let kv = ctx.kv_fork(prefix)?;
        assert_eq!(ctx.kv_next_pos(kv)?, n_sys);
        let q = ctx.tokenize(&ctx.args())?;
        sampling::generate(ctx, kv, &q, &GenOpts { max_tokens: 24, ..Default::default() })?;
        Ok(())
    });
    let scratch = k.spawn_process("scratch", "the question", move |ctx| {
        let kv = ctx.kv_create()?;
        let sys = ctx.tokenize(&"system prompt about the cache design ".repeat(12))?;
        let mut all = sys;
        all.extend(ctx.tokenize(&ctx.args())?);
        sampling::generate(ctx, kv, &all, &GenOpts { max_tokens: 24, ..Default::default() })?;
        Ok(())
    });
    k.run();
    let a = &k.record(cached).unwrap().output;
    let b = &k.record(scratch).unwrap().output;
    assert_eq!(a, b, "cache hit must not change model output");
    // The cached process did far less pred work.
    assert!(
        k.record(cached).unwrap().usage.pred_tokens
            < k.record(scratch).unwrap().usage.pred_tokens / 2
    );
}

#[test]
fn parallel_generation_with_threads_and_fork() {
    // Figure 2 of the paper: fork the prefix per suffix, generate in
    // parallel threads, join all.
    let mut k = kernel();
    let prefix_tokens = k.tokenizer().encode("shared context for all branches");
    k.preload_kv("prefix.kv", &prefix_tokens, Mode::SHARED_READ, true).unwrap();

    let pid = k.spawn_process("tot", "", |ctx| {
        let prefix = ctx.kv_open("prefix.kv")?;
        let mut tids = Vec::new();
        for i in 0..3 {
            let branch = ctx.kv_fork(prefix)?;
            tids.push(ctx.spawn(move |tctx| {
                let suffix = tctx.tokenize(&format!("branch {i} query"))?;
                let out = sampling::generate(
                    tctx,
                    branch,
                    &suffix,
                    &GenOpts { max_tokens: 12, emit: false, ..Default::default() },
                )?;
                tctx.emit(&format!("[{i}:{}]", out.tokens.len()))?;
                tctx.kv_remove(branch)?;
                Ok(())
            })?);
        }
        for t in tids {
            let status = ctx.join(t)?;
            assert!(status.is_ok());
        }
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok(), "status: {:?}", rec.status);
    assert_eq!(rec.usage.threads_spawned, 4);
    for i in 0..3 {
        assert!(rec.output.contains(&format!("[{i}:")));
    }
    k.store().verify().unwrap();
}

#[test]
fn fork_cow_shares_pages_across_branches() {
    let mut k = kernel();
    let long_prefix = k.tokenizer().encode(
        "a reasonably long shared prefix that occupies multiple kv pages in the store \
         so that copy on write sharing is actually measurable in the page counts",
    );
    let n = long_prefix.len();
    k.preload_kv("p.kv", &long_prefix, Mode::SHARED_READ, true).unwrap();
    let pages_before = k.store().gpu_pages_used();

    let pid = k.spawn_process("forker", "", move |ctx| {
        let prefix = ctx.kv_open("p.kv")?;
        let mut branches = Vec::new();
        for _ in 0..8 {
            branches.push(ctx.kv_fork(prefix)?);
        }
        // Each branch extends by a couple of tokens.
        for (i, &b) in branches.iter().enumerate() {
            ctx.pred(b, &[(i as u32 + 10, n as u32)])?;
        }
        for b in branches {
            ctx.kv_remove(b)?;
        }
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
    // Only the pinned prefix remains.
    assert_eq!(k.store().gpu_pages_used(), pages_before);
    // COW happened (the prefix tail page was partial and got copied).
    assert!(k.kv_stats().cow_copies > 0 || n % 4 == 0);
}

#[test]
fn tool_calls_have_latency_and_results() {
    let mut k = kernel();
    k.register_tool(
        "weather",
        ToolSpec::fixed(SimDuration::from_millis(30), |args| {
            ToolOutcome::Ok(format!("sunny in {args}"))
        }),
    );
    let pid = k.spawn_process("agent", "", |ctx| {
        let before = ctx.now()?;
        let out = ctx.call_tool("weather", "banff")?;
        let after = ctx.now()?;
        assert_eq!(out, "sunny in banff");
        assert!(after.duration_since(before) >= SimDuration::from_millis(30));
        // Unknown tool surfaces a typed error, not a crash.
        assert_eq!(
            ctx.call_tool("nope", ""),
            Err(SysError::NoSuchTool("nope".into()))
        );
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    // The failed lookup is not an invocation.
    assert_eq!(rec.usage.tool_calls, 1);
}

#[test]
fn tool_failure_is_an_error_not_a_crash() {
    let mut k = kernel();
    k.register_tool(
        "flaky",
        ToolSpec::fixed(SimDuration::from_millis(1), |_| {
            ToolOutcome::Failed("upstream 503".into())
        }),
    );
    let pid = k.spawn_process("agent", "", |ctx| {
        match ctx.call_tool("flaky", "") {
            Err(SysError::ToolFailed(msg)) => {
                assert_eq!(msg, "upstream 503");
                Ok(())
            }
            other => panic!("expected ToolFailed, got {other:?}"),
        }
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
}

#[test]
fn kv_offload_during_io_wait() {
    let mut cfg = KernelConfig::for_tests();
    cfg.offload_on_io_wait = true;
    cfg.offload_min_latency = SimDuration::from_millis(5);
    let mut k = Kernel::new(cfg);
    k.register_tool(
        "slow",
        ToolSpec::fixed(SimDuration::from_millis(100), |_| ToolOutcome::Ok("done".into())),
    );
    let pid = k.spawn_process("io", "context tokens here", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        ctx.pred_positions(kv, &prompt, 0)?;
        ctx.call_tool("slow", "")?;
        // After the tool call the file must be GPU-resident again and
        // usable by pred.
        let pos = ctx.kv_next_pos(kv)?;
        ctx.pred(kv, &[(5, pos)])?;
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
    let stats = k.kv_stats();
    assert!(stats.swapped_out_tokens > 0, "offload should have happened");
    assert_eq!(stats.swapped_out_tokens, stats.swapped_in_tokens);
}

#[test]
fn ipc_between_processes() {
    let mut k = kernel();
    let consumer = k.spawn_process("consumer", "", |ctx| {
        let m1 = ctx.recv_msg()?;
        let m2 = ctx.recv_msg()?;
        ctx.emit(&format!("got {} then {}", m1.data, m2.data))?;
        ctx.send_msg(m1.from, "ack")?;
        Ok(())
    });
    let _producer = k.spawn_process("producer", "", move |ctx| {
        ctx.send_msg(consumer, "first")?;
        ctx.send_msg(consumer, "second")?;
        let ack = ctx.recv_msg()?;
        assert_eq!(ack.data, "ack");
        assert_eq!(ack.from, consumer);
        Ok(())
    });
    k.run();
    assert_eq!(k.record(consumer).unwrap().output, "got first then second");
    assert_eq!(k.live_threads(), 0);
}

#[test]
fn ipc_lookup_by_name() {
    let mut k = kernel();
    let server = k.spawn_process("the-server", "", |ctx| {
        let m = ctx.recv_msg()?;
        ctx.send_msg(m.from, &format!("echo:{}", m.data))?;
        Ok(())
    });
    let client = k.spawn_process("client", "", |ctx| {
        let target = ctx.lookup_process("the-server")?.ok_or(SysError::NotFound)?;
        ctx.send_msg(target, "ping")?;
        let r = ctx.recv_msg()?;
        ctx.emit(&r.data)?;
        Ok(())
    });
    k.run();
    assert!(k.record(server).unwrap().status.is_ok());
    assert_eq!(k.record(client).unwrap().output, "echo:ping");
}

#[test]
fn crash_cleanup_reclaims_files_and_locks() {
    let mut k = kernel();
    let sys = k.tokenizer().encode("shared file");
    k.preload_kv("shared.kv", &sys, Mode { read_all: true, write_all: true }, false)
        .unwrap();
    let pages_before = k.store().gpu_pages_used();

    let crasher = k.spawn_process("crasher", "", |ctx| {
        let kv = ctx.kv_create()?;
        ctx.pred_positions(kv, &[1, 2, 3, 4, 5, 6, 7, 8], 0)?;
        let shared = ctx.kv_open("shared.kv")?;
        ctx.kv_lock(shared)?;
        panic!("lip bug");
    });
    k.run();
    let rec = k.record(crasher).unwrap();
    assert_eq!(rec.status, ExitStatus::Crashed);
    // Anonymous file reclaimed; shared file unlocked.
    assert_eq!(k.store().gpu_pages_used(), pages_before);
    let locker = k.spawn_process("locker", "", |ctx| {
        let shared = ctx.kv_open("shared.kv")?;
        ctx.kv_lock(shared)?;
        ctx.kv_unlock(shared)?;
        Ok(())
    });
    k.run();
    assert!(k.record(locker).unwrap().status.is_ok(), "lock must be free");
    k.store().verify().unwrap();
}

#[test]
fn linked_files_persist_after_exit() {
    let mut k = kernel();
    let writer = k.spawn_process("writer", "", |ctx| {
        let kv = ctx.kv_create()?;
        ctx.pred_positions(kv, &[10, 11, 12], 0)?;
        ctx.kv_chmod(kv, Mode::SHARED_READ)?;
        ctx.kv_link(kv, "published.kv")?;
        Ok(())
    });
    k.run();
    assert!(k.record(writer).unwrap().status.is_ok());
    assert!(k.store().lookup("published.kv").is_some());

    let reader = k.spawn_process("reader", "", |ctx| {
        let kv = ctx.kv_open("published.kv")?;
        assert_eq!(ctx.kv_len(kv)?, 3);
        let entries = ctx.kv_read(kv, 0, 3)?;
        assert_eq!(entries[0].token, 10);
        Ok(())
    });
    k.run();
    assert!(k.record(reader).unwrap().status.is_ok());
}

#[test]
fn limits_enforced() {
    let mut k = kernel();
    let limits = Limits {
        max_pred_tokens: Some(5),
        max_threads: Some(2),
        ..Default::default()
    };
    let pid = k.spawn_process_with_limits("greedy", "", limits, |ctx| {
        let kv = ctx.kv_create()?;
        ctx.pred_positions(kv, &[1, 2, 3], 0)?; // 3 tokens: ok
        let err = ctx.pred_positions(kv, &[4, 5, 6], 3).unwrap_err();
        assert_eq!(err, SysError::LimitExceeded("pred_tokens"));
        // Thread limit: main + 1 = 2 allowed, the next must fail.
        let t = ctx.spawn(|c| c.sleep(SimDuration::from_millis(1)))?;
        let err = ctx.spawn(|_| Ok(())).unwrap_err();
        assert_eq!(err, SysError::LimitExceeded("threads"));
        ctx.join(t)?;
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok(), "{:?}", k.record(pid).unwrap().status);
}

#[test]
fn kv_quota_limits_pages() {
    let mut k = kernel();
    let limits = Limits {
        kv_quota_pages: Some(2), // 8 tokens at page size 4
        ..Default::default()
    };
    let pid = k.spawn_process_with_limits("hog", "", limits, |ctx| {
        let kv = ctx.kv_create()?;
        ctx.pred_positions(kv, &[1, 2, 3, 4, 5, 6, 7, 8], 0)?;
        let err = ctx.pred(kv, &[(9, 8)]).unwrap_err();
        assert!(matches!(err, SysError::Kv(symphony_kvfs::KvError::QuotaExceeded)));
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
}

#[test]
fn error_exit_is_recorded() {
    let mut k = kernel();
    let pid = k.spawn_process("fails", "", |ctx| {
        ctx.kv_open("does-not-exist.kv")?;
        Ok(())
    });
    k.run();
    assert_eq!(
        k.record(pid).unwrap().status,
        ExitStatus::Error(SysError::Kv(symphony_kvfs::KvError::NotFound))
    );
}

#[test]
fn sleep_advances_clock() {
    let mut k = kernel();
    let pid = k.spawn_process("sleeper", "", |ctx| {
        ctx.sleep(SimDuration::from_secs(3))?;
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.latency().unwrap() >= SimDuration::from_secs(3));
}

#[test]
fn scheduled_arrivals_run_at_their_times() {
    let mut k = kernel();
    let t1 = symphony::SimTime::ZERO + SimDuration::from_millis(100);
    let t2 = symphony::SimTime::ZERO + SimDuration::from_millis(500);
    let p1 = k.schedule_process(t1, "r1", "", |ctx| ctx.emit("one"));
    let p2 = k.schedule_process(t2, "r2", "", |ctx| ctx.emit("two"));
    k.run();
    assert_eq!(k.record(p1).unwrap().spawned_at, t1);
    assert_eq!(k.record(p2).unwrap().spawned_at, t2);
    assert!(k.record(p1).unwrap().exited_at.unwrap() < k.record(p2).unwrap().exited_at.unwrap());
}

#[test]
fn fixed_window_batching_aggregates_concurrent_preds() {
    let mut cfg = KernelConfig::for_tests();
    cfg.batch_policy = BatchPolicy::FixedWindow {
        max_wait: SimDuration::from_millis(50),
        max_batch: 8,
    };
    let mut k = Kernel::new(cfg);
    for i in 0..8 {
        k.spawn_process(&format!("p{i}"), "", move |ctx| {
            let kv = ctx.kv_create()?;
            ctx.pred_positions(kv, &[i, i + 1], 0)?;
            Ok(())
        });
    }
    k.run();
    let m = k.gpu_metrics();
    assert_eq!(m.requests_ok, 8);
    assert!(
        m.batches <= 2,
        "window batching should aggregate 8 preds into few batches, got {}",
        m.batches
    );
}

#[test]
fn adaptive_batching_completes_all_work() {
    let mut cfg = KernelConfig::for_tests();
    cfg.batch_policy = BatchPolicy::Adaptive {
        target_batch: 4,
        max_wait: SimDuration::from_millis(20),
    };
    let mut k = Kernel::new(cfg);
    let mut pids = Vec::new();
    for i in 0..10u64 {
        let at = symphony::SimTime::ZERO + SimDuration::from_millis(i * 3);
        pids.push(k.schedule_process(at, &format!("p{i}"), "", move |ctx| {
            let kv = ctx.kv_create()?;
            let prompt = [(i as u32 + 1, 0), (i as u32 + 2, 1)];
            ctx.pred(kv, &prompt)?;
            Ok(())
        }));
    }
    k.run();
    for pid in pids {
        assert!(k.record(pid).unwrap().status.is_ok());
    }
    assert_eq!(k.gpu_metrics().requests_ok, 10);
}

#[test]
fn constrained_generation_emits_valid_json() {
    let mut k = kernel();
    let pid = k.spawn_process("json", "respond with json", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        let mut constraint = JsonConstraint::new(
            symphony_tokenizer::Bpe::default_tokenizer().vocab(),
        );
        let opts = GenOpts {
            max_tokens: 64,
            temperature: 0.7,
            emit: true,
            ..Default::default()
        };
        let tokens = sampling::generate_constrained(ctx, kv, &prompt, &mut constraint, &opts)?;
        assert!(!tokens.is_empty());
        assert!(constraint.is_complete(), "grammar must complete");
        Ok(())
    });
    k.run();
    let rec = k.record(pid).unwrap();
    assert!(rec.status.is_ok(), "{:?}", rec.status);
    // The emitted text must be parseable by the same grammar.
    let out = &rec.output;
    assert!(
        out.starts_with('{')
            || out.starts_with('[')
            || out.starts_with('"')
            || out.starts_with('-')
            || out.starts_with(|c: char| c.is_ascii_digit())
            || out == "true"
            || out == "false"
            || out == "null",
        "output {out:?} should look like JSON"
    );
}

#[test]
fn trie_constrained_choice() {
    let mut k = kernel();
    let pid = k.spawn_process("choice", "pick an option", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let options = vec![ctx.tokenize("yes")?, ctx.tokenize("no")?, ctx.tokenize("maybe")?];
        let kv = ctx.kv_create()?;
        let mut c = TrieConstraint::new(options.clone());
        let got =
            sampling::generate_constrained(ctx, kv, &prompt, &mut c, &GenOpts::default())?;
        assert!(options.contains(&got), "{got:?} must be one of the options");
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
    let out = &k.record(pid).unwrap().output;
    assert!(["yes", "no", "maybe"].contains(&out.as_str()), "got {out:?}");
}

#[test]
fn speculative_decoding_with_truncate() {
    // A LIP that drafts k tokens by sampling, verifies them with one
    // multi-token pred, and rolls the file back to the accepted prefix.
    let mut k = kernel();
    let pid = k.spawn_process("spec", "the draft context", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        let mut dist = ctx
            .pred_positions(kv, &prompt, 0)?
            .pop()
            .ok_or(SysError::BadArgument)?;
        let mut pos = prompt.len() as u32;
        let mut produced = 0usize;
        while produced < 24 {
            // Draft 4 tokens greedily from a temperature-sharpened view
            // (stands in for a cheap draft model with identical semantics).
            let mut draft = Vec::new();
            let mut d = dist.clone();
            for _ in 0..4 {
                let t = d.with_temperature(1.3).argmax();
                draft.push(t);
                // Draft model peeks ahead by sampling its own chain; the
                // target will verify below.
                d = d.top_k(1); // placeholder: draft chain ends here
                break;
            }
            let pairs: Vec<(u32, u32)> = draft
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, pos + i as u32))
                .collect();
            let dists = ctx.pred(kv, &pairs)?;
            let (accepted, next) =
                symphony::sampling::verify_greedy(&draft, &dist, &dists);
            if accepted < draft.len() {
                // Roll back the rejected suffix.
                let keep = ctx.kv_len(kv)? - (draft.len() - accepted);
                ctx.kv_truncate(kv, keep)?;
            }
            let step = accepted.max(1).min(draft.len());
            produced += step;
            pos += step as u32;
            if accepted == draft.len() {
                dist = dists.last().expect("non-empty").clone();
            } else {
                // Feed the correction token.
                if next == ctx.eos() {
                    break;
                }
                dist = ctx.pred(kv, &[(next, pos)])?.remove(0);
                pos += 1;
                produced += 1;
            }
            if next == ctx.eos() {
                break;
            }
        }
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok(), "{:?}", k.record(pid).unwrap().status);
    k.store().verify().unwrap();
}

#[test]
fn extract_prunes_context() {
    let mut k = kernel();
    let pid = k.spawn_process("pruner", "", |ctx| {
        let kv = ctx.kv_create()?;
        let tokens: Vec<u32> = (1..=12).collect();
        ctx.pred_positions(kv, &tokens, 0)?;
        // Keep an attention-sink head plus the recent tail.
        let pruned = ctx.kv_extract(kv, &[0..2, 8..12])?;
        assert_eq!(ctx.kv_len(pruned)?, 6);
        let entries = ctx.kv_read(pruned, 0, 6)?;
        assert_eq!(entries[0].position, 0);
        assert_eq!(entries[2].position, 8, "positions preserved");
        // Pruned file continues to serve pred.
        let next = ctx.kv_next_pos(pruned)?;
        ctx.pred(pruned, &[(99, next)])?;
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok());
}

#[test]
fn gpu_oom_surfaces_to_lip_which_can_evict() {
    let mut cfg = KernelConfig::for_tests();
    // Tiny pool: 16 pages of 4 tokens at 512 B/token.
    cfg.gpu_kv_bytes_override = Some(16 * 4 * 512);
    let mut k = Kernel::new(cfg);
    let pid = k.spawn_process("oom", "", |ctx| {
        let a = ctx.kv_create()?;
        let tokens: Vec<(u32, u32)> = (0..48).map(|i| (i + 1, i)).collect();
        ctx.pred(a, &tokens)?; // 12 pages
        let b = ctx.kv_create()?;
        let more: Vec<(u32, u32)> = (0..32).map(|i| (i + 1, i)).collect();
        // 8 more pages cannot fit.
        let err = ctx.pred(b, &more).unwrap_err();
        assert!(matches!(err, SysError::Kv(symphony_kvfs::KvError::NoGpuMemory)));
        // The LIP implements its own eviction: drop the old context.
        ctx.kv_remove(a)?;
        ctx.pred(b, &more)?;
        Ok(())
    });
    k.run();
    assert!(k.record(pid).unwrap().status.is_ok(), "{:?}", k.record(pid).unwrap().status);
}

#[test]
fn emit_and_args_roundtrip() {
    let mut k = kernel();
    let pid = k.spawn_process("echo", "the argument string", |ctx| {
        let args = ctx.args();
        ctx.emit(&args)?;
        ctx.emit(" / ")?;
        let toks = ctx.tokenize(&args)?;
        let text = ctx.detokenize(&toks)?;
        ctx.emit(&text)?;
        Ok(())
    });
    k.run();
    assert_eq!(
        k.record(pid).unwrap().output,
        "the argument string / the argument string"
    );
}

#[test]
fn deadlocked_receiver_is_detected() {
    let mut k = kernel();
    let pid = k.spawn_process("stuck", "", |ctx| {
        let _ = ctx.recv_msg()?; // Nobody will ever send.
        Ok(())
    });
    k.run();
    assert_eq!(k.live_threads(), 1, "receiver should be reported as live");
    assert!(k.record(pid).unwrap().exited_at.is_none());
    // Dropping the kernel must not hang (threads are unblocked and joined).
}
