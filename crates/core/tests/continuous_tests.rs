//! Continuous (iteration-level) batching end-to-end: the executor may
//! change *when* tokens are computed — chunked prefill, preemption, MLFQ
//! ordering — but never *what* any program observes.

use symphony::sampling::{self, GenOpts};
use symphony::{
    ContinuousConfig, ExecMode, Kernel, KernelConfig, MlfqConfig, Pid, QueueDiscipline,
    SimDuration,
};

fn continuous(chunk: Option<usize>, discipline: QueueDiscipline) -> ExecMode {
    ExecMode::Continuous(ContinuousConfig {
        chunk_tokens: chunk,
        discipline,
    })
}

/// A small mixed workload: staggered arrivals, longish prompts, greedy
/// decode. Returns the per-process outputs in spawn order.
fn run_workload(mut cfg: KernelConfig) -> (Kernel, Vec<Pid>) {
    cfg.syscall_cost = SimDuration::from_micros(1);
    let mut k = Kernel::new(cfg);
    let mut pids = Vec::new();
    for i in 0..6u64 {
        let at = symphony::SimTime::ZERO + SimDuration::from_millis(i * 2);
        let args = format!(
            "request {i}: the quick brown fox jumps over the lazy dog and \
             keeps going for a while to make the prefill worth chunking"
        );
        pids.push(k.schedule_process(at, &format!("p{i}"), &args, |ctx| {
            let prompt = ctx.tokenize(&ctx.args())?;
            let kv = ctx.kv_create()?;
            sampling::generate(
                ctx,
                kv,
                &prompt,
                &GenOpts {
                    max_tokens: 10,
                    ..Default::default()
                },
            )?;
            ctx.kv_remove(kv)?;
            Ok(())
        }));
    }
    k.run();
    (k, pids)
}

fn outputs(k: &Kernel, pids: &[Pid]) -> Vec<String> {
    pids.iter()
        .map(|&p| {
            let rec = k.record(p).unwrap();
            assert!(rec.status.is_ok(), "{:?}", rec.status);
            rec.output.clone()
        })
        .collect()
}

#[test]
fn continuous_modes_agree_with_static_outputs() {
    // Same seed, same programs: run-to-completion, unchunked continuous,
    // and chunked continuous must produce identical generations.
    let (ks, pids) = run_workload(KernelConfig::for_tests());

    let mut cfg = KernelConfig::for_tests();
    cfg.exec = continuous(None, QueueDiscipline::Fifo);
    let (kc, pidc) = run_workload(cfg);

    let mut cfg = KernelConfig::for_tests();
    cfg.exec = continuous(Some(8), QueueDiscipline::Fifo);
    let (kk, pidk) = run_workload(cfg);

    let want = outputs(&ks, &pids);
    assert_eq!(outputs(&kc, &pidc), want, "continuous changed outputs");
    assert_eq!(outputs(&kk, &pidk), want, "chunking changed outputs");
    // The chunked run actually split prefills.
    assert!(kk.prefill_chunks() > 0, "expected chunked prefill iterations");
    assert_eq!(ks.prefill_chunks(), 0, "static mode never chunks");
    kk.store().verify().unwrap();
}

#[test]
fn continuous_mode_is_deterministic() {
    fn once(chunk: Option<usize>, discipline: QueueDiscipline) -> (u64, Vec<String>) {
        let mut cfg = KernelConfig::for_tests();
        cfg.exec = continuous(chunk, discipline);
        let (k, pids) = run_workload(cfg);
        let out = outputs(&k, &pids);
        (k.trace().fingerprint(), out)
    }
    for discipline in [
        QueueDiscipline::Fifo,
        QueueDiscipline::Mlfq(MlfqConfig::default()),
    ] {
        let (fp1, out1) = once(Some(8), discipline);
        let (fp2, out2) = once(Some(8), discipline);
        assert_eq!(fp1, fp2, "trace fingerprints differ ({discipline:?})");
        assert_eq!(out1, out2);
    }
}

#[test]
fn iteration_interleaves_decode_with_chunked_prefill() {
    // A decoder that is already running must keep producing tokens while a
    // late long prefill is being chunked: more batches than either program
    // alone needs, and both finish.
    let mut cfg = KernelConfig::for_tests();
    cfg.exec = continuous(Some(4), QueueDiscipline::Fifo);
    cfg.syscall_cost = SimDuration::from_micros(1);
    let mut k = Kernel::new(cfg);
    let early = k.spawn_process("decoder", "short start", |ctx| {
        let prompt = ctx.tokenize(&ctx.args())?;
        let kv = ctx.kv_create()?;
        sampling::generate(
            ctx,
            kv,
            &prompt,
            &GenOpts { max_tokens: 24, ..Default::default() },
        )?;
        Ok(())
    });
    let late_at = symphony::SimTime::ZERO + SimDuration::from_millis(1);
    let late = k.schedule_process(late_at, "prefiller", "", |ctx| {
        let kv = ctx.kv_create()?;
        let long: Vec<u32> = (1..=40).collect();
        ctx.pred_positions(kv, &long, 0)?;
        Ok(())
    });
    k.run();
    assert!(k.record(early).unwrap().status.is_ok());
    assert!(k.record(late).unwrap().status.is_ok());
    // 40 tokens at chunk 4 is ten prefill iterations.
    assert!(
        k.prefill_chunks() >= 10,
        "expected >= 10 chunk iterations, got {}",
        k.prefill_chunks()
    );
    assert!(k.gpu_metrics().batches >= 10);
}

#[test]
fn preemption_under_tiny_pool_completes_everyone() {
    // Four programs whose combined KV exceeds the GPU pool: the executor
    // must preempt (swap KV out) rather than fail anyone, and preemption
    // must not change any output.
    fn cfg(exec: ExecMode) -> KernelConfig {
        let mut c = KernelConfig::for_tests();
        // 18 pages of 4 tokens: about two of the four programs fit at once.
        c.gpu_kv_bytes_override = Some(18 * 4 * 512);
        c.exec = exec;
        c
    }
    fn run(c: KernelConfig) -> (Kernel, Vec<Pid>) {
        let mut k = Kernel::new(c);
        let mut pids = Vec::new();
        for i in 0..4u64 {
            let filler = "the cache fills up with many tokens ".repeat(3);
            let args = format!("program {i}: {filler}");
            pids.push(k.spawn_process(&format!("p{i}"), &args, |ctx| {
                let prompt = ctx.tokenize(&ctx.args())?;
                let kv = ctx.kv_create()?;
                sampling::generate(
                    ctx,
                    kv,
                    &prompt,
                    &GenOpts { max_tokens: 8, ..Default::default() },
                )?;
                Ok(())
            }));
        }
        k.run();
        (k, pids)
    }
    // Baseline outputs from an unconstrained static run.
    let (base, base_pids) = run(KernelConfig::for_tests());
    let want = outputs(&base, &base_pids);

    let (k, pids) = run(cfg(continuous(Some(8), QueueDiscipline::Fifo)));
    assert_eq!(outputs(&k, &pids), want, "preemption changed outputs");
    assert!(
        k.preemptions() > 0,
        "pool is too small for all four programs; expected preemptions"
    );
    let stats = k.kv_stats();
    assert!(stats.swapped_out_tokens > 0);
    k.store().verify().unwrap();
}

#[test]
fn mlfq_serves_fresh_programs_ahead_of_long_runners() {
    // Program-aware scheduling: a program that has already consumed lots
    // of critical-path service drops to a lower MLFQ level, so a fresh
    // program whose pred arrives *after* the long-runner's next pred still
    // goes first (non-clairvoyant shortest-remaining-first). A coordinator
    // releases both contenders at the same virtual instant; with zero
    // syscall cost the long program's pred lands in the queue first, so
    // FIFO and MLFQ genuinely disagree on the order.
    fn finish_order(discipline: QueueDiscipline) -> (symphony::SimTime, symphony::SimTime) {
        let mut cfg = KernelConfig::for_tests();
        cfg.exec = continuous(Some(4), discipline);
        cfg.max_batch = 1; // one admission slot: queue order decides
        let mut k = Kernel::new(cfg);
        let coord = k.spawn_process("coord", "", |ctx| {
            let ready = ctx.recv_msg()?;
            let short = ctx
                .lookup_process("short")?
                .ok_or(symphony::SysError::NotFound)?;
            ctx.send_msg(ready.from, "go")?;
            ctx.send_msg(short, "go")?;
            Ok(())
        });
        let long = k.spawn_process("long", "", move |ctx| {
            let kv = ctx.kv_create()?;
            // Accrue 32 tokens of critical-path service: two quanta.
            let warmup: Vec<u32> = (1..=32).collect();
            ctx.pred_positions(kv, &warmup, 0)?;
            ctx.send_msg(coord, "ready")?;
            ctx.recv_msg()?;
            let more: Vec<(u32, u32)> = (0..16).map(|i| (i + 1, 32 + i)).collect();
            ctx.pred(kv, &more)?;
            Ok(())
        });
        let short = k.spawn_process("short", "", |ctx| {
            ctx.recv_msg()?;
            let kv = ctx.kv_create()?;
            ctx.pred_positions(kv, &[1, 2, 3], 0)?;
            Ok(())
        });
        k.run();
        let l = k.record(long).unwrap();
        let s = k.record(short).unwrap();
        assert!(l.status.is_ok(), "{:?}", l.status);
        assert!(s.status.is_ok(), "{:?}", s.status);
        (s.exited_at.unwrap(), l.exited_at.unwrap())
    }

    let (s, l) = finish_order(QueueDiscipline::Mlfq(MlfqConfig {
        levels: 3,
        quantum_tokens: 16,
    }));
    assert!(
        s < l,
        "MLFQ should serve the fresh program first (short {s:?}, long {l:?})"
    );
    let (s, l) = finish_order(QueueDiscipline::Fifo);
    assert!(
        l < s,
        "FIFO control: the earlier-queued long pred goes first \
         (short {s:?}, long {l:?})"
    );
}
