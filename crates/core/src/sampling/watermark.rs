//! Watermarked sampling (Kirchenbauer et al., cited as §2.3's example of
//! "policy-based generation").
//!
//! The watermark partitions the vocabulary per step into a *green list*
//! seeded by the previous token and boosts green tokens' logits by `delta`.
//! A detector later scores a token sequence by its green fraction. Prompt
//! APIs cannot express this (it needs the full distribution every step);
//! in Symphony it is twenty lines of LIP-side code over `pred`.

use symphony_model::{Dist, TokenId};

/// Watermark parameters.
#[derive(Debug, Clone, Copy)]
pub struct Watermark {
    /// Fraction of the vocabulary in the green list (`gamma`).
    pub gamma: f64,
    /// Multiplicative boost applied to green-token probabilities
    /// (`exp(delta)` in logit terms).
    pub boost: f64,
    /// Hash key identifying this watermark.
    pub key: u64,
    /// Vocabulary size over which green lists are drawn.
    pub vocab: u32,
}

impl Watermark {
    /// A typical configuration: a quarter of the vocabulary, logit bias 2.
    pub fn new(key: u64, vocab: u32) -> Self {
        Watermark {
            gamma: 0.25,
            boost: (2.0f64).exp(),
            key,
            vocab,
        }
    }

    fn mix(&self, prev: TokenId, token: TokenId) -> u64 {
        let mut z = self
            .key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((prev as u64) << 32 | token as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns `true` if `token` is green given the previous token.
    pub fn is_green(&self, prev: TokenId, token: TokenId) -> bool {
        let u = (self.mix(prev, token) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.gamma
    }

    /// Applies the watermark bias to a distribution.
    pub fn bias(&self, dist: &Dist, prev: TokenId) -> Dist {
        let entries: Vec<(TokenId, f64)> = dist
            .entries()
            .iter()
            .map(|&(t, p)| {
                let w = if self.is_green(prev, t) { p * self.boost } else { p };
                (t, w)
            })
            .collect();
        // Tail mass is mostly non-green; approximate by boosting gamma of it.
        let tail_w = dist.tail_mass() * (1.0 - self.gamma + self.gamma * self.boost);
        Dist::from_weights(entries, tail_w, dist.tail_tokens())
    }

    /// Detector: the z-score of the green fraction over a token sequence
    /// (`> ~4` is decisive for watermarked text of moderate length).
    pub fn detect(&self, tokens: &[TokenId]) -> f64 {
        if tokens.len() < 2 {
            return 0.0;
        }
        let n = (tokens.len() - 1) as f64;
        let greens = tokens
            .windows(2)
            .filter(|w| self.is_green(w[0], w[1]))
            .count() as f64;
        (greens - self.gamma * n) / (n * self.gamma * (1.0 - self.gamma)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_model::{ModelConfig, Surrogate};
    use symphony_sim::Rng;

    fn model() -> Surrogate {
        Surrogate::new(ModelConfig::tiny().with_mean_output_tokens(100_000), 3)
    }

    /// Greedy generation with/without bias; the detector must separate them.
    #[test]
    fn watermark_is_detectable_and_absent_from_clean_text() {
        let m = model();
        let fpr = m.fingerprinter();
        let wm = Watermark::new(0xBEEF, 1_900);
        let mut rng = Rng::new(4);

        let mut generate = |watermarked: bool| -> Vec<TokenId> {
            let mut fp = m.context_of(&[5, 6, 7]);
            let mut prev = 7u32;
            let mut pos = 3u32;
            let mut out = Vec::new();
            for _ in 0..300 {
                let d = m.next_dist(fp);
                let d = if watermarked { wm.bias(&d, prev) } else { d };
                let t = d.top_p(0.9).sample_with(rng.next_f64(), 1_900);
                out.push(t);
                fp = fpr.advance(fp, t, pos);
                prev = t;
                pos += 1;
            }
            out
        };

        let clean = generate(false);
        let marked = generate(true);
        let z_clean = wm.detect(&clean);
        let z_marked = wm.detect(&marked);
        assert!(z_clean < 3.0, "clean text should not trigger: z={z_clean}");
        assert!(z_marked > 4.0, "watermark should be decisive: z={z_marked}");
        assert!(z_marked > z_clean + 3.0);
    }

    #[test]
    fn green_list_fraction_close_to_gamma() {
        let wm = Watermark::new(1, 10_000);
        let greens = (0..10_000u32).filter(|&t| wm.is_green(42, t)).count();
        let frac = greens as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn bias_preserves_normalisation_and_boosts_green() {
        let m = model();
        let d = m.next_dist(m.context_of(&[1, 2]));
        let wm = Watermark::new(7, 1_900);
        let b = wm.bias(&d, 2);
        assert!((b.total_mass() - 1.0).abs() < 1e-9);
        // Some green entry must have gained probability.
        let gained = d
            .entries()
            .iter()
            .any(|&(t, p)| wm.is_green(2, t) && b.prob(t) > p);
        let _ = gained; // With few entries all could be red; check fraction-wise.
        let green_mass_before: f64 = d
            .entries()
            .iter()
            .filter(|&&(t, _)| wm.is_green(2, t))
            .map(|&(_, p)| p)
            .sum();
        let green_mass_after: f64 = b
            .entries()
            .iter()
            .filter(|&&(t, _)| wm.is_green(2, t))
            .map(|&(_, p)| p)
            .sum();
        assert!(green_mass_after >= green_mass_before);
    }

    #[test]
    fn detector_neutral_on_short_input() {
        let wm = Watermark::new(1, 100);
        assert_eq!(wm.detect(&[]), 0.0);
        assert_eq!(wm.detect(&[5]), 0.0);
    }

    #[test]
    fn different_keys_do_not_cross_detect() {
        let m = model();
        let fpr = m.fingerprinter();
        let wm_a = Watermark::new(0xAAAA, 1_900);
        let wm_b = Watermark::new(0xBBBB, 1_900);
        let mut rng = Rng::new(9);
        let mut fp = m.context_of(&[9, 8]);
        let mut prev = 8u32;
        let mut out = Vec::new();
        for pos in 2..302u32 {
            let d = wm_a.bias(&m.next_dist(fp), prev);
            let t = d.top_p(0.9).sample_with(rng.next_f64(), 1_900);
            out.push(t);
            fp = fpr.advance(fp, t, pos);
            prev = t;
        }
        assert!(wm_a.detect(&out) > 4.0);
        assert!(wm_b.detect(&out) < 3.0, "key B must not detect key A's mark");
    }
}
