//! Runtime context pruning over `kv_extract` (§4.2).
//!
//! "This capability benefits inference speedup techniques like runtime
//! context pruning, by removing invalid or unimportant tokens from files."
//! [`StreamingWindow`] implements the attention-sinks recipe (keep the
//! first `sink` tokens plus a sliding window of the most recent ones): when
//! a file outgrows the budget, the LIP extracts `sink + tail` into a fresh
//! file and continues on it. The extracted entries keep their original
//! positions and fingerprints — the approximate-reuse semantics of
//! streaming attention.

use symphony_kvfs::FileId;

use crate::syscall::Ctx;
use crate::types::SysError;

/// Attention-sink streaming-window policy.
#[derive(Debug, Clone, Copy)]
pub struct StreamingWindow {
    /// Always-kept prefix length (the attention sink).
    pub sink: usize,
    /// Recent-token window length.
    pub window: usize,
    /// Prune once the file exceeds `sink + window + slack` tokens (slack
    /// amortises extraction cost).
    pub slack: usize,
}

impl StreamingWindow {
    /// A window with 4 sink tokens and the given recent window.
    pub fn new(window: usize) -> Self {
        StreamingWindow {
            sink: 4,
            window,
            slack: window / 2,
        }
    }

    /// Token budget at which pruning triggers.
    pub fn trigger_len(&self) -> usize {
        self.sink + self.window + self.slack
    }

    /// Prunes `kv` if it exceeds the budget: returns the (possibly new)
    /// file to continue on. On prune, the original file is removed and the
    /// returned file holds `sink` head entries plus `window` tail entries.
    pub fn maybe_prune(&self, ctx: &mut Ctx, kv: FileId) -> Result<FileId, SysError> {
        let len = ctx.kv_len(kv)?;
        if len <= self.trigger_len() || len <= self.sink + self.window {
            return Ok(kv);
        }
        let tail_start = len - self.window;
        let pruned = if self.sink == 0 {
            // kv_extract takes a slice of ranges; a sinkless prune keeps one.
            #[allow(clippy::single_range_in_vec_init)]
            let ranges = [tail_start..len];
            ctx.kv_extract(kv, &ranges)?
        } else {
            ctx.kv_extract(kv, &[0..self.sink.min(tail_start), tail_start..len])?
        };
        ctx.kv_remove(kv)?;
        Ok(pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig};

    #[test]
    fn long_generation_stays_within_budget() {
        let mut kernel = Kernel::new(KernelConfig::for_tests());
        let pid = kernel.spawn_process("stream", "", |ctx| {
            let policy = StreamingWindow::new(32);
            let mut kv = ctx.kv_create()?;
            let mut dist = ctx
                .pred_positions(kv, &[1, 2, 3, 4, 5, 6, 7, 8], 0)?
                .pop()
                .ok_or(SysError::BadArgument)?;
            let mut pos = 8u32;
            let mut max_len = 0usize;
            for _ in 0..300 {
                let t = dist.entries()[1].0; // avoid EOS-heavy argmax path
                dist = ctx.pred(kv, &[(t, pos)])?.remove(0);
                pos += 1;
                kv = policy.maybe_prune(ctx, kv)?;
                max_len = max_len.max(ctx.kv_len(kv)?);
            }
            // Budget: never beyond trigger + 1 appended token.
            assert!(
                max_len <= policy.trigger_len() + 1,
                "window exceeded: {max_len}"
            );
            // The sink survives at the front with original positions.
            let head = ctx.kv_read(kv, 0, 4)?;
            assert_eq!(head[0].position, 0);
            assert_eq!(head[0].token, 1);
            assert_eq!(head[3].position, 3);
            // Positions jump across the pruned gap (discontiguous layout).
            let entries = ctx.kv_read(kv, 0, ctx.kv_len(kv)?)?;
            assert!(entries[4].position > 4);
            Ok(())
        });
        kernel.run();
        assert!(kernel.record(pid).unwrap().status.is_ok());
        kernel.store().verify().unwrap();
    }

    #[test]
    fn short_files_are_untouched() {
        let mut kernel = Kernel::new(KernelConfig::for_tests());
        let pid = kernel.spawn_process("short", "", |ctx| {
            let policy = StreamingWindow::new(64);
            let kv = ctx.kv_create()?;
            ctx.pred_positions(kv, &[1, 2, 3], 0)?;
            let same = policy.maybe_prune(ctx, kv)?;
            assert_eq!(same, kv, "no prune below the budget");
            Ok(())
        });
        kernel.run();
        assert!(kernel.record(pid).unwrap().status.is_ok());
    }

    #[test]
    fn pruned_memory_is_reclaimed() {
        let mut kernel = Kernel::new(KernelConfig::for_tests());
        let pid = kernel.spawn_process("reclaim", "", |ctx| {
            let policy = StreamingWindow { sink: 2, window: 8, slack: 2 };
            let mut kv = ctx.kv_create()?;
            let tokens: Vec<(u32, u32)> = (0..40).map(|i| (i + 1, i)).collect();
            ctx.pred(kv, &tokens)?;
            let before = ctx.kv_stat(kv)?.pages;
            kv = policy.maybe_prune(ctx, kv)?;
            let after = ctx.kv_stat(kv)?.pages;
            assert!(after < before, "pruning must shrink pages: {after} vs {before}");
            assert_eq!(ctx.kv_len(kv)?, 10);
            Ok(())
        });
        kernel.run();
        assert!(kernel.record(pid).unwrap().status.is_ok());
        // After exit everything is reclaimed.
        assert_eq!(kernel.store().gpu_pages_used(), 0);
    }
}
