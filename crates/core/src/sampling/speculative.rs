//! Speculative-decoding verification helpers.
//!
//! §4.1: "For speculative decoding, LIPs pass multiple input tokens (draft
//! tokens) to the pred system call and verify them by inspecting the
//! distributions of the tokens." These helpers implement the inspection; the
//! LIP passes the draft through one multi-token `pred`, verifies, and
//! truncates its KV file back to the accepted prefix with `kv_truncate`.

use symphony_model::{Dist, TokenId};

/// Greedy verification: accept the longest draft prefix where every token
/// equals the target's argmax.
///
/// `prior` is the target distribution *before* the first draft token;
/// `after[i]` is the target distribution after `draft[..=i]` (exactly what
/// `pred(kv, draft)` returns). Returns `(accepted, next)` where `next` is
/// the target's correction token for the first rejected position (or the
/// token the target would emit after a fully accepted draft).
pub fn verify_greedy(draft: &[TokenId], prior: &Dist, after: &[Dist]) -> (usize, TokenId) {
    assert_eq!(draft.len(), after.len(), "one dist per draft token");
    for (i, &tok) in draft.iter().enumerate() {
        let target = if i == 0 { prior } else { &after[i - 1] };
        if target.argmax() != tok {
            return (i, target.argmax());
        }
    }
    (draft.len(), after[draft.len() - 1].argmax())
}

/// Stochastic verification (Leviathan et al.): accept `draft[i]` with
/// probability `min(1, p_target / p_draft)` using the uniform draws in `us`;
/// on rejection the caller should resample from the target distribution at
/// the rejected position.
///
/// Returns `(accepted, rejected_at_dist)`: the accepted prefix length, and
/// the target distribution at the first rejected position (`None` if all
/// accepted).
pub fn verify_stochastic(
    draft: &[TokenId],
    draft_probs: &[f64],
    prior: &Dist,
    after: &[Dist],
    us: &[f64],
) -> (usize, Option<Dist>) {
    assert_eq!(draft.len(), after.len(), "one dist per draft token");
    assert_eq!(draft.len(), draft_probs.len(), "one prob per draft token");
    assert_eq!(draft.len(), us.len(), "one draw per draft token");
    for (i, &tok) in draft.iter().enumerate() {
        let target = if i == 0 { prior } else { &after[i - 1] };
        let p_t = target.prob(tok);
        let p_d = draft_probs[i].max(1e-12);
        if us[i] >= (p_t / p_d).min(1.0) {
            return (i, Some(target.clone()));
        }
    }
    (draft.len(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_peaked(tok: TokenId) -> Dist {
        Dist::from_weights(vec![(tok, 9.0), (tok + 1, 1.0)], 0.0, 0)
    }

    #[test]
    fn greedy_accepts_matching_prefix() {
        let prior = dist_peaked(10);
        let after = vec![dist_peaked(20), dist_peaked(30), dist_peaked(40)];
        // Draft matches argmaxes 10, 20, 30.
        let (n, next) = verify_greedy(&[10, 20, 30], &prior, &after);
        assert_eq!(n, 3);
        assert_eq!(next, 40, "bonus token from the last distribution");
    }

    #[test]
    fn greedy_rejects_at_first_mismatch() {
        let prior = dist_peaked(10);
        let after = vec![dist_peaked(20), dist_peaked(30)];
        let (n, next) = verify_greedy(&[10, 99], &prior, &after);
        assert_eq!(n, 1);
        assert_eq!(next, 20, "correction is the target argmax at the reject");
    }

    #[test]
    fn greedy_rejects_immediately() {
        let prior = dist_peaked(10);
        let after = vec![dist_peaked(20)];
        let (n, next) = verify_greedy(&[55], &prior, &after);
        assert_eq!(n, 0);
        assert_eq!(next, 10);
    }

    #[test]
    fn stochastic_always_accepts_when_target_agrees() {
        // p_target >= p_draft everywhere -> ratio >= 1 -> accept any draw.
        let prior = dist_peaked(10);
        let after = vec![dist_peaked(20), dist_peaked(30)];
        let (n, rej) = verify_stochastic(&[10, 20], &[0.5, 0.5], &prior, &after, &[0.99, 0.99]);
        assert_eq!(n, 2);
        assert!(rej.is_none());
    }

    #[test]
    fn stochastic_rejects_overconfident_draft() {
        // Draft claimed prob 1.0 for a token the target gives ~0.
        let prior = dist_peaked(10);
        let after = vec![dist_peaked(20), dist_peaked(30)];
        let (n, rej) = verify_stochastic(&[99, 20], &[1.0, 0.5], &prior, &after, &[0.5, 0.5]);
        assert_eq!(n, 0);
        assert_eq!(rej.unwrap().argmax(), 10);
    }

    #[test]
    fn stochastic_low_draw_accepts_marginal_token() {
        // ratio = p_t/p_d = 0.1/0.5 = 0.2; draw 0.1 accepts, draw 0.3 rejects.
        let prior = dist_peaked(10); // p(11) = 0.1
        let after = vec![dist_peaked(20)];
        let (n1, _) = verify_stochastic(&[11], &[0.5], &prior, &after[..1], &[0.1]);
        assert_eq!(n1, 1);
        let (n2, _) = verify_stochastic(&[11], &[0.5], &prior, &after[..1], &[0.3]);
        assert_eq!(n2, 0);
    }

    #[test]
    #[should_panic(expected = "one dist per draft token")]
    fn mismatched_lengths_panic() {
        verify_greedy(&[1, 2], &dist_peaked(1), &[dist_peaked(2)]);
    }
}
