//! Userspace decoding library for LIPs.
//!
//! §2.3/§4.1: because `pred` returns the *full* next-token distribution, the
//! decoding loop is ordinary LIP code. This module is deliberately a
//! *library, not kernel machinery* — everything here runs inside the LIP on
//! top of the `pred`/`kv_*` syscalls, demonstrating the paper's claim that
//! techniques like constrained and speculative decoding need no serving-
//! system modifications.

pub mod constraint;
pub mod prune;
pub mod speculative;
pub mod watermark;

use symphony_kvfs::FileId;
use symphony_model::{Dist, TokenId};

use crate::syscall::Ctx;
use crate::types::SysError;

pub use constraint::{Constraint, JsonConstraint, TrieConstraint};
pub use prune::StreamingWindow;
pub use speculative::{verify_greedy, verify_stochastic};
pub use watermark::Watermark;

/// Options for the reference autoregressive loop.
#[derive(Debug, Clone, Copy)]
pub struct GenOpts {
    /// Hard cap on generated tokens.
    pub max_tokens: usize,
    /// Sampling temperature (0 = greedy).
    pub temperature: f64,
    /// Optional top-k truncation (applied before temperature).
    pub top_k: Option<usize>,
    /// Optional nucleus truncation (applied before temperature).
    pub top_p: Option<f64>,
    /// Stream generated tokens to the client via `emit_tokens`.
    pub emit: bool,
}

impl Default for GenOpts {
    fn default() -> Self {
        GenOpts {
            max_tokens: 256,
            temperature: 0.0,
            top_k: None,
            top_p: None,
            emit: true,
        }
    }
}

/// Outcome of [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenResult {
    /// The generated tokens (EOS excluded).
    pub tokens: Vec<TokenId>,
    /// `true` if generation stopped on EOS rather than the token cap.
    pub stopped_on_eos: bool,
}

/// Applies the configured truncations and samples one token.
fn pick(ctx: &mut Ctx, dist: &Dist, opts: &GenOpts) -> TokenId {
    let mut d = dist.clone();
    if let Some(k) = opts.top_k {
        d = d.top_k(k);
    }
    if let Some(p) = opts.top_p {
        d = d.top_p(p);
    }
    if opts.temperature == 0.0 {
        return d.argmax();
    }
    let d = d.with_temperature(opts.temperature);
    ctx.sample(&d)
}

/// The reference autoregressive generation loop, written exactly as a user
/// would write it: prefill the prompt with one `pred`, then sample-extend
/// one token at a time until EOS or the cap.
///
/// `prompt` must be non-empty (the loop needs a distribution to start from);
/// the prompt is appended to `kv` at positions continuing the file.
pub fn generate(
    ctx: &mut Ctx,
    kv: FileId,
    prompt: &[TokenId],
    opts: &GenOpts,
) -> Result<GenResult, SysError> {
    if prompt.is_empty() {
        return Err(SysError::BadArgument);
    }
    let start = ctx.kv_next_pos(kv)?;
    let mut dist = ctx
        .pred_positions(kv, prompt, start)?
        .pop()
        .ok_or(SysError::BadArgument)?;
    let mut pos = start + prompt.len() as u32;
    let mut tokens = Vec::new();
    let eos = ctx.eos();
    while tokens.len() < opts.max_tokens {
        let tok = pick(ctx, &dist, opts);
        if tok == eos {
            return Ok(GenResult {
                tokens,
                stopped_on_eos: true,
            });
        }
        if opts.emit {
            ctx.emit_tokens(&[tok])?;
        }
        tokens.push(tok);
        dist = ctx
            .pred(kv, &[(tok, pos)])?
            .pop()
            .ok_or(SysError::BadArgument)?;
        pos += 1;
    }
    Ok(GenResult {
        tokens,
        stopped_on_eos: false,
    })
}

/// Constrained generation: at every step the distribution is masked to the
/// tokens the [`Constraint`] allows, renormalised, and sampled. Returns the
/// generated tokens once the constraint reports completion.
///
/// This is the §4.1 recipe verbatim: "LIPs integrate a state machine into
/// the generation loop to restrict the distribution variables".
pub fn generate_constrained<C: Constraint>(
    ctx: &mut Ctx,
    kv: FileId,
    prompt: &[TokenId],
    constraint: &mut C,
    opts: &GenOpts,
) -> Result<Vec<TokenId>, SysError> {
    if prompt.is_empty() {
        return Err(SysError::BadArgument);
    }
    let start = ctx.kv_next_pos(kv)?;
    let mut dist = ctx
        .pred_positions(kv, prompt, start)?
        .pop()
        .ok_or(SysError::BadArgument)?;
    let mut pos = start + prompt.len() as u32;
    let mut tokens = Vec::new();
    while !constraint.is_complete() && tokens.len() < opts.max_tokens {
        let allowed = constraint.allowed();
        let masked = dist.constrain(&allowed).ok_or(SysError::BadArgument)?;
        let tok = if opts.temperature == 0.0 {
            masked.argmax()
        } else {
            let t = masked.with_temperature(opts.temperature);
            ctx.sample(&t)
        };
        constraint.advance(tok);
        if opts.emit {
            ctx.emit_tokens(&[tok])?;
        }
        tokens.push(tok);
        if constraint.is_complete() {
            break;
        }
        dist = ctx
            .pred(kv, &[(tok, pos)])?
            .pop()
            .ok_or(SysError::BadArgument)?;
        pos += 1;
    }
    Ok(tokens)
}
