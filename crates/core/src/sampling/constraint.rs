//! Constrained decoding state machines.
//!
//! A [`Constraint`] tells the generation loop which tokens may come next;
//! the loop masks the `pred` distribution to that set ([`Dist::constrain`])
//! and samples. Two implementations ship with the library:
//!
//! - [`TrieConstraint`]: the output must be one of a fixed set of token
//!   sequences (tool names, enum values, multiple-choice answers).
//! - [`JsonConstraint`]: the output must be a syntactically valid JSON
//!   document (a pragmatic subset: no floats, escapes, or whitespace), via a
//!   byte-level pushdown automaton lifted to tokens through the vocabulary —
//!   the same construction grammar engines like Outlines/XGrammar use.
//!
//! [`Dist::constrain`]: symphony_model::Dist::constrain

use symphony_model::TokenId;
use symphony_tokenizer::Vocab;

/// A decoding constraint: a stateful filter over next tokens.
pub trait Constraint {
    /// Tokens permitted in the current state (must be non-empty until
    /// [`Constraint::is_complete`]).
    fn allowed(&self) -> Vec<TokenId>;

    /// Advances the state by an emitted token.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `token` was not allowed.
    fn advance(&mut self, token: TokenId);

    /// Returns `true` once the output satisfies the constraint.
    fn is_complete(&self) -> bool;
}

/// Constrains output to one of a fixed set of token sequences.
#[derive(Debug, Clone)]
pub struct TrieConstraint {
    sequences: Vec<Vec<TokenId>>,
    /// Tokens emitted so far (a shared prefix of the live sequences).
    depth: usize,
    complete: bool,
}

impl TrieConstraint {
    /// Creates a constraint from candidate sequences.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty or contains an empty sequence.
    pub fn new(sequences: Vec<Vec<TokenId>>) -> Self {
        assert!(!sequences.is_empty(), "need at least one sequence");
        assert!(
            sequences.iter().all(|s| !s.is_empty()),
            "sequences must be non-empty"
        );
        TrieConstraint {
            sequences,
            depth: 0,
            complete: false,
        }
    }
}

impl Constraint for TrieConstraint {
    fn allowed(&self) -> Vec<TokenId> {
        let mut out: Vec<TokenId> = self
            .sequences
            .iter()
            .filter(|s| s.len() > self.depth)
            .map(|s| s[self.depth])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn advance(&mut self, token: TokenId) {
        self.sequences
            .retain(|s| s.len() > self.depth && s[self.depth] == token);
        assert!(
            !self.sequences.is_empty(),
            "token {token} was not allowed by the trie"
        );
        self.depth += 1;
        if self.sequences.iter().any(|s| s.len() == self.depth) {
            self.complete = true;
        }
    }

    fn is_complete(&self) -> bool {
        self.complete
    }
}

/// Parser mode of the JSON automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Expecting the start of a value.
    Value,
    /// Right after `[`: a value or an immediate `]`.
    ValueOrClose,
    /// Saw `-`; a digit must follow.
    NumberStart,
    /// Inside a number; digits continue, a terminator ends it.
    AfterNumber,
    /// Inside a string value.
    InString,
    /// Inside an object key.
    InKey,
    /// Matching a literal (`true`/`false`/`null`).
    InLiteral(&'static [u8], usize),
    /// After a key string, expecting `:`.
    ExpectColon,
    /// After `{` : a key or an immediate `}`.
    ExpectKeyOrClose,
    /// After `,` in an object: a key must follow.
    ExpectKey,
    /// After a complete value inside a container: `,` or the closer.
    ExpectCommaOrClose,
    /// A complete top-level value has been parsed.
    Done,
}

/// Byte-level pushdown automaton for the JSON subset.
#[derive(Debug, Clone)]
struct JsonPda {
    stack: Vec<u8>,
    mode: Mode,
}

fn is_string_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b' ' || b == b'-' || b == b'.'
}

impl JsonPda {
    fn new() -> Self {
        JsonPda {
            stack: Vec::new(),
            mode: Mode::Value,
        }
    }

    fn value_done(&mut self) {
        self.mode = if self.stack.is_empty() {
            Mode::Done
        } else {
            Mode::ExpectCommaOrClose
        };
    }

    /// Feeds one byte; returns `false` on rejection (state unspecified).
    fn feed(&mut self, b: u8) -> bool {
        match self.mode {
            Mode::Done => false,
            Mode::Value | Mode::ValueOrClose => {
                if self.mode == Mode::ValueOrClose && b == b']' {
                    debug_assert_eq!(self.stack.last(), Some(&b'['));
                    self.stack.pop();
                    self.value_done();
                    return true;
                }
                match b {
                    b'"' => self.mode = Mode::InString,
                    b'{' => {
                        self.stack.push(b'{');
                        self.mode = Mode::ExpectKeyOrClose;
                    }
                    b'[' => {
                        self.stack.push(b'[');
                        self.mode = Mode::ValueOrClose;
                    }
                    b'-' => self.mode = Mode::NumberStart,
                    b'0'..=b'9' => self.mode = Mode::AfterNumber,
                    b't' => self.mode = Mode::InLiteral(b"true", 1),
                    b'f' => self.mode = Mode::InLiteral(b"false", 1),
                    b'n' => self.mode = Mode::InLiteral(b"null", 1),
                    _ => return false,
                }
                true
            }
            Mode::NumberStart => {
                if b.is_ascii_digit() {
                    self.mode = Mode::AfterNumber;
                    true
                } else {
                    false
                }
            }
            Mode::AfterNumber => {
                if b.is_ascii_digit() {
                    return true;
                }
                // A terminator ends the number, then acts on the container.
                self.mode = Mode::ExpectCommaOrClose;
                if self.stack.is_empty() {
                    return false;
                }
                self.feed(b)
            }
            Mode::InString => {
                if b == b'"' {
                    self.value_done();
                    true
                } else {
                    is_string_char(b)
                }
            }
            Mode::InKey => {
                if b == b'"' {
                    self.mode = Mode::ExpectColon;
                    true
                } else {
                    is_string_char(b)
                }
            }
            Mode::InLiteral(lit, pos) => {
                if pos < lit.len() && b == lit[pos] {
                    if pos + 1 == lit.len() {
                        self.value_done();
                    } else {
                        self.mode = Mode::InLiteral(lit, pos + 1);
                    }
                    true
                } else {
                    false
                }
            }
            Mode::ExpectColon => {
                if b == b':' {
                    self.mode = Mode::Value;
                    true
                } else {
                    false
                }
            }
            Mode::ExpectKeyOrClose => match b {
                b'"' => {
                    self.mode = Mode::InKey;
                    true
                }
                b'}' => {
                    debug_assert_eq!(self.stack.last(), Some(&b'{'));
                    self.stack.pop();
                    self.value_done();
                    true
                }
                _ => false,
            },
            Mode::ExpectKey => {
                if b == b'"' {
                    self.mode = Mode::InKey;
                    true
                } else {
                    false
                }
            }
            Mode::ExpectCommaOrClose => match (b, self.stack.last()) {
                (b',', Some(b'{')) => {
                    self.mode = Mode::ExpectKey;
                    true
                }
                (b',', Some(b'[')) => {
                    self.mode = Mode::Value;
                    true
                }
                (b'}', Some(b'{')) | (b']', Some(b'[')) => {
                    self.stack.pop();
                    self.value_done();
                    true
                }
                _ => false,
            },
        }
    }

    fn is_complete(&self) -> bool {
        self.mode == Mode::Done || (self.mode == Mode::AfterNumber && self.stack.is_empty())
    }
}

/// Constrains output to syntactically valid JSON (see module docs for the
/// subset), lifted from bytes to tokens through the vocabulary.
pub struct JsonConstraint {
    pda: JsonPda,
    /// `(token, bytes)` for every candidate token.
    table: Vec<(TokenId, Vec<u8>)>,
}

impl JsonConstraint {
    /// Builds the constraint's token table from a vocabulary (specials are
    /// excluded — the grammar, not EOS, decides when output ends).
    pub fn new(vocab: &Vocab) -> Self {
        let table = (0..vocab.len() as TokenId)
            .filter(|&t| !vocab.is_special(t))
            .map(|t| (t, vocab.bytes(t).to_vec()))
            .filter(|(_, b)| !b.is_empty())
            .collect();
        JsonConstraint {
            pda: JsonPda::new(),
            table,
        }
    }

    fn token_ok(&self, bytes: &[u8]) -> bool {
        let mut pda = self.pda.clone();
        bytes.iter().all(|&b| pda.feed(b))
    }
}

impl Constraint for JsonConstraint {
    fn allowed(&self) -> Vec<TokenId> {
        self.table
            .iter()
            .filter(|(_, bytes)| self.token_ok(bytes))
            .map(|&(t, _)| t)
            .collect()
    }

    fn advance(&mut self, token: TokenId) {
        let bytes = self
            .table
            .iter()
            .find(|&&(t, _)| t == token)
            .map(|(_, b)| b.clone())
            .expect("token not in vocabulary");
        for b in bytes {
            assert!(self.pda.feed(b), "token was not allowed by the grammar");
        }
    }

    fn is_complete(&self) -> bool {
        self.pda.is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accepts(s: &str) -> bool {
        let mut pda = JsonPda::new();
        s.bytes().all(|b| pda.feed(b)) && pda.is_complete()
    }

    #[test]
    fn pda_accepts_valid_json() {
        for s in [
            "{}",
            "[]",
            "123",
            "-5",
            "\"hi\"",
            "true",
            "false",
            "null",
            "{\"a\":1}",
            "{\"a\":1,\"b\":\"x\"}",
            "[1,2,3]",
            "{\"a\":[1,{\"b\":null}],\"c\":true}",
            "[[],{}]",
        ] {
            assert!(accepts(s), "should accept {s}");
        }
    }

    #[test]
    fn pda_rejects_invalid_json() {
        for s in [
            "{", "}", "{\"a\"}", "{\"a\":}", "[1,]", "{,}", "tru", "truex", "--1", "{\"a\":1",
            "\"unterminated", "12a", "{\"a\" 1}", "[1 2]",
        ] {
            assert!(!accepts(s), "should reject {s:?}");
        }
    }

    #[test]
    fn pda_rejects_trailing_garbage() {
        let mut pda = JsonPda::new();
        for b in b"{}" {
            assert!(pda.feed(*b));
        }
        assert!(pda.is_complete());
        assert!(!pda.feed(b'x'));
    }

    #[test]
    fn trie_narrows_and_completes() {
        // Sequences: [1,2,3] and [1,5].
        let mut c = TrieConstraint::new(vec![vec![1, 2, 3], vec![1, 5]]);
        assert_eq!(c.allowed(), vec![1]);
        c.advance(1);
        assert_eq!(c.allowed(), vec![2, 5]);
        assert!(!c.is_complete());
        c.advance(5);
        assert!(c.is_complete());
    }

    #[test]
    fn trie_full_path() {
        let mut c = TrieConstraint::new(vec![vec![1, 2, 3], vec![1, 5]]);
        c.advance(1);
        c.advance(2);
        assert_eq!(c.allowed(), vec![3]);
        assert!(!c.is_complete());
        c.advance(3);
        assert!(c.is_complete());
    }

    #[test]
    #[should_panic(expected = "not allowed")]
    fn trie_rejects_bad_token() {
        let mut c = TrieConstraint::new(vec![vec![1, 2]]);
        c.advance(9);
    }

    #[test]
    fn json_constraint_over_byte_vocab() {
        // A pure-byte vocabulary (no merges): every byte is a token.
        let vocab = Vocab::new(vec![]);
        let mut c = JsonConstraint::new(&vocab);
        // Initially: digits, quote, braces, brackets, minus, t/f/n.
        let allowed = c.allowed();
        assert!(allowed.contains(&(b'{' as TokenId)));
        assert!(allowed.contains(&(b'7' as TokenId)));
        assert!(allowed.contains(&(b'"' as TokenId)));
        assert!(!allowed.contains(&(b'}' as TokenId)), "bare close invalid");
        assert!(!allowed.contains(&(b'x' as TokenId)));
        // Drive through {"a":1}.
        for b in b"{\"a\":1}" {
            assert!(c.allowed().contains(&(*b as TokenId)), "byte {}", *b as char);
            c.advance(*b as TokenId);
        }
        assert!(c.is_complete());
        assert!(c.allowed().is_empty(), "nothing allowed after completion");
    }

    #[test]
    fn json_constraint_uses_merged_tokens() {
        // Train a tokenizer whose merges include JSON fragments and verify
        // multi-byte tokens are permitted when grammatical.
        let bpe = symphony_tokenizer::Bpe::train(
            "{\"key\":123} {\"key\":456} {\"key\":789}",
            50,
        );
        let c = JsonConstraint::new(bpe.vocab());
        let allowed = c.allowed();
        // Some multi-byte token starting with '{' should be allowed.
        let has_multibyte = allowed
            .iter()
            .any(|&t| bpe.vocab().bytes(t).len() > 1 && bpe.vocab().bytes(t)[0] == b'{');
        assert!(has_multibyte, "expected merged JSON-prefix tokens");
    }
}
