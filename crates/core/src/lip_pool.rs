//! A process-global pool of reusable OS threads for LIP bodies.
//!
//! Spawning a fresh OS thread per program costs tens of microseconds of
//! clone/page-table work, which dominates kernel wall time once a run sweeps
//! hundreds of short programs. Which OS thread *hosts* a LIP body is
//! invisible to the deterministic event loop — the kernel serialises
//! execution through per-thread reply channels — so workers are fungible and
//! are parked and reused across programs and across kernel instances.
//!
//! The pool grows on demand (one worker per concurrently-live LIP at peak)
//! and never shrinks; workers park on their private job channel between
//! bodies and re-register on the idle list when a body finishes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;
type JobSlot = (Job, Sender<()>);

struct Pool {
    /// Senders for workers currently parked and ready for a body.
    idle: Mutex<Vec<Sender<JobSlot>>>,
    /// Total workers ever spawned (names only).
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        idle: Mutex::new(Vec::new()),
        spawned: AtomicUsize::new(0),
    })
}

/// Handle to a submitted LIP body. [`JobHandle::join`] blocks until the body
/// has fully finished (including shutdown unwinding), standing in for
/// `JoinHandle::join` on a dedicated thread.
pub(crate) struct JobHandle {
    done: Receiver<()>,
}

impl JobHandle {
    pub(crate) fn join(self) {
        // The job's sender drops when the body finishes; a disconnect is the
        // completion signal, so either result means "done".
        let _ = self.done.recv();
    }
}

/// Runs `job` on a pooled worker thread, growing the pool if every worker is
/// busy hosting a live LIP.
pub(crate) fn spawn_lip(job: Job) -> JobHandle {
    let p = pool();
    let (done_tx, done_rx) = unbounded();
    let parked = {
        // lint:allow(k1): poisoning is impossible — nothing panics while the
        // idle list is held
        let mut idle = p.idle.lock().expect("LIP pool idle list poisoned");
        idle.pop()
    };
    let slot = match parked {
        Some(tx) => tx,
        None => {
            let (tx, rx) = unbounded::<JobSlot>();
            let self_tx = tx.clone();
            let n = p.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("lip-worker-{n}"))
                .stack_size(512 * 1024)
                .spawn(move || worker_loop(rx, self_tx))
                // lint:allow(k1): OS thread spawn failing is unrecoverable
                .expect("spawn LIP pool worker");
            tx
        }
    };
    slot.send((job, done_tx))
        // lint:allow(k1): the worker holds its receiver for the process
        // lifetime, so the channel can never be closed
        .unwrap_or_else(|_| unreachable!("LIP pool worker hung up"));
    JobHandle { done: done_rx }
}

fn worker_loop(rx: Receiver<JobSlot>, self_tx: Sender<JobSlot>) {
    while let Ok((job, done)) = rx.recv() {
        // LIP bodies unwind with `ShutdownSignal` on kernel teardown (and may
        // panic arbitrarily — `thread_main` reports those as `Crashed` before
        // unwinding reaches here); either way the worker survives for reuse.
        let _ = catch_unwind(AssertUnwindSafe(job));
        drop(done);
        // lint:allow(k1): see `spawn_lip` — the idle list cannot be poisoned
        let mut idle = pool().idle.lock().expect("LIP pool idle list poisoned");
        idle.push(self_tx.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_join() {
        let hits = Arc::new(AtomicU64::new(0));
        let handles: Vec<JobHandle> = (0..32)
            .map(|_| {
                let hits = hits.clone();
                spawn_lip(Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }))
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn workers_are_reused_across_waves() {
        // Sequential bodies should keep re-parking the same worker rather
        // than growing the pool per job.
        let before = pool().spawned.load(Ordering::Relaxed);
        for _ in 0..16 {
            spawn_lip(Box::new(|| {})).join();
        }
        let grown = pool().spawned.load(Ordering::Relaxed) - before;
        assert!(grown <= 2, "sequential jobs grew the pool by {grown}");
    }
}
